"""Legacy setup shim.

Normal environments should use ``pip install -e .``.  This file exists so
that fully offline environments (no ``wheel`` package available, so PEP 660
editable builds cannot run) can still install with
``python setup.py develop``.
"""

from setuptools import setup

setup()
