"""Legacy setup shim.

Normal environments should use ``pip install -e .``.  This file exists so
that fully offline environments (no ``wheel`` package available, so PEP 660
editable builds cannot run) can still install with
``python setup.py develop``.

The core library is dependency-free; ``numpy`` is an optional extra that
unlocks the vectorized IBLT backend (``pip install .[numpy]``).
"""

from setuptools import setup

setup(
    extras_require={
        "numpy": ["numpy>=1.22"],
    },
)
