"""Unit tests for the strata difference-size estimator."""

import random

import pytest

from repro.errors import ConfigError
from repro.iblt.strata import StrataConfig, StrataEstimator


def build_estimators(n_shared, n_alice, n_bob, seed=3, config=None):
    config = config or StrataConfig(seed=99)
    rng = random.Random(seed)
    shared = [rng.getrandbits(60) for _ in range(n_shared)]
    alice_only = [rng.getrandbits(60) for _ in range(n_alice)]
    bob_only = [rng.getrandbits(60) for _ in range(n_bob)]
    alice = StrataEstimator(config)
    bob = StrataEstimator(config)
    alice.insert_all(shared + alice_only)
    bob.insert_all(shared + bob_only)
    return alice, bob


class TestStrataConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            StrataConfig(strata=1)
        with pytest.raises(ConfigError):
            StrataConfig(cells_per_stratum=2, q=4)

    def test_per_stratum_salts_differ(self):
        config = StrataConfig(seed=4)
        assert config.iblt_config(0).seed != config.iblt_config(1).seed


class TestEstimation:
    def test_identical_sets_estimate_zero_or_tiny(self):
        alice, bob = build_estimators(500, 0, 0)
        assert alice.estimate_difference(bob) <= 1

    def test_small_difference_exact(self):
        # With a small difference every stratum decodes -> exact answer.
        alice, bob = build_estimators(500, 4, 3)
        assert alice.estimate_difference(bob) == 7

    def test_large_difference_within_factor_two(self):
        estimates = []
        for seed in range(8):
            alice, bob = build_estimators(500, 150, 150, seed=seed)
            estimates.append(alice.estimate_difference(bob))
        mean = sum(estimates) / len(estimates)
        assert 300 / 2.5 <= mean <= 300 * 2.5

    def test_estimate_grows_with_difference(self):
        small_est = []
        large_est = []
        for seed in range(6):
            alice, bob = build_estimators(200, 20, 20, seed=seed)
            small_est.append(alice.estimate_difference(bob))
            alice, bob = build_estimators(200, 200, 200, seed=seed)
            large_est.append(alice.estimate_difference(bob))
        assert sum(large_est) > sum(small_est)

    def test_config_mismatch_rejected(self):
        a = StrataEstimator(StrataConfig(seed=1))
        b = StrataEstimator(StrataConfig(seed=2))
        with pytest.raises(ConfigError):
            a.estimate_difference(b)


class TestStrataSerialisation:
    def test_roundtrip_preserves_estimate(self):
        alice, bob = build_estimators(300, 10, 10)
        payload = alice.to_bytes()
        restored = StrataEstimator.from_bytes(payload, alice.config)
        assert restored.estimate_difference(bob) == alice.estimate_difference(bob)

    def test_serialized_bits_matches_payload(self):
        alice, _ = build_estimators(50, 2, 2)
        assert (alice.serialized_bits() + 7) // 8 == len(alice.to_bytes())
