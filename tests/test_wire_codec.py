"""Differential suite for the vectorized wire codec (PR 5).

The contract under test: the vectorized codec paths in
:mod:`repro.net.codec` (and the bulk bit primitives in
:mod:`repro.net.bits` they ride on) are **bit-identical** to the scalar
``BitWriter``/``BitReader`` reference — for every payload kind the
protocols ship (one-round hierarchy sketches, the adaptive round-2
window, strata estimators, sharded v2 frames), across backends, q
values, and seeds — and reject malformed payloads with exactly the same
:class:`~repro.errors.SerializationError` behaviour.

``FORCE_SCALAR`` is the escape hatch both sides of each comparison use:
with it set, every write/read goes through the field-at-a-time reference
paths that predate the codec.  Without numpy installed the two sides
coincide (everything is scalar), so the suite stays green — and cheap —
on the no-numpy CI leg.
"""

from __future__ import annotations

import random

import pytest

from repro.core.adaptive import AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.errors import SerializationError
from repro.iblt.backends import available_backends
from repro.iblt.hashing import TabulationHash, trailing_zeros
from repro.iblt.strata import StrataConfig, StrataEstimator
from repro.iblt.table import IBLT, IBLTConfig
from repro.net import codec
from repro.net.bits import BitReader, BitWriter
from repro.scale.engine import ShardedReconciler

BACKENDS = available_backends()
SEEDS = (0, 7)
QS = (3, 4)

try:
    import numpy as _np
except ImportError:
    _np = None


@pytest.fixture()
def scalar_codec(monkeypatch):
    """Force the scalar reference paths for the duration of one test."""
    monkeypatch.setattr(codec, "FORCE_SCALAR", True)


def _both_ways(produce):
    """Run ``produce`` with the vector codec and the scalar reference."""
    fast = produce()
    saved = codec.FORCE_SCALAR
    codec.FORCE_SCALAR = True
    try:
        reference = produce()
    finally:
        codec.FORCE_SCALAR = saved
    return fast, reference


def _table(backend, q, seed, *, dense=False, key_bits=60, checksum_bits=32):
    """A populated table: subtracted-style (small counts) or dense."""
    rng = random.Random(seed)
    cells = 24 * q
    config = IBLTConfig(
        cells=cells, q=q, key_bits=key_bits,
        checksum_bits=checksum_bits, seed=seed,
    )
    table = IBLT(config, backend=backend)
    # Dense tables push per-cell counts past 63, so their zigzag varints
    # span multiple LEB128 groups — the codec's variable-stride paths.
    n = cells * 40 if dense else cells // 2
    table.insert_many([rng.getrandbits(key_bits) for _ in range(n)])
    return table


# ------------------------------------------------------------ table layer


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("q", QS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dense", (False, True), ids=("sparse", "dense"))
def test_table_bytes_identical(backend, q, seed, dense):
    table = _table(backend, q, seed, dense=dense)
    fast, reference = _both_ways(table.to_bytes)
    assert fast == reference


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("reader_backend", BACKENDS)
@pytest.mark.parametrize("dense", (False, True), ids=("sparse", "dense"))
def test_table_roundtrip_identical(backend, reader_backend, dense):
    table = _table(backend, 4, 1, dense=dense)
    payload = table.to_bytes()

    def parse():
        parsed = IBLT.from_bytes(payload, table.config, backend=reader_backend)
        return [parsed.cell(i) for i in range(table.config.cells)]

    fast, reference = _both_ways(parse)
    assert fast == reference
    assert fast == [table.cell(i) for i in range(table.config.cells)]


def test_unaligned_table_writes_identical():
    """Tables written mid-stream (odd bit offsets) still match the spec."""
    table = _table(BACKENDS[-1], 3, 2)

    def produce():
        writer = BitWriter()
        writer.write_uint(5, 3)  # leave the writer bit-misaligned
        table.write_to(writer)
        writer.write_uint(1, 1)
        return writer.getvalue()

    fast, reference = _both_ways(produce)
    assert fast == reference


def test_huge_counts_fall_back_to_scalar_bytes():
    """Counts beyond one varint group — and beyond int64 — stay identical."""
    config = IBLTConfig(cells=8, q=4, key_bits=16, checksum_bits=8, seed=0)
    table = IBLT(config)
    table._backend.load_rows(
        [0, 1, -1, 63, -64, 64, 5000, -(2**40)],
        [0, 1, 2, 3, 65535, 5, 6, 7],
        [0, 1, 2, 3, 255, 5, 6, 7],
    )
    fast, reference = _both_ways(table.to_bytes)
    assert fast == reference

    def parse():
        parsed = IBLT.from_bytes(fast, config)
        return [parsed.cell(i) for i in range(config.cells)]

    parsed_fast, parsed_reference = _both_ways(parse)
    assert parsed_fast == parsed_reference
    assert [row[0] for row in parsed_fast] == [
        0, 1, -1, 63, -64, 64, 5000, -(2**40)
    ]


def test_wide_keys_use_reference_path():
    """key_bits > 64 cannot vectorize; bytes still match the reference."""
    config = IBLTConfig(cells=12, q=4, key_bits=80, checksum_bits=16, seed=3)
    table = IBLT(config)
    rng = random.Random(3)
    for _ in range(6):
        table.insert(rng.getrandbits(80))
    fast, reference = _both_ways(table.to_bytes)
    assert fast == reference
    parsed = IBLT.from_bytes(fast, config)
    assert [parsed.cell(i) for i in range(12)] == [
        table.cell(i) for i in range(12)
    ]


# --------------------------------------------------------- protocol layer


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("q", QS)
@pytest.mark.parametrize("seed", SEEDS)
def test_one_round_sketch_identical(backend, q, seed):
    rng = random.Random(seed)
    points = [(rng.randrange(512), rng.randrange(512)) for _ in range(120)]
    config = ProtocolConfig(
        delta=512, dimension=2, k=4, q=q, seed=seed, backend=backend
    )
    reconciler = HierarchicalReconciler(config)
    fast, reference = _both_ways(lambda: reconciler.encode(points))
    assert fast == reference


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_adaptive_exchange_identical(backend, seed):
    rng = random.Random(seed)
    alice = [(rng.randrange(1024), rng.randrange(1024)) for _ in range(150)]
    bob = alice[3:] + [(rng.randrange(1024), rng.randrange(1024))]
    config = ProtocolConfig(
        delta=1024, dimension=2, k=6, seed=seed, backend=backend
    )

    def produce():
        reconciler = AdaptiveReconciler(config)
        request = reconciler.bob_request(bob)
        response = reconciler.alice_respond(request, alice)
        return request, response

    fast, reference = _both_ways(produce)
    assert fast == reference


def test_adaptive_alice_state_reuse_identical_bytes():
    """reuse_alice_state answers repeat requests with identical bytes."""
    rng = random.Random(11)
    alice = [(rng.randrange(1024), rng.randrange(1024)) for _ in range(150)]
    bob = alice[2:] + [(5, 9)]
    config = ProtocolConfig(delta=1024, dimension=2, k=6, seed=11)
    plain = AdaptiveReconciler(config)
    reusing = AdaptiveReconciler(config, reuse_alice_state=True)
    request = plain.bob_request(bob)
    expected = plain.alice_respond(request, alice)
    assert reusing.alice_respond(request, alice) == expected
    # Second call hits the caches; bytes must not drift.
    assert reusing.alice_respond(request, alice) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("q", QS)
@pytest.mark.parametrize("seed", SEEDS)
def test_strata_estimator_identical(backend, q, seed):
    rng = random.Random(seed)
    keys = [rng.getrandbits(64) for _ in range(400)]
    config = StrataConfig(strata=8, cells_per_stratum=12, q=q, seed=seed)

    def produce():
        estimator = StrataEstimator(config, backend=backend)
        estimator.insert_all(keys)
        return estimator.to_bytes()

    fast, reference = _both_ways(produce)
    assert fast == reference
    # The bulk stratum assignment must agree with per-key inserts.
    scalar_est = StrataEstimator(config, backend=backend)
    scalar_est._insert_all_scalar(keys)
    assert scalar_est.to_bytes() == fast


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_frame_identical(seed):
    rng = random.Random(seed)
    points = [(rng.randrange(2048), rng.randrange(2048)) for _ in range(300)]
    config = ProtocolConfig(
        delta=2048, dimension=2, k=8, seed=seed, shards=4, executor="serial"
    )

    def produce():
        with ShardedReconciler(config) as engine:
            return engine.encode(points)

    fast, reference = _both_ways(produce)
    assert fast == reference


# ------------------------------------------------------- malformed parity


def _parse_error(payload, config):
    """The (type, message) a full parse of ``payload`` raises, or None."""
    try:
        IBLT.from_bytes(payload, config)
        return None
    except SerializationError as exc:
        return type(exc), str(exc)


@pytest.mark.parametrize("dense", (False, True), ids=("sparse", "dense"))
def test_truncation_rejection_parity(dense):
    """Every truncation of a valid payload fails identically on both paths."""
    table = _table(BACKENDS[-1], 4, 5, dense=dense)
    payload = table.to_bytes()
    cuts = sorted({0, 1, 2, len(payload) // 2, len(payload) - 1})
    for cut in cuts:
        fast, reference = _both_ways(
            lambda cut=cut: _parse_error(payload[:cut], table.config)
        )
        assert fast == reference
        assert fast is not None, f"truncation at {cut} must not parse"


def test_trailing_data_rejection_parity():
    table = _table(BACKENDS[-1], 4, 6)
    payload = table.to_bytes() + b"\xff"
    fast, reference = _both_ways(lambda: _parse_error(payload, table.config))
    assert fast == reference
    assert fast is not None and "trailing" in fast[1]


def test_varint_bomb_rejection_parity():
    """An endless continuation chain trips the reference limit both ways."""
    config = IBLTConfig(cells=4, q=4, key_bits=16, checksum_bits=8, seed=0)
    payload = b"\x80" * 4096
    fast, reference = _both_ways(lambda: _parse_error(payload, config))
    assert fast == reference
    assert fast is not None and "varint" in fast[1]


def test_garbage_bytes_rejection_parity():
    rng = random.Random(9)
    config = IBLTConfig(cells=12, q=4, key_bits=32, checksum_bits=16, seed=9)
    for trial in range(20):
        payload = bytes(rng.randrange(256) for _ in range(rng.randrange(120)))
        fast, reference = _both_ways(
            lambda payload=payload: _parse_error(payload, config)
        )
        assert fast == reference, f"trial {trial} diverged"


# -------------------------------------------------------- bulk primitives


def test_write_bits_matches_write_bit():
    rng = random.Random(4)
    pattern = [rng.randrange(2) for _ in range(300)]
    for head_bits in range(8):  # every starting alignment
        reference = BitWriter()
        bulk = BitWriter()
        for writer in (reference, bulk):
            for _ in range(head_bits):
                writer.write_bit(1)
        for bit in pattern:
            reference.write_bit(bit)
        bulk.write_bits(pattern)
        assert bulk.getvalue() == reference.getvalue()
        assert bulk.bit_length == reference.bit_length


def test_read_bits_matches_read_bit():
    rng = random.Random(5)
    data = bytes(rng.randrange(256) for _ in range(40))
    for offset in range(8):
        reference = BitReader(data)
        bulk = BitReader(data)
        for reader in (reference, bulk):
            reader.read_uint(offset + 1)
        want = [reference.read_bit() for _ in range(200)]
        got = list(bulk.read_bits(200))
        assert got == want
        assert bulk.bits_consumed == reference.bits_consumed


def test_peek_bits_does_not_consume():
    reader = BitReader(b"\xa5\x5a")
    first = list(reader.peek_bits(9))
    assert list(reader.peek_bits(9)) == first
    assert reader.bits_consumed == 0
    assert list(reader.read_bits(9)) == first


def test_peek_and_skip_overruns_raise():
    reader = BitReader(b"\x01")
    with pytest.raises(SerializationError):
        reader.peek_bits(9)
    with pytest.raises(SerializationError):
        reader.skip_bits(9)
    reader.skip_bits(8)
    assert reader.bits_remaining == 0


@pytest.mark.skipif(_np is None, reason="bulk paths need numpy")
def test_strata_bulk_insert_rejects_negative_arrays():
    """Signed arrays with negatives must fail like the scalar path, not
    silently wrap into huge uint64 keys."""
    config = StrataConfig(strata=4, cells_per_stratum=9, q=3, seed=2)
    estimator = StrataEstimator(config)
    with pytest.raises(ValueError):
        estimator.insert_all(_np.array([3, -1], dtype=_np.int64))
    with pytest.raises(ValueError):
        estimator.insert_all([3, -1])
    # Float arrays would truncate silently under a uint64 cast; the scalar
    # path rejects them loudly instead.
    with pytest.raises(TypeError):
        estimator.insert_all(_np.array([1.5], dtype=_np.float64))


@pytest.mark.skipif(_np is None, reason="bulk hashing paths need numpy")
def test_bulk_hashing_matches_scalar():
    from repro.iblt.hashing import trailing_zeros_many

    rng = random.Random(6)
    values = [rng.getrandbits(64) for _ in range(500)] + [0, 1, 2**63]
    arr = _np.asarray(values, dtype=_np.uint64)
    tab = TabulationHash(123)
    assert tab.hash_many(arr).tolist() == [tab(v) for v in values]
    for limit in (1, 7, 15, 63):
        assert trailing_zeros_many(arr, limit).tolist() == [
            trailing_zeros(v, limit) for v in values
        ]


def test_scalar_codec_fixture_forces_reference(scalar_codec):
    """The escape hatch really disables the vector paths."""
    table = _table(BACKENDS[-1], 4, 8)
    reader = BitReader(table.to_bytes())
    counts, keys, checks = codec.read_cells(
        reader, table.config.cells, table.config.key_bits,
        table.config.checksum_bits,
    )
    assert isinstance(counts, list)  # scalar reference returns plain lists
