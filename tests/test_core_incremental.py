"""Unit tests for the incrementally maintained hierarchy sketch."""

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.incremental import IncrementalSketch
from repro.core.protocol import HierarchicalReconciler
from repro.errors import CapacityExceeded, ReconciliationFailure


def config(delta=1024, dimension=2, k=4, seed=11, **kwargs):
    return ProtocolConfig(delta=delta, dimension=dimension, k=k, seed=seed,
                          **kwargs)


def random_points(rng, n, delta=1024, dimension=2):
    return [
        tuple(rng.randrange(delta) for _ in range(dimension)) for _ in range(n)
    ]


class TestBitIdentity:
    def test_matches_batch_encode(self):
        """The defining property: incremental == from-scratch, bit for bit."""
        cfg = config()
        rng = random.Random(0)
        points = random_points(rng, 120)
        incremental = IncrementalSketch(cfg)
        incremental.insert_all(points)
        batch = HierarchicalReconciler(cfg).encode(points)
        assert incremental.encode() == batch

    def test_matches_after_churn(self):
        """Insert everything, remove some, insert more: still identical to
        encoding the surviving multiset."""
        cfg = config()
        rng = random.Random(1)
        initial = random_points(rng, 80)
        removed = initial[10:30]
        added = random_points(rng, 25)
        incremental = IncrementalSketch(cfg)
        incremental.insert_all(initial)
        for point in removed:
            incremental.remove(point)
        incremental.insert_all(added)
        survivors = initial[:10] + initial[30:] + added
        batch = HierarchicalReconciler(cfg).encode(survivors)
        assert incremental.encode() == batch

    def test_empty_matches_empty(self):
        cfg = config()
        assert IncrementalSketch(cfg).encode() == (
            HierarchicalReconciler(cfg).encode([])
        )

    def test_duplicates_supported(self):
        cfg = config()
        incremental = IncrementalSketch(cfg)
        for _ in range(5):
            incremental.insert((7, 7))
        incremental.remove((7, 7))
        batch = HierarchicalReconciler(cfg).encode([(7, 7)] * 4)
        assert incremental.encode() == batch


class TestSemantics:
    def test_n_points_tracked(self):
        sketch = IncrementalSketch(config())
        sketch.insert((1, 1))
        sketch.insert((2, 2))
        sketch.remove((1, 1))
        assert sketch.n_points == 1

    def test_remove_from_empty_cell_raises(self):
        sketch = IncrementalSketch(config())
        sketch.insert((1, 1))
        with pytest.raises(ReconciliationFailure):
            sketch.remove((900, 900))

    def test_remove_is_atomic_on_failure(self):
        """A failed remove must not partially update the levels."""
        cfg = config()
        sketch = IncrementalSketch(cfg)
        sketch.insert((1, 1))
        before = sketch.encode()
        # (1023, 1023) may share coarse cells with (1,1)?  With the checked
        # precondition the remove must fail before touching any table.
        with pytest.raises(ReconciliationFailure):
            sketch.remove((1023, 1023))
        assert sketch.encode() == before

    def test_occupancy_overflow(self):
        cfg = config(occupancy_bits=2)
        sketch = IncrementalSketch(cfg)
        for _ in range(4):
            sketch.insert((5, 5))
        with pytest.raises(CapacityExceeded):
            sketch.insert((5, 5))

    def test_reconciles_against_live_peer(self):
        """An incrementally maintained sketch drives a real reconciliation."""
        cfg = config(delta=4096, k=6, seed=3)
        rng = random.Random(3)
        base = random_points(rng, 150, delta=4096)
        alice_sketch = IncrementalSketch(cfg)
        alice_sketch.insert_all(base)
        alice_extra = random_points(rng, 3, delta=4096)
        alice_sketch.insert_all(alice_extra)
        bob_points = list(base) + random_points(rng, 3, delta=4096)

        reconciler = HierarchicalReconciler(cfg)
        result = reconciler.decode_and_repair(alice_sketch.encode(), bob_points)
        assert len(result.repaired) == alice_sketch.n_points
        assert sorted(result.repaired) == sorted(base + alice_extra)

    def test_unshifted_variant(self):
        cfg = config(random_shift=False)
        sketch = IncrementalSketch(cfg)
        sketch.insert((3, 3))
        assert sketch.grid.shift == (0, 0)
