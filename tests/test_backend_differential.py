"""Differential tests: every IBLT backend must match the pure reference.

The pure-Python backend defines the semantics; these tests drive randomized
operation sequences through every other available backend and assert
byte-identical serialized sketches and identical decode results.  Uses
hypothesis when installed, seeded random sweeps otherwise.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler, reconcile
from repro.iblt.backends import available_backends
from repro.iblt.decode import decode
from repro.iblt.table import IBLT, IBLTConfig

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional extra
    HAVE_HYPOTHESIS = False

ALT_BACKENDS = [name for name in available_backends() if name != "pure"]

pytestmark = pytest.mark.skipif(
    not ALT_BACKENDS, reason="only the pure backend is available"
)


def _make_pair(cells, q, key_bits, checksum_bits, seed, backend):
    config = IBLTConfig(
        cells=cells, q=q, key_bits=key_bits, checksum_bits=checksum_bits, seed=seed
    )
    return IBLT(config, backend="pure"), IBLT(config, backend=backend)


def _decode_fingerprint(table):
    result = decode(table)
    return (
        result.success,
        result.alice_keys,
        result.bob_keys,
        result.remaining_cells,
        result.peel_order,
    )


def _check_equivalence(cells, q, key_bits, seed, keys, deletions, backend):
    """One differential scenario: same ops on both backends, same bytes."""
    reference, candidate = _make_pair(cells, q, key_bits, 32, seed, backend)
    reference.insert_many(keys)
    candidate.insert_many(keys)
    assert reference.to_bytes() == candidate.to_bytes()

    reference.delete_many(deletions)
    candidate.delete_many(deletions)
    assert reference.to_bytes() == candidate.to_bytes()
    assert reference.nonzero_cells() == candidate.nonzero_cells()
    assert reference.is_empty() == candidate.is_empty()
    assert reference.pure_cells() == candidate.pure_cells()

    assert _decode_fingerprint(reference) == _decode_fingerprint(candidate)

    # Deserialisation round-trips into either backend identically.
    data = reference.to_bytes()
    for target in ("pure", backend):
        assert IBLT.from_bytes(data, reference.config, backend=target).to_bytes() == data


def _scenario_from_rng(rng):
    q = rng.choice([3, 4, 5])
    cells = q * rng.randint(2, 40)
    key_bits = rng.choice([8, 16, 33, 48, 63, 64])
    seed = rng.randrange(2**32)
    keys = [rng.randrange(1 << key_bits) for _ in range(rng.randint(0, 120))]
    deletions = [rng.choice(keys) for _ in range(rng.randint(0, 10))] if keys else []
    return cells, q, key_bits, seed, keys, deletions


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_randomized_sweeps_match_reference(backend):
    """Seeded sweep over table shapes, key sets and deletion mixes."""
    rng = random.Random(0xD1FF)
    for _ in range(60):
        _check_equivalence(*_scenario_from_rng(rng), backend)


if HAVE_HYPOTHESIS:

    @settings(max_examples=60, deadline=None)
    @given(
        q=st.sampled_from([3, 4, 5]),
        cells_factor=st.integers(2, 30),
        key_bits=st.sampled_from([8, 16, 33, 48, 63, 64]),
        seed=st.integers(0, 2**32 - 1),
        data=st.data(),
    )
    def test_property_backends_bit_identical(q, cells_factor, key_bits, seed, data):
        keys = data.draw(
            st.lists(st.integers(0, (1 << key_bits) - 1), max_size=150)
        )
        deletions = (
            data.draw(st.lists(st.sampled_from(keys), max_size=8)) if keys else []
        )
        for backend in ALT_BACKENDS:
            _check_equivalence(
                q * cells_factor, q, key_bits, seed, keys, deletions, backend
            )


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_subtract_decode_matches_reference(backend):
    """Alice-minus-Bob differences decode identically on every backend."""
    rng = random.Random(0x5EED)
    for _ in range(40):
        q = rng.choice([3, 4])
        cells = q * rng.randint(8, 30)
        seed = rng.randrange(2**32)
        config = IBLTConfig(cells=cells, q=q, key_bits=64, seed=seed)
        shared = [rng.getrandbits(64) for _ in range(rng.randint(0, 200))]
        alice_only = [rng.getrandbits(64) for _ in range(rng.randint(0, 12))]
        bob_only = [rng.getrandbits(64) for _ in range(rng.randint(0, 12))]

        fingerprints = {}
        for name in ("pure", backend):
            alice = IBLT(config, backend=name)
            bob = IBLT(config, backend=name)
            alice.insert_many(shared + alice_only)
            bob.insert_many(shared + bob_only)
            diff = alice.subtract(bob)
            fingerprints[name] = (diff.to_bytes(), _decode_fingerprint(diff))
        assert fingerprints["pure"] == fingerprints[backend]


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_cross_backend_subtract(backend):
    """Parties on different backends interoperate (wire + algebra)."""
    config = IBLTConfig(cells=48, q=4, key_bits=64, seed=3)
    reference = IBLT(config, backend="pure")
    candidate = IBLT(config, backend=backend)
    rng = random.Random(11)
    shared = [rng.getrandbits(64) for _ in range(50)]
    reference.insert_many(shared + [111])
    candidate.insert_many(shared + [222])

    mixed = reference.subtract(candidate)
    same = IBLT.from_bytes(reference.to_bytes(), config, backend=backend).subtract(
        candidate
    )
    assert mixed.to_bytes() == same.to_bytes()
    assert _decode_fingerprint(mixed) == _decode_fingerprint(same)
    assert sorted(decode(mixed).alice_keys) == [111]
    assert sorted(decode(mixed).bob_keys) == [222]


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_protocol_end_to_end_matches_reference(backend):
    """Full reconcile(): same message bytes and repaired set per backend."""
    rng = random.Random(42)
    for seed in (0, 7):
        delta, dimension = 4096, 2
        alice = [
            (rng.randrange(delta), rng.randrange(delta)) for _ in range(300)
        ]
        bob = [
            (x + rng.choice([-1, 0, 1])) % delta for x, _ in alice
        ]
        bob = list(zip(bob, (y for _, y in alice)))[:295]

        outcomes = {}
        for name in ("pure", backend):
            config = ProtocolConfig(
                delta=delta, dimension=dimension, k=8, seed=seed, backend=name
            )
            payload = HierarchicalReconciler(config).encode(alice)
            result = reconcile(alice, bob, config)
            outcomes[name] = (
                payload,
                result.level,
                sorted(result.repaired),
                result.levels_probed,
            )
        assert outcomes["pure"] == outcomes[backend]


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_wide_key_tables_fall_back_under_auto(backend):
    """'auto' must never hand a >64-bit-key table to the numpy backend."""
    config = IBLTConfig(cells=16, q=4, key_bits=200, seed=2)
    table = IBLT(config, backend="auto")
    assert table.backend_name == "pure"
    table.insert((1 << 199) | 12345)
    assert IBLT.from_bytes(table.to_bytes(), config).to_bytes() == table.to_bytes()
