"""Unit tests for the IBLT cell algebra and serialisation."""

import pytest

from repro.errors import ConfigError, SerializationError
from repro.iblt.table import (
    DEFAULT_SAFETY,
    IBLT,
    IBLTConfig,
    PEELING_THRESHOLDS,
    recommended_cells,
)


def make_table(cells=32, q=4, key_bits=64, seed=1):
    return IBLT(IBLTConfig(cells=cells, q=q, key_bits=key_bits, seed=seed))


class TestConfig:
    def test_valid_config(self):
        config = IBLTConfig(cells=32, q=4)
        assert config.capacity > 0

    def test_cells_must_be_multiple_of_q(self):
        with pytest.raises(ConfigError):
            IBLTConfig(cells=30, q=4)

    def test_q_too_small(self):
        with pytest.raises(ConfigError):
            IBLTConfig(cells=30, q=1)

    def test_bad_key_bits(self):
        with pytest.raises(ConfigError):
            IBLTConfig(cells=32, q=4, key_bits=0)

    def test_bad_checksum_bits(self):
        with pytest.raises(ConfigError):
            IBLTConfig(cells=32, q=4, checksum_bits=65)

    def test_capacity_scales_with_cells(self):
        small = IBLTConfig(cells=32, q=4).capacity
        large = IBLTConfig(cells=320, q=4).capacity
        assert large > small * 5


class TestRecommendedCells:
    def test_minimum_floor(self):
        assert recommended_cells(0) >= 32

    def test_multiple_of_q(self):
        for q in (3, 4, 5):
            assert recommended_cells(100, q=q) % q == 0

    def test_enough_capacity(self):
        for diff in (1, 10, 100, 1000):
            cells = recommended_cells(diff, q=4)
            assert IBLTConfig(cells=cells, q=4).capacity >= diff

    def test_respects_threshold(self):
        cells = recommended_cells(1000, q=3, safety=1.0)
        assert cells >= 1000 / PEELING_THRESHOLDS[3]

    def test_validation(self):
        with pytest.raises(ConfigError):
            recommended_cells(-1)
        with pytest.raises(ConfigError):
            recommended_cells(10, q=7)
        with pytest.raises(ConfigError):
            recommended_cells(10, safety=0)

    def test_default_safety_below_one(self):
        assert 0 < DEFAULT_SAFETY < 1


class TestCellAlgebra:
    def test_insert_then_delete_is_empty(self):
        table = make_table()
        table.insert(42)
        table.delete(42)
        assert table.is_empty()

    def test_insert_touches_q_cells(self):
        table = make_table(q=4)
        table.insert(7)
        assert sum(table.counts) == 4
        assert table.nonzero_cells() == 4

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            make_table().insert(-1)

    def test_oversized_key_rejected(self):
        table = make_table(key_bits=8)
        with pytest.raises(ValueError):
            table.insert(256)

    def test_insert_all_delete_all(self):
        table = make_table()
        table.insert_all(range(10))
        table.delete_all(range(10))
        assert table.is_empty()

    def test_subtract_cancels_common_keys(self):
        alice = make_table(seed=5)
        bob = make_table(seed=5)
        alice.insert_all([1, 2, 3, 100])
        bob.insert_all([2, 3, 100, 999])
        diff = alice.subtract(bob)
        # Only keys 1 (Alice) and 999 (Bob) remain.
        assert not diff.is_empty()
        assert sum(diff.counts) == 0  # +q for Alice key, -q for Bob key

    def test_subtract_identical_sets_is_empty(self):
        alice = make_table(seed=9)
        bob = make_table(seed=9)
        keys = [splitkey * 17 for splitkey in range(50)]
        alice.insert_all(keys)
        bob.insert_all(keys)
        assert alice.subtract(bob).is_empty()

    def test_subtract_config_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            make_table(seed=1).subtract(make_table(seed=2))

    def test_copy_is_independent(self):
        table = make_table()
        table.insert(5)
        clone = table.copy()
        clone.delete(5)
        assert not table.is_empty()
        assert clone.is_empty()


class TestPurity:
    def test_single_key_cell_is_pure(self):
        table = make_table()
        table.insert(1234)
        pure_cells = [i for i in range(32) if table.cell_is_pure(i)]
        assert len(pure_cells) == 4
        assert all(table.cell_is_pure(i) == 1 for i in pure_cells)

    def test_deleted_key_cell_is_pure_negative(self):
        table = make_table()
        table.delete(1234)
        pure = [table.cell_is_pure(i) for i in range(32) if table.cell_is_pure(i)]
        assert pure == [-1] * 4

    def test_two_keys_in_cell_not_pure(self):
        table = make_table(cells=4, q=4)  # 1 cell per partition: all collide
        table.insert(1)
        table.insert(2)
        assert all(table.cell_is_pure(i) == 0 for i in range(4))

    def test_checksum_guards_fake_purity(self):
        # Construct a cell with count 1 but key_sum being XOR of 3 keys:
        # 2 inserts + 1 delete in the same cell.
        table = make_table(cells=4, q=4)
        table.insert(1)
        table.insert(2)
        table.delete(3)
        assert all(table.counts[i] == 1 for i in range(4))
        assert all(table.cell_is_pure(i) == 0 for i in range(4))


class TestSerialisation:
    def test_roundtrip(self):
        table = make_table(seed=77)
        table.insert_all([3, 1415, 926535, 2**63 - 1])
        table.delete(897)
        data = table.to_bytes()
        restored = IBLT.from_bytes(data, table.config)
        assert restored.counts == table.counts
        assert restored.key_sums == table.key_sums
        assert restored.check_sums == table.check_sums

    def test_roundtrip_preserves_subtract_decode(self):
        table = make_table(seed=4)
        table.insert_all(range(5))
        restored = IBLT.from_bytes(table.to_bytes(), table.config)
        empty = make_table(seed=4)
        assert restored.subtract(table).is_empty()
        assert not restored.subtract(empty).is_empty()

    def test_serialized_bits_matches_payload(self):
        table = make_table()
        table.insert_all(range(20))
        bits = table.serialized_bits()
        assert (bits + 7) // 8 == len(table.to_bytes())

    def test_trailing_garbage_rejected(self):
        table = make_table()
        data = table.to_bytes() + b"\xff\xff"
        with pytest.raises(SerializationError):
            IBLT.from_bytes(data, table.config)

    def test_truncated_payload_rejected(self):
        table = make_table()
        table.insert(5)
        data = table.to_bytes()[:-3]
        with pytest.raises(SerializationError):
            IBLT.from_bytes(data, table.config)

    def test_wide_keys_roundtrip(self):
        config = IBLTConfig(cells=16, q=4, key_bits=200, seed=2)
        table = IBLT(config)
        table.insert((1 << 199) | 12345)
        restored = IBLT.from_bytes(table.to_bytes(), config)
        assert restored.key_sums == table.key_sums
