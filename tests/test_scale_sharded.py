"""Tests for the sharded reconciliation engine (partition, wire, engine)."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.errors import ConfigError, SerializationError
from repro.iblt.backends import available_backends
from repro.net.bits import BitReader, BitWriter
from repro.scale import (
    ShardedIncrementalSketch,
    ShardedReconciler,
    SpacePartitioner,
    reconcile_sharded,
)
from repro.scale.engine import SHARD_MAGIC, SHARD_VERSION, shard_protocol_config
from repro.scale.executors import make_executor
from repro.scale.partition import partition_level
from repro.workloads.synthetic import perturbed_pair

HAVE_NUMPY = "numpy" in available_backends()


def _workload(seed=3, n=400, true_k=8, noise=0.0, delta=2**12):
    model = "none" if noise == 0 else "uniform"
    return perturbed_pair(seed, n, delta, 2, true_k, noise, noise_model=model)


def _config(w, shards=4, **kwargs):
    kwargs.setdefault("k", 32)
    return ProtocolConfig(
        delta=w.delta, dimension=w.dimension, seed=5, shards=shards, **kwargs
    )


# ---------------------------------------------------------------- partition


class TestSpacePartitioner:
    def test_deterministic_across_instances(self):
        w = _workload()
        config = _config(w)
        a = SpacePartitioner(config)
        b = SpacePartitioner(config)
        assert a.level == b.level
        assert a.shard_ids(w.alice) == b.shard_ids(w.alice)

    def test_both_parties_agree_on_matching_points(self):
        w = _workload(noise=0)
        config = _config(w)
        partitioner = SpacePartitioner(config)
        # Alice and Bob share the base points; same point -> same shard.
        for point in w.alice[:50]:
            assert partitioner.shard_of(point) == partitioner.shard_of(point)

    def test_split_covers_every_point(self):
        w = _workload()
        config = _config(w)
        buckets = SpacePartitioner(config).split(w.alice)
        assert len(buckets) == config.shards
        merged = sorted(point for bucket in buckets for point in bucket)
        assert merged == sorted(w.alice)

    def test_single_shard_is_trivial(self):
        w = _workload()
        config = _config(w, shards=1)
        partitioner = SpacePartitioner(config)
        assert partitioner.shard_ids(w.alice[:20]) == [0] * 20

    def test_cells_nest_inside_shards(self):
        """Any cell at a level <= partition level maps into one shard."""
        w = _workload()
        config = _config(w)
        partitioner = SpacePartitioner(config)
        grid = partitioner.grid
        level = partitioner.level
        seen: dict[tuple, int] = {}
        for point in w.alice:
            cell = grid.cell(point, level)
            shard = partitioner.shard_of(point)
            assert seen.setdefault(cell, shard) == shard

    def test_scalar_and_vector_paths_agree(self):
        if not HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        w = _workload(n=600)
        config = _config(w, shards=5)
        partitioner = SpacePartitioner(config)
        assert partitioner._shard_ids_fast(w.alice) == partitioner.shard_ids(w.alice)

    def test_reasonable_balance_on_uniform_data(self):
        w = _workload(n=2000)
        config = _config(w)
        sizes = [len(b) for b in SpacePartitioner(config).split(w.alice)]
        assert min(sizes) > 0
        assert max(sizes) < 2.5 * (sum(sizes) / len(sizes))

    def test_partition_level_scales_with_shards(self):
        w = _workload()
        fine = partition_level(_config(w, shards=16))
        coarse = partition_level(_config(w, shards=2))
        assert fine <= coarse


# ------------------------------------------------------------------- engine


class TestShardedReconciler:
    def test_noise_free_matches_unsharded_exactly(self):
        w = _workload(noise=0)
        sharded = reconcile_sharded(w.alice, w.bob, _config(w))
        unsharded = reconcile(w.alice, w.bob, _config(w, shards=1))
        assert sharded.exact and unsharded.exact
        assert sorted(sharded.repaired) == sorted(unsharded.repaired)
        assert sorted(sharded.repaired) == sorted(w.alice)

    def test_size_invariant_under_noise(self):
        w = _workload(noise=3.0)
        result = reconcile_sharded(w.alice, w.bob, _config(w))
        assert len(result.repaired) == len(w.alice)
        assert len(result.shard_levels) == 4
        assert result.level == max(result.shard_levels)

    def test_transcript_single_round(self):
        w = _workload(noise=0)
        result = reconcile_sharded(w.alice, w.bob, _config(w))
        assert result.transcript.rounds == 1
        assert result.transcript.message_labels == ("sharded-sketch",)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_agree(self, executor):
        w = _workload(noise=0)
        config = _config(w, workers=2, executor=executor)
        result = reconcile_sharded(w.alice, w.bob, config)
        assert sorted(result.repaired) == sorted(w.alice)

    def test_centroid_strategy(self):
        w = _workload(noise=2.0)
        result = reconcile_sharded(w.alice, w.bob, _config(w), strategy="centroid")
        assert len(result.repaired) == len(w.alice)

    def test_empty_and_tiny_shards(self):
        # 3 points over 4 shards: at least one shard is empty on both sides.
        config = ProtocolConfig(delta=256, dimension=1, k=2, seed=7, shards=4)
        result = reconcile_sharded([(10,), (200,)], [(11,), (200,)], config)
        assert len(result.repaired) == 2

    def test_merged_plan_matches_surplus_counts(self):
        w = _workload(noise=0)
        result = reconcile_sharded(w.alice, w.bob, _config(w))
        plan = result.plan
        assert len(plan.additions) == result.alice_surplus
        assert len(plan.removals) == result.bob_surplus

    def test_shard_config_sizing(self):
        w = _workload()
        config = _config(w, k=32, shards=4)
        sub = shard_protocol_config(config)
        assert sub.k == 8 and sub.shards == 1
        assert shard_protocol_config(_config(w, shards=1)).k == 32

    def test_pure_and_fast_paths_bit_identical(self):
        if not HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        w = _workload(noise=2.0)
        with ShardedReconciler(_config(w, backend="pure")) as pure_engine, \
                ShardedReconciler(_config(w, backend="numpy")) as fast_engine:
            pure_payload = pure_engine.encode(w.alice)
            fast_payload = fast_engine.encode(w.alice)
            assert pure_payload == fast_payload
            pure_result = pure_engine.decode_and_repair(pure_payload, w.bob)
            fast_result = fast_engine.decode_and_repair(pure_payload, w.bob)
            assert pure_result.shard_levels == fast_result.shard_levels
            assert sorted(pure_result.repaired) == sorted(fast_result.repaired)

    def test_mismatched_shard_count_rejected(self):
        w = _workload(noise=0)
        with ShardedReconciler(_config(w, shards=4)) as four:
            payload = four.encode(w.alice)
        with ShardedReconciler(_config(w, shards=2)) as two:
            with pytest.raises(SerializationError):
                two.decode_and_repair(payload, w.bob)


# --------------------------------------------------------------------- wire


class TestShardedWire:
    def _payload_and_engine(self):
        w = _workload(noise=0, n=100)
        engine = ShardedReconciler(_config(w))
        return w, engine, engine.encode(w.alice)

    def test_bad_magic(self):
        w, engine, payload = self._payload_and_engine()
        with pytest.raises(SerializationError, match="magic"):
            engine.decode_and_repair(b"\x00" + payload[1:], w.bob)

    def test_bad_version(self):
        w, engine, payload = self._payload_and_engine()
        tampered = bytes([payload[0], 99]) + payload[2:]
        with pytest.raises(SerializationError, match="version"):
            engine.decode_and_repair(tampered, w.bob)

    def test_truncation(self):
        w, engine, payload = self._payload_and_engine()
        with pytest.raises(SerializationError):
            engine.decode_and_repair(payload[: len(payload) // 2], w.bob)

    def test_trailing_garbage(self):
        w, engine, payload = self._payload_and_engine()
        with pytest.raises(SerializationError):
            engine.decode_and_repair(payload + b"\xff", w.bob)

    def test_directory_count_mismatch(self):
        w, engine, payload = self._payload_and_engine()
        counts, payloads = engine.parse_frame(payload)
        writer = BitWriter()
        writer.write_uint(SHARD_MAGIC, 8)
        writer.write_uint(SHARD_VERSION, 8)
        writer.write_varint(engine.config.shards)
        writer.write_varint(engine.partitioner.level)
        for count in counts:
            writer.write_varint(count + 1)  # lie about every shard's size
        for shard_payload in payloads:
            writer.write_bytes(shard_payload)
        with pytest.raises(SerializationError, match="directory"):
            engine.decode_and_repair(writer.getvalue(), w.bob)

    def test_duplicate_level_in_shard_payload(self):
        from repro.scale.wire import read_shard_sketch

        w, engine, payload = self._payload_and_engine()
        _, payloads = engine.parse_frame(payload)
        shard_payload = payloads[0]
        reader = BitReader(shard_payload)
        reader.read_uint(8), reader.read_uint(8)
        n_points = reader.read_varint()
        n_levels = reader.read_varint()
        level = reader.read_varint()
        blob = reader.read_bytes()
        writer = BitWriter()
        writer.write_uint(0xB7, 8)
        writer.write_uint(2, 8)
        writer.write_varint(n_points)
        writer.write_varint(n_levels)
        for _ in range(2):  # carry the first level twice
            writer.write_varint(level)
            writer.write_bytes(blob)
        with pytest.raises(SerializationError, match="twice"):
            read_shard_sketch(
                writer.getvalue(), engine.shard_config, engine.grid
            )

    def test_blob_length_mismatch(self):
        from repro.scale.wire import read_shard_sketch

        w, engine, payload = self._payload_and_engine()
        _, payloads = engine.parse_frame(payload)
        reader = BitReader(payloads[0])
        reader.read_uint(8), reader.read_uint(8)
        n_points = reader.read_varint()
        reader.read_varint()
        level = reader.read_varint()
        blob = reader.read_bytes()
        writer = BitWriter()
        writer.write_uint(0xB7, 8)
        writer.write_uint(2, 8)
        writer.write_varint(n_points)
        writer.write_varint(1)
        writer.write_varint(level)
        writer.write_bytes(blob[:-1])  # short blob
        with pytest.raises(SerializationError, match="blob"):
            read_shard_sketch(
                writer.getvalue(), engine.shard_config, engine.grid
            )

    def test_codec_roundtrip_preserves_tables(self):
        from repro.scale.wire import read_shard_sketch, write_shard_sketch
        from repro.core.sketch import build_level_sketches

        w = _workload(noise=0, n=60)
        config = shard_protocol_config(_config(w))
        engine = ShardedReconciler(_config(w))
        sketches = build_level_sketches(config, engine.grid, w.alice[:40])
        payload = write_shard_sketch(40, sketches)
        parsed = read_shard_sketch(payload, config, engine.grid)
        assert parsed.n_points == 40
        assert [s.level for s in parsed.levels] == [s.level for s in sketches]
        for original, decoded in zip(sketches, parsed.levels):
            assert list(map(int, original.table.counts)) == list(
                map(int, decoded.table.counts)
            )
            assert list(map(int, original.table.key_sums)) == list(
                map(int, decoded.table.key_sums)
            )


# -------------------------------------------------------------- incremental


class TestShardedIncremental:
    def test_bulk_load_bit_identical_to_fresh_encode(self):
        w = _workload(noise=0)
        config = _config(w)
        sketch = ShardedIncrementalSketch(config)
        sketch.insert_all(w.alice)
        with ShardedReconciler(config) as engine:
            assert sketch.encode() == engine.encode(w.alice)

    def test_point_updates_stay_bit_identical(self):
        w = _workload(noise=0, n=120)
        config = _config(w)
        sketch = ShardedIncrementalSketch(config)
        sketch.insert_all(w.alice)
        extra = [(1, 2), (3000, 7), (9, 4000)]
        for point in extra:
            sketch.insert(point)
        sketch.remove(w.alice[0])
        final = [p for p in w.alice[1:]] + extra
        with ShardedReconciler(config) as engine:
            assert sketch.encode() == engine.encode(final)

    def test_update_touches_one_shard(self):
        w = _workload(noise=0, n=200)
        config = _config(w)
        sketch = ShardedIncrementalSketch(config)
        sketch.insert_all(w.alice)
        before = sketch.shard_sizes()
        point = (17, 23)
        sketch.insert(point)
        after = sketch.shard_sizes()
        changed = [i for i in range(config.shards) if before[i] != after[i]]
        assert changed == [sketch.partitioner.shard_of(point)]
        assert sketch.n_points == len(w.alice) + 1

    def test_incremental_payload_decodes(self):
        w = _workload(noise=0)
        config = _config(w)
        sketch = ShardedIncrementalSketch(config)
        sketch.insert_all(w.alice)
        with ShardedReconciler(config) as engine:
            result = engine.decode_and_repair(sketch.encode(), w.bob)
        assert sorted(result.repaired) == sorted(w.alice)


# ---------------------------------------------------------------- executors


class TestExecutors:
    def test_make_serial(self):
        executor = make_executor("serial", None, 4)
        assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        executor.close()

    def test_make_thread_preserves_order(self):
        with make_executor("thread", 2, 4) as executor:
            assert executor.kind in ("thread", "serial")
            assert executor.map(lambda x: -x, list(range(10))) == [
                -x for x in range(10)
            ]

    def test_auto_resolves(self):
        with make_executor("auto", None, 4, "pure") as executor:
            assert executor.kind in ("serial", "thread", "process")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_executor("gpu", None, 4)


# ------------------------------------------------------------------- config


class TestConfigKnobs:
    def test_shards_validated(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=256, dimension=1, k=2, shards=0)

    def test_workers_validated(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=256, dimension=1, k=2, workers=0)

    def test_executor_validated(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=256, dimension=1, k=2, executor="quantum")

    def test_empty_levels_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=256, dimension=1, k=2, levels=())
