"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def workload_path(tmp_path):
    path = tmp_path / "workload.json"
    exit_code = main([
        "generate", str(path), "--kind", "uniform", "--n", "80",
        "--delta", "4096", "--true-k", "3", "--noise", "2", "--seed", "4",
    ])
    assert exit_code == 0
    return path


class TestGenerate:
    def test_writes_valid_json(self, workload_path):
        data = json.loads(workload_path.read_text())
        assert data["delta"] == 4096
        assert len(data["alice"]) == 83
        assert len(data["bob"]) == 83

    @pytest.mark.parametrize("kind", ["uniform", "clustered", "sensor", "geo"])
    def test_all_kinds(self, tmp_path, kind):
        path = tmp_path / f"{kind}.json"
        args = ["generate", str(path), "--kind", kind, "--n", "40",
                "--delta", "4096", "--seed", "1"]
        assert main(args) == 0
        data = json.loads(path.read_text())
        assert data["alice"]

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        args = ["--kind", "uniform", "--n", "30", "--seed", "9"]
        main(["generate", str(a)] + args)
        main(["generate", str(b)] + args)
        assert a.read_text() == b.read_text()


class TestReconcile:
    def test_one_round(self, workload_path, capsys):
        assert main(["reconcile", str(workload_path), "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "one-round" in out
        assert "|S'_B|   : 83" in out

    def test_adaptive(self, workload_path, capsys):
        assert main([
            "reconcile", str(workload_path), "--k", "8", "--adaptive",
        ]) == 0
        assert "adaptive 2-round" in capsys.readouterr().out

    def test_output_file(self, workload_path, tmp_path):
        out_path = tmp_path / "repaired.json"
        assert main([
            "reconcile", str(workload_path), "--k", "8",
            "--output", str(out_path),
        ]) == 0
        repaired = json.loads(out_path.read_text())["repaired"]
        assert len(repaired) == 83

    def test_bad_workload_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"alice": []}))
        assert main(["reconcile", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestEstimateAndInfo:
    def test_estimate_prints_levels(self, workload_path, capsys):
        assert main(["estimate", str(workload_path), "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "est. difference" in out
        assert len(out.strip().splitlines()) > 3

    def test_info(self, capsys):
        assert main([
            "info", "--delta", "65536", "--dimension", "2", "--k", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "one-round message" in out
        assert "lower bound" in out


class TestServeStore:
    """``serve --store-dir`` operator mistakes die typed: one ``error:``
    line on stderr, exit code 2, never a traceback."""

    def test_missing_store_dir_is_typed(self, workload_path, tmp_path, capsys):
        code = main([
            "serve", str(workload_path), "--k", "8",
            "--store-dir", str(tmp_path / "nope"),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "does not exist" in captured.err
        assert "Traceback" not in captured.err

    def test_corrupt_store_is_typed(self, workload_path, tmp_path, capsys):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "snapshot.bin").write_bytes(b"not a snapshot at all")
        code = main([
            "serve", str(workload_path), "--k", "8",
            "--store-dir", str(store_dir),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "CRC" in captured.err
        assert "Traceback" not in captured.err

    def test_workload_store_mismatch_is_typed(
        self, workload_path, tmp_path, capsys
    ):
        import json as json_module

        from repro.core.config import ProtocolConfig
        from repro.store import DurableSketchStore

        data = json_module.loads(workload_path.read_text())
        config = ProtocolConfig(
            delta=data["delta"], dimension=data["dimension"], k=8, seed=0,
        )
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        store = DurableSketchStore.open(config, str(store_dir))
        store.bulk_load([tuple(p) for p in data["alice"][:10]])
        code = main([
            "serve", str(workload_path), "--k", "8",
            "--store-dir", str(store_dir),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "refusing to serve inconsistent state" in captured.err

    def test_serve_sync_end_to_end_with_recovery(
        self, workload_path, tmp_path, capsys
    ):
        """First boot bulk-loads and snapshots; a second incarnation
        recovers and the client's ``sync`` output says so."""
        import re
        import subprocess
        import sys

        store_dir = tmp_path / "store"
        store_dir.mkdir()

        def serve_one_sync():
            process = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    str(workload_path), "--k", "8", "--port", "0",
                    "--store-dir", str(store_dir), "--max-syncs", "1",
                ],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            )
            try:
                banner = process.stdout.readline()
                match = re.search(r"on [\w.]+:(\d+) ", banner)
                assert match, banner
                store_line = process.stdout.readline()
                code = main([
                    "sync", str(workload_path),
                    "--port", match.group(1), "--k", "8",
                ])
                assert code == 0
                assert process.wait(timeout=20) == 0
            finally:
                process.kill()
            return store_line

        first = serve_one_sync()
        first_sync_out = capsys.readouterr().out
        assert "first boot; snapshot published" in first
        assert "server   : recovered from fresh" in first_sync_out

        second = serve_one_sync()
        second_sync_out = capsys.readouterr().out
        assert "recovered from snapshot (generation 1" in second
        assert "server   : recovered from snapshot" in second_sync_out
        assert "repair" in second_sync_out
