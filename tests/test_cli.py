"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def workload_path(tmp_path):
    path = tmp_path / "workload.json"
    exit_code = main([
        "generate", str(path), "--kind", "uniform", "--n", "80",
        "--delta", "4096", "--true-k", "3", "--noise", "2", "--seed", "4",
    ])
    assert exit_code == 0
    return path


class TestGenerate:
    def test_writes_valid_json(self, workload_path):
        data = json.loads(workload_path.read_text())
        assert data["delta"] == 4096
        assert len(data["alice"]) == 83
        assert len(data["bob"]) == 83

    @pytest.mark.parametrize("kind", ["uniform", "clustered", "sensor", "geo"])
    def test_all_kinds(self, tmp_path, kind):
        path = tmp_path / f"{kind}.json"
        args = ["generate", str(path), "--kind", kind, "--n", "40",
                "--delta", "4096", "--seed", "1"]
        assert main(args) == 0
        data = json.loads(path.read_text())
        assert data["alice"]

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        args = ["--kind", "uniform", "--n", "30", "--seed", "9"]
        main(["generate", str(a)] + args)
        main(["generate", str(b)] + args)
        assert a.read_text() == b.read_text()


class TestReconcile:
    def test_one_round(self, workload_path, capsys):
        assert main(["reconcile", str(workload_path), "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "one-round" in out
        assert "|S'_B|   : 83" in out

    def test_adaptive(self, workload_path, capsys):
        assert main([
            "reconcile", str(workload_path), "--k", "8", "--adaptive",
        ]) == 0
        assert "adaptive 2-round" in capsys.readouterr().out

    def test_output_file(self, workload_path, tmp_path):
        out_path = tmp_path / "repaired.json"
        assert main([
            "reconcile", str(workload_path), "--k", "8",
            "--output", str(out_path),
        ]) == 0
        repaired = json.loads(out_path.read_text())["repaired"]
        assert len(repaired) == 83

    def test_bad_workload_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"alice": []}))
        assert main(["reconcile", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestEstimateAndInfo:
    def test_estimate_prints_levels(self, workload_path, capsys):
        assert main(["estimate", str(workload_path), "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "est. difference" in out
        assert len(out.strip().splitlines()) > 3

    def test_info(self, capsys):
        assert main([
            "info", "--delta", "65536", "--dimension", "2", "--k", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "one-round message" in out
        assert "lower bound" in out
