"""Smoke tests: every shipped example must run clean and tell its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "approximation ratio" in out
        assert "decoded at grid level" in out

    def test_sensor_fusion(self):
        out = run_example("sensor_fusion.py")
        assert "robust vs exact-ibf communication" in out
        assert "x smaller" in out

    def test_geo_sync(self):
        out = run_example("geo_sync.py")
        assert "adaptive saves" in out

    def test_noisy_measurements(self):
        out = run_example("noisy_measurements.py")
        assert "larger budgets decode finer levels" in out

    def test_replica_fleet(self):
        out = run_example("replica_fleet.py")
        assert "bit-identical to a fresh encode" in out
        assert "0 failed" in out

    def test_serve_sync(self):
        out = run_example("serve_sync.py")
        assert "2 sessions, 2 ok, 0 failed" in out
        assert "repairs equal=True" in out
        assert "transcripts equal=True" in out

    def test_every_example_has_a_test(self):
        """Adding an example without a smoke test should fail loudly."""
        shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        covered = {
            "quickstart.py", "sensor_fusion.py", "geo_sync.py",
            "noisy_measurements.py", "replica_fleet.py", "serve_sync.py",
        }
        assert shipped == covered
