"""Retry policy, typed failure classification, resumption, and shedding.

The resilience contract: transient transport failures are retried with
seeded (deterministic) backoff, interrupted rateless streams resume
instead of restarting, stale resume tokens reset and restart, fatal
refusals surface immediately, and a saturated server sheds load with a
typed ``RETRY_LATER`` carrying a retry-after hint the client honours.
"""

import asyncio

import pytest

from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig, reconcile_rateless
from repro.errors import (
    ChannelError,
    ConfigError,
    ReconciliationFailure,
    RetryExhaustedError,
    SerializationError,
    ServerOverloadedError,
    SessionError,
    StaleResumeTokenError,
    SyncRefusedError,
)
from repro.net.channel import Direction
from repro.net.faults import ChaosProxy, FaultPlan
from repro.serve import (
    FATAL,
    RESET,
    RETRY,
    ReconciliationServer,
    RetryPolicy,
    classify,
    resilient_sync,
    sync,
)
from repro.session.rateless import RatelessResumeState
from repro.workloads.synthetic import perturbed_pair

DELTA = 2048
SCENARIO_TIMEOUT = 20.0
#: Rateless knob forcing a multi-increment stream (room to interrupt it).
RATELESS = RatelessConfig(initial_cells=8)


def run_scenario(coro):
    async def bounded():
        return await asyncio.wait_for(coro, SCENARIO_TIMEOUT)

    return asyncio.run(bounded())


def _config(**kwargs):
    defaults = dict(delta=DELTA, dimension=2, k=6, seed=9)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


def _workload(seed=3):
    return perturbed_pair(seed, 120, DELTA, 2, 8, 2)


def _fast_policy(**kwargs):
    defaults = dict(attempts=5, base_delay=0.005, max_delay=0.02, seed=1)
    defaults.update(kwargs)
    return RetryPolicy(**defaults)


class TestClassify:
    @pytest.mark.parametrize("error,verdict", [
        (SessionError("timed out"), RETRY),
        (SerializationError("mangled frame"), RETRY),
        (ChannelError("closed"), RETRY),
        (ServerOverloadedError("shed", retry_after=0.1), RETRY),
        (StaleResumeTokenError("unknown token"), RESET),
        (SyncRefusedError("digest mismatch"), FATAL),
        (ReconciliationFailure("cap exceeded"), FATAL),
        (ConfigError("bad k"), FATAL),
        (ValueError("not even a library error"), FATAL),
    ])
    def test_verdicts(self, error, verdict):
        assert classify(error) == verdict


class TestRetryPolicy:
    def test_same_seed_same_delays(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.backoff(i) for i in range(6)] == [
            b.backoff(i) for i in range(6)
        ]

    def test_different_seeds_different_jitter(self):
        a = [RetryPolicy(seed=1).backoff(i) for i in range(6)]
        b = [RetryPolicy(seed=2).backoff(i) for i in range(6)]
        assert a != b

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.8, jitter=0.0, seed=0
        )
        delays = [policy.backoff(i) for i in range(8)]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert all(d == 0.8 for d in delays[3:])

    def test_jitter_stretches_within_bound(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3)
        for attempt in range(20):
            delay = policy.backoff(0)
            assert 0.1 <= delay <= 0.1 * 1.5

    def test_server_hint_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.001, jitter=0.0, seed=0)
        assert policy.backoff(0, hint=0.5) == 0.5
        assert policy.backoff(5, hint=0.0) < 0.5

    def test_validation_is_typed(self):
        with pytest.raises(ConfigError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(deadline=0)


class TestResilientSync:
    def test_fatal_refusal_is_not_retried(self):
        workload = _workload()

        async def scenario():
            async with ReconciliationServer(
                _config(), workload.alice
            ) as server:
                with pytest.raises(SyncRefusedError, match="digest mismatch"):
                    await resilient_sync(
                        *server.address, _config(seed=10), workload.bob,
                        policy=_fast_policy(), timeout=5,
                    )
                await server.wait_for_sessions(1)
                return server.summary()

        summary = run_scenario(scenario())
        assert summary["sessions"] == 1, "a fatal refusal must not burn retries"

    def test_exhaustion_carries_typed_history(self):
        workload = _workload()
        slept = []

        async def fake_sleep(delay):
            slept.append(delay)

        async def scenario():
            # Bind-and-release: a port nothing listens on -> retryable
            # SessionError on every attempt.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            with pytest.raises(RetryExhaustedError) as excinfo:
                await resilient_sync(
                    "127.0.0.1", port, _config(), workload.bob,
                    policy=_fast_policy(attempts=3), sleep=fake_sleep,
                    timeout=1,
                )
            return excinfo.value

        error = run_scenario(scenario())
        assert len(error.attempts) == 3
        assert all(v == RETRY for _, _, v in error.attempts)
        assert all(name == "SessionError" for _, name, _ in error.attempts)
        assert isinstance(error.__cause__, SessionError)
        assert len(slept) == 2, "no sleep after the final attempt"

    def test_deadline_budget_bounds_the_sequence(self):
        workload = _workload()

        async def scenario():
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            policy = RetryPolicy(
                attempts=50, base_delay=10.0, jitter=0.0, deadline=0.5, seed=0
            )
            with pytest.raises(RetryExhaustedError, match="deadline budget"):
                await resilient_sync(
                    "127.0.0.1", port, _config(), workload.bob,
                    policy=policy, timeout=1,
                )

        run_scenario(scenario())

    def test_resumes_after_mid_stream_disconnect(self):
        """The headline property: a cut rateless stream resumes where it
        died and the resumed connection ships only remaining increments."""
        workload = _workload()
        config = _config()
        clean = reconcile_rateless(
            workload.alice, workload.bob, config, RATELESS
        )
        plan = FaultPlan(disconnect=(Direction.ALICE_TO_BOB, 2))

        async def scenario():
            resume = RatelessResumeState()
            async with ReconciliationServer(
                config, workload.alice, rateless=RATELESS, timeout=2.0
            ) as server:
                async with ChaosProxy(*server.address, plan) as proxy:
                    result = await resilient_sync(
                        *proxy.address, config, workload.bob,
                        variant="rateless", rateless=RATELESS,
                        policy=_fast_policy(), resume=resume, timeout=2,
                    )
                await server.wait_for_sessions(2)
                return result, resume, server

        result, resume, server = run_scenario(scenario())
        assert sorted(result.repaired) == sorted(clean.repaired)
        assert resume.completed
        summary = server.summary()
        assert summary["resumed"] == 1
        resumed_stats = [
            s for s in server.stats if s.resumed_from is not None
        ]
        assert [s.resumed_from for s in resumed_stats] == [2]
        # The resumed connection shipped strictly fewer sketch bytes than
        # a from-scratch run: that is what resumption buys.
        (ok_stats,) = [s for s in server.stats if s.ok]
        assert (
            ok_stats.transcript.alice_to_bob_bytes
            < clean.transcript.alice_to_bob_bytes
        )

    def test_truncated_increment_retries_to_success(self):
        """A truncated increment fails its parse with a typed
        ``SerializationError`` *before* anything is absorbed — the resume
        checkpoint stays unmoved — and the classification is RETRY, so
        the resilient client rides out the mangled frames and completes
        with the correct repair once clean ones arrive."""
        workload = _workload()
        config = _config()
        clean = reconcile_rateless(
            workload.alice, workload.bob, config, RATELESS
        )
        # Truncate the first two increment frames the proxy ever carries
        # (the injector counts across reconnects, so the retries advance
        # through — and past — the faulty window).
        plan = FaultPlan(
            seed="c1", truncate=1.0, window=2, only="A->B",
        )

        async def scenario():
            async with ReconciliationServer(
                config, workload.alice, rateless=RATELESS, timeout=2.0
            ) as server:
                async with ChaosProxy(*server.address, plan) as proxy:
                    result = await resilient_sync(
                        *proxy.address, config, workload.bob,
                        variant="rateless", rateless=RATELESS,
                        policy=_fast_policy(attempts=6), timeout=2,
                    )
                    return result, proxy.trace

        result, trace = run_scenario(scenario())
        assert sorted(result.repaired) == sorted(clean.repaired)
        assert any(kind == "truncate" for _, _, kind, _, _ in trace)

    def test_stale_resume_token_resets_and_succeeds(self):
        workload = _workload()
        config = _config()
        clean = reconcile_rateless(
            workload.alice, workload.bob, config, RATELESS
        )

        async def scenario():
            from repro.iblt.decode import PeelState
            from repro.serve import handshake

            # A token this server never issued, with a plausible-looking
            # in-progress peel: the server must refuse it typed, and the
            # resilient client must reset and complete from scratch.
            resume = RatelessResumeState()
            resume.token = handshake.resume_token(0xDEAD, 17)
            resume.peel = PeelState(strategy=config.decode_strategy)
            resume.next_index = 3
            async with ReconciliationServer(
                config, workload.alice, rateless=RATELESS
            ) as server:
                result = await resilient_sync(
                    *server.address, config, workload.bob,
                    variant="rateless", rateless=RATELESS,
                    policy=_fast_policy(), resume=resume, timeout=5,
                )
                await server.wait_for_sessions(2)
                return result, resume, server.summary()

        result, resume, summary = run_scenario(scenario())
        assert sorted(result.repaired) == sorted(clean.repaired)
        assert resume.completed
        assert summary["resumed"] == 0, "stale token must not resume"
        assert summary["failed"] == 1 and summary["ok"] == 1


class TestOverloadShedding:
    def test_saturated_server_sheds_typed_with_hint(self):
        workload = _workload()
        config = _config()

        async def scenario():
            async with ReconciliationServer(
                config, workload.alice, max_sessions=1, max_pending=0,
                retry_after_hint=0.02,
            ) as server:
                results = await asyncio.gather(*[
                    sync(*server.address, config, workload.bob, timeout=5)
                    for _ in range(6)
                ], return_exceptions=True)
                await server.wait_for_sessions(6)
                return results, server.summary()

        results, summary = run_scenario(scenario())
        shed = [r for r in results if isinstance(r, ServerOverloadedError)]
        ok = [r for r in results if not isinstance(r, Exception)]
        assert len(ok) >= 1
        assert shed, "a 1-slot server hit by 6 clients must shed"
        assert all(e.retry_after > 0 for e in shed)
        assert summary["shed"] == len(shed)
        assert summary["ok"] == len(ok)

    def test_resilient_clients_ride_out_the_shed(self):
        workload = _workload()
        config = _config()

        async def scenario():
            async with ReconciliationServer(
                config, workload.alice, max_sessions=1, max_pending=0,
                retry_after_hint=0.01,
            ) as server:
                results = await asyncio.gather(*[
                    resilient_sync(
                        *server.address, config, workload.bob, timeout=5,
                        policy=_fast_policy(attempts=10, seed=i),
                    )
                    for i in range(5)
                ])
                # Every client has its result; wait for the server side of
                # each final (successful) session to be recorded too.
                while server.summary()["ok"] < 5:
                    await asyncio.sleep(0.005)
                return results, server.summary()

        results, summary = run_scenario(scenario())
        first = sorted(results[0].repaired)
        assert all(sorted(r.repaired) == first for r in results)
        assert summary["ok"] == 5
        assert summary["shed"] >= 1

    def test_unbounded_queueing_remains_the_default(self):
        workload = _workload()
        config = _config()

        async def scenario():
            async with ReconciliationServer(
                config, workload.alice, max_sessions=1
            ) as server:
                results = await asyncio.gather(*[
                    sync(*server.address, config, workload.bob, timeout=10)
                    for _ in range(4)
                ])
                await server.wait_for_sessions(4)
                return results, server.summary()

        results, summary = run_scenario(scenario())
        assert len(results) == 4
        assert summary["shed"] == 0 and summary["ok"] == 4


class TestSessionDeadline:
    def test_stalling_client_cannot_pin_a_slot(self):
        """A client that handshakes and then stalls forever is evicted by
        the per-connection deadline with a typed failure."""
        workload = _workload()
        config = _config()

        async def scenario():
            async with ReconciliationServer(
                config, workload.alice, timeout=5.0, session_deadline=0.3,
            ) as server:
                from repro.serve import handshake
                from repro.serve.frames import encode_frame, read_frame

                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(encode_frame(handshake.hello_bytes(
                    "adaptive", server.digest("adaptive")
                )))
                await writer.drain()
                handshake.parse_welcome(await read_frame(reader, timeout=5))
                # Stall: never send the adaptive request.
                await server.wait_for_sessions(1)
                writer.close()
                return server.stats

        (stats,) = run_scenario(scenario())
        assert not stats.ok
        assert "deadline budget" in stats.error
