"""Unit tests for point metrics."""

import numpy as np
import pytest

from repro.emd.metrics import (
    SUPPORTED_METRICS,
    diameter,
    distance,
    pairwise_costs,
    validate_metric,
    validate_points,
)
from repro.errors import ConfigError


class TestDistance:
    def test_l1(self):
        assert distance((0, 0), (3, 4), "l1") == 7.0

    def test_l2(self):
        assert distance((0, 0), (3, 4), "l2") == 5.0

    def test_linf(self):
        assert distance((0, 0), (3, 4), "linf") == 4.0

    def test_identity(self):
        for metric in SUPPORTED_METRICS:
            assert distance((5, 5, 5), (5, 5, 5), metric) == 0.0

    def test_symmetry(self):
        for metric in SUPPORTED_METRICS:
            assert distance((1, 9), (4, 2), metric) == distance((4, 2), (1, 9), metric)

    def test_one_dimension_all_metrics_agree(self):
        for metric in SUPPORTED_METRICS:
            assert distance((3,), (10,), metric) == 7.0

    def test_dimension_mismatch(self):
        with pytest.raises(ConfigError):
            distance((1, 2), (1, 2, 3))

    def test_unknown_metric(self):
        with pytest.raises(ConfigError):
            distance((1,), (2,), "cosine")


class TestValidation:
    def test_validate_metric_passthrough(self):
        assert validate_metric("l1") == "l1"

    def test_validate_points_mixed_dims(self):
        with pytest.raises(ConfigError):
            validate_points([(1, 2), (1, 2, 3)])

    def test_validate_points_empty_ok(self):
        validate_points([])


class TestPairwiseCosts:
    def test_matches_scalar_distance(self):
        xs = [(0, 0), (2, 3), (9, 1)]
        ys = [(1, 1), (5, 5)]
        for metric in SUPPORTED_METRICS:
            costs = pairwise_costs(xs, ys, metric)
            assert costs.shape == (3, 2)
            for i, x in enumerate(xs):
                for j, y in enumerate(ys):
                    assert costs[i, j] == pytest.approx(distance(x, y, metric))

    def test_empty_inputs(self):
        assert pairwise_costs([], [], "l1").shape == (0, 0)

    def test_dimension_mismatch(self):
        with pytest.raises(ConfigError):
            pairwise_costs([(1, 2)], [(1, 2, 3)])

    def test_returns_float_array(self):
        costs = pairwise_costs([(0,)], [(7,)])
        assert costs.dtype == np.float64


class TestDiameter:
    def test_l1_diameter(self):
        assert diameter(11, 3, "l1") == 30.0

    def test_linf_diameter(self):
        assert diameter(11, 3, "linf") == 10.0

    def test_l2_diameter(self):
        assert diameter(11, 4, "l2") == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            diameter(0, 1)
        with pytest.raises(ConfigError):
            diameter(4, 0)
