"""Unit tests for the randomly shifted grid hierarchy."""

import random

import pytest

from repro.core.grid import ShiftedGridHierarchy
from repro.emd.metrics import distance
from repro.errors import CapacityExceeded, ConfigError


def make_grid(delta=1024, dimension=2, seed=7, occupancy_bits=20):
    return ShiftedGridHierarchy(delta, dimension, seed, occupancy_bits)


class TestConstruction:
    def test_max_level_covers_grid(self):
        grid = make_grid(delta=1000)
        assert 2 ** grid.max_level >= 1000

    def test_shift_within_range(self):
        grid = make_grid()
        assert len(grid.shift) == 2
        for offset in grid.shift:
            assert 0 <= offset < 2 ** grid.max_level

    def test_deterministic_shift(self):
        assert make_grid(seed=3).shift == make_grid(seed=3).shift

    def test_seed_changes_shift(self):
        assert make_grid(seed=1).shift != make_grid(seed=2).shift

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShiftedGridHierarchy(1, 2)
        with pytest.raises(ConfigError):
            ShiftedGridHierarchy(16, 0)
        with pytest.raises(ConfigError):
            ShiftedGridHierarchy(16, 2, occupancy_bits=0)


class TestCells:
    def test_level_zero_cells_are_points(self):
        grid = make_grid()
        a = grid.cell((5, 9), 0)
        b = grid.cell((5, 10), 0)
        assert a != b

    def test_cell_nesting(self):
        """A point's level-ℓ cell determines its level-(ℓ+1) cell by halving."""
        grid = make_grid()
        rng = random.Random(0)
        for _ in range(50):
            point = (rng.randrange(1024), rng.randrange(1024))
            for level in range(grid.max_level):
                fine = grid.cell(point, level)
                coarse = grid.cell(point, level + 1)
                assert tuple(c >> 1 for c in fine) == coarse

    def test_same_cell_implies_close(self):
        grid = make_grid()
        rng = random.Random(1)
        for level in (2, 5, 8):
            for _ in range(30):
                p = (rng.randrange(1024), rng.randrange(1024))
                q = (rng.randrange(1024), rng.randrange(1024))
                if grid.cell(p, level) == grid.cell(q, level):
                    assert distance(p, q, "l1") <= grid.cell_diameter(level)

    def test_out_of_range_point_rejected(self):
        grid = make_grid()
        with pytest.raises(ConfigError):
            grid.cell((1024, 0), 3)
        with pytest.raises(ConfigError):
            grid.cell((-1, 0), 3)

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ConfigError):
            make_grid().cell((1, 2, 3), 0)

    def test_bad_level_rejected(self):
        grid = make_grid()
        with pytest.raises(ConfigError):
            grid.cell((0, 0), grid.max_level + 1)
        with pytest.raises(ConfigError):
            grid.cell((0, 0), -1)

    def test_split_probability_bound(self):
        """Empirical split rate at distance t is ≲ t / 2^level (ℓ1 fact)."""
        delta = 2**14
        level = 7
        t = 16
        splits = 0
        trials = 400
        for seed in range(trials):
            grid = ShiftedGridHierarchy(delta, 1, seed)
            if grid.cell((5000,), level) != grid.cell((5000 + t,), level):
                splits += 1
        bound = t / 2**level  # = 0.125
        assert splits / trials <= bound * 1.6  # generous sampling slack


class TestCenters:
    def test_level_zero_center_is_exact(self):
        grid = make_grid()
        rng = random.Random(2)
        for _ in range(50):
            point = (rng.randrange(1024), rng.randrange(1024))
            assert grid.center(grid.cell(point, 0), 0) == point

    def test_center_within_half_diameter(self):
        grid = make_grid()
        rng = random.Random(3)
        for level in (1, 4, 7):
            for _ in range(30):
                point = (rng.randrange(1024), rng.randrange(1024))
                centre = grid.center(grid.cell(point, level), level)
                assert distance(point, centre, "l1") <= grid.cell_diameter(level)

    def test_center_clamped_to_grid(self):
        grid = make_grid()
        for level in range(grid.max_level + 1):
            centre = grid.center(grid.cell((0, 0), level), level)
            for coordinate in centre:
                assert 0 <= coordinate < 1024

    def test_center_dimension_checked(self):
        with pytest.raises(ConfigError):
            make_grid().center((1, 2, 3), 1)


class TestKeyPacking:
    def test_roundtrip(self):
        grid = make_grid()
        rng = random.Random(4)
        for level in (0, 3, grid.max_level):
            for _ in range(30):
                point = (rng.randrange(1024), rng.randrange(1024))
                cell = grid.cell(point, level)
                occurrence = rng.randrange(1000)
                key = grid.pack_key(cell, occurrence, level)
                assert grid.unpack_key(key, level) == (cell, occurrence)

    def test_key_fits_declared_width(self):
        grid = make_grid()
        for level in range(grid.max_level + 1):
            cell = grid.cell((1023, 1023), level)
            key = grid.pack_key(cell, (1 << 20) - 1, level)
            assert key.bit_length() <= grid.key_bits(level)

    def test_distinct_keys_for_distinct_cells(self):
        grid = make_grid()
        keys = set()
        for x in range(0, 1024, 64):
            for y in range(0, 1024, 64):
                keys.add(grid.pack_key(grid.cell((x, y), 2), 0, 2))
        assert len(keys) > 100  # essentially all distinct at level 2

    def test_occurrence_overflow_raises(self):
        grid = make_grid(occupancy_bits=4)
        cell = grid.cell((0, 0), 1)
        with pytest.raises(CapacityExceeded):
            grid.pack_key(cell, 16, 1)

    def test_unpack_validates_width(self):
        grid = make_grid()
        with pytest.raises(ConfigError):
            grid.unpack_key(1 << 200, 0)


class TestKeyStreams:
    def test_one_key_per_point(self):
        grid = make_grid()
        rng = random.Random(5)
        points = [(rng.randrange(1024), rng.randrange(1024)) for _ in range(100)]
        for level in (0, 4, 9):
            assert len(list(grid.keys_for(points, level))) == 100

    def test_duplicate_points_get_distinct_keys(self):
        grid = make_grid()
        points = [(7, 7)] * 5
        keys = list(grid.keys_for(points, 3))
        assert len(set(keys)) == 5

    def test_equal_multisets_give_equal_keys(self):
        """The cancellation property: same points -> same keys, any order."""
        grid = make_grid()
        rng = random.Random(6)
        points = [(rng.randrange(1024), rng.randrange(1024)) for _ in range(60)]
        shuffled = list(points)
        rng.shuffle(shuffled)
        for level in (0, 5):
            assert sorted(grid.keys_for(points, level)) == sorted(
                grid.keys_for(shuffled, level)
            )

    def test_in_cell_noise_cancels(self):
        """Two sets equal as cell multisets produce identical key sets even
        when the actual points differ inside cells."""
        grid = make_grid()
        level = 6
        alice = [(100, 100), (100, 120), (600, 600)]
        bob = []
        for point in alice:
            cell = grid.cell(point, level)
            centre = grid.center(cell, level)
            # A different point in the same cell.
            bob.append(centre)
        for a, b in zip(alice, bob):
            assert grid.cell(a, level) == grid.cell(b, level)
        assert sorted(grid.keys_for(alice, level)) == sorted(
            grid.keys_for(bob, level)
        )

    def test_bucket_points_sorted(self):
        grid = make_grid()
        points = [(5, 9), (5, 1), (5, 4)]
        buckets = grid.bucket_points(points, grid.max_level)
        for bucket in buckets.values():
            assert bucket == sorted(bucket)


class TestCellDiameter:
    def test_metric_variants(self):
        grid = make_grid(dimension=4)
        assert grid.cell_diameter(3, "l1") == 8 * 4
        assert grid.cell_diameter(3, "linf") == 8
        assert grid.cell_diameter(3, "l2") == pytest.approx(8 * 2.0)

    def test_monotone_in_level(self):
        grid = make_grid()
        diameters = [grid.cell_diameter(level) for level in range(grid.max_level)]
        assert diameters == sorted(diameters)
