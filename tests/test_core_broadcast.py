"""Unit tests for broadcast reconciliation."""

import random

from repro.core.broadcast import broadcast_reconcile
from repro.core.config import ProtocolConfig
from repro.emd.matching import emd
from repro.workloads.synthetic import perturbed_pair


def drifted_replicas(seed, n, delta, count, noise_levels):
    """One coordinator set + replicas at increasing drift."""
    rng = random.Random(seed)
    coordinator = [
        (rng.randrange(delta), rng.randrange(delta)) for _ in range(n)
    ]
    replicas = []
    for noise in noise_levels[:count]:
        replica = [
            tuple(
                max(0, min(delta - 1, c + rng.randint(-noise, noise)))
                for c in point
            )
            for point in coordinator
        ]
        replicas.append(replica)
    return coordinator, replicas


class TestBroadcast:
    def test_all_replicas_repaired(self):
        coordinator, replicas = drifted_replicas(0, 150, 4096, 3, (1, 4, 16))
        config = ProtocolConfig(delta=4096, dimension=2, k=6, seed=0)
        report = broadcast_reconcile(coordinator, replicas, config)
        assert report.failures == []
        for result in report.results:
            assert result is not None
            assert len(result.repaired) == len(coordinator)

    def test_single_encode_shared(self):
        coordinator, replicas = drifted_replicas(1, 100, 4096, 4, (1, 2, 4, 8))
        config = ProtocolConfig(delta=4096, dimension=2, k=4, seed=1)
        report = broadcast_reconcile(coordinator, replicas, config)
        assert report.unicast_bits == 4 * report.broadcast_bits

    def test_drifted_replicas_decode_coarser(self):
        coordinator, replicas = drifted_replicas(2, 200, 2**16, 2, (1, 64))
        config = ProtocolConfig(delta=2**16, dimension=2, k=6, seed=2)
        report = broadcast_reconcile(coordinator, replicas, config)
        close, far = report.results
        assert close.level < far.level

    def test_repair_within_guarantee_for_each_replica(self):
        """Repair is not guaranteed to *improve* an already-close replica
        (centre snapping can exceed tiny noise); it is guaranteed to stay
        within the O(d) factor of the EMD_k floor."""
        from repro.core.bounds import predicted_emd_bound
        from repro.emd.partial import emd_k

        coordinator, replicas = drifted_replicas(3, 120, 2**14, 3, (2, 8, 32))
        config = ProtocolConfig(delta=2**14, dimension=2, k=6, seed=3)
        report = broadcast_reconcile(coordinator, replicas, config)
        for replica, result in zip(replicas, report.results):
            after = emd(coordinator, result.repaired, backend="scipy")
            floor = emd_k(coordinator, replica, config.k, backend="scipy")
            bound = predicted_emd_bound(
                max(floor, 1.0), config.k, 2, config.diff_margin
            )
            assert after <= bound

    def test_identical_replica_untouched(self):
        coordinator, _ = drifted_replicas(4, 80, 4096, 1, (0,))
        config = ProtocolConfig(delta=4096, dimension=2, k=2, seed=4)
        report = broadcast_reconcile(coordinator, [list(coordinator)], config)
        result = report.results[0]
        assert result.level == 0
        assert sorted(result.repaired) == sorted(coordinator)

    def test_hopeless_replica_marked_failed(self):
        rng = random.Random(5)
        coordinator = [(rng.randrange(2**16), rng.randrange(2**16))
                       for _ in range(300)]
        unrelated = [(rng.randrange(2**16), rng.randrange(2**16))
                     for _ in range(300)]
        config = ProtocolConfig(
            delta=2**16, dimension=2, k=1, seed=5, diff_margin=1.0,
            levels=tuple(range(4)),
        )
        report = broadcast_reconcile(coordinator, [unrelated], config)
        assert report.failures == [0]
        assert report.results[0] is None
        assert "1 failed" in report.summary()

    def test_mixed_outcome_summary(self):
        coordinator, replicas = drifted_replicas(6, 100, 4096, 2, (1, 2))
        config = ProtocolConfig(delta=4096, dimension=2, k=4, seed=6)
        report = broadcast_reconcile(coordinator, replicas, config)
        text = report.summary()
        assert "2 replicas" in text
        assert "0 failed" in text

    def test_workload_integration(self):
        """Broadcast over the standard generator's alice/bob pair."""
        workload = perturbed_pair(7, 120, 2**12, 2, true_k=3, noise=2)
        config = ProtocolConfig(delta=2**12, dimension=2, k=8, seed=7)
        report = broadcast_reconcile(
            workload.alice, [workload.bob, list(workload.alice)], config
        )
        assert report.failures == []
