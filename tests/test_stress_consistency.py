"""Randomised cross-seed consistency checks (moderate-scale stress).

These aggregate over many seeds to catch rare events single-seed unit
tests miss: decode-level flakiness, guarantee violations in the tail,
occurrence-key collisions, and the determinism contract (same seed, same
bytes, on every code path).
"""

import random

import pytest

from repro.core.bounds import predicted_emd_bound
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler, reconcile
from repro.emd.matching import emd
from repro.emd.partial import emd_k
from repro.iblt.decode import decode
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells
from repro.workloads.synthetic import perturbed_pair

SEEDS = range(20)


@pytest.mark.slow
class TestGuaranteeTail:
    def test_emd_guarantee_across_many_seeds(self):
        """The O(d)·EMD_k bound must hold in (nearly) every run, not just on
        average — allow at most one tail violation in twenty."""
        violations = 0
        for seed in SEEDS:
            workload = perturbed_pair(seed, 120, 2**14, 2, true_k=4, noise=4)
            config = ProtocolConfig(delta=2**14, dimension=2, k=8, seed=seed)
            result = reconcile(workload.alice, workload.bob, config)
            achieved = emd(workload.alice, result.repaired, backend="scipy")
            floor = max(emd_k(workload.alice, workload.bob, 8, backend="scipy"), 1.0)
            bound = predicted_emd_bound(floor, 8, 2, config.diff_margin)
            if achieved > bound:
                violations += 1
        assert violations <= 1

    def test_size_invariant_never_breaks(self):
        for seed in SEEDS:
            workload = perturbed_pair(seed, 100, 2**12, 2, true_k=3, noise=3)
            config = ProtocolConfig(delta=2**12, dimension=2, k=8, seed=seed)
            result = reconcile(workload.alice, workload.bob, config)
            assert len(result.repaired) == len(workload.alice)


@pytest.mark.slow
class TestDeterminism:
    def test_encode_is_a_pure_function_of_seed_and_data(self):
        config = ProtocolConfig(delta=2**12, dimension=2, k=4, seed=77)
        workload = perturbed_pair(5, 150, 2**12, 2, true_k=3, noise=2)
        first = HierarchicalReconciler(config).encode(workload.alice)
        second = HierarchicalReconciler(config).encode(workload.alice)
        assert first == second

    def test_input_order_invariance(self):
        """The sketch is a function of the multiset, not the list order."""
        config = ProtocolConfig(delta=2**12, dimension=2, k=4, seed=78)
        workload = perturbed_pair(6, 150, 2**12, 2, true_k=3, noise=2)
        shuffled = list(workload.alice)
        random.Random(0).shuffle(shuffled)
        reconciler = HierarchicalReconciler(config)
        assert reconciler.encode(workload.alice) == reconciler.encode(shuffled)

    def test_repair_is_deterministic(self):
        config = ProtocolConfig(delta=2**12, dimension=2, k=6, seed=79)
        workload = perturbed_pair(7, 150, 2**12, 2, true_k=3, noise=3)
        results = [
            reconcile(workload.alice, workload.bob, config).repaired
            for _ in range(2)
        ]
        assert results[0] == results[1]


@pytest.mark.slow
class TestIBLTBulkConsistency:
    def test_many_random_subtract_decodes(self):
        """300 random subtract/decode rounds with zero wrong recoveries."""
        wrong = 0
        for seed in range(300):
            rng = random.Random(10_000 + seed)
            diff_a = {rng.getrandbits(48) for _ in range(rng.randrange(0, 20))}
            diff_b = {rng.getrandbits(48) for _ in range(rng.randrange(0, 20))}
            diff_b -= diff_a
            shared = {rng.getrandbits(48) for _ in range(50)} - diff_a - diff_b
            config = IBLTConfig(
                cells=recommended_cells(40, q=4), q=4, key_bits=48, seed=seed
            )
            alice, bob = IBLT(config), IBLT(config)
            alice.insert_all(shared | diff_a)
            bob.insert_all(shared | diff_b)
            result = decode(alice.subtract(bob))
            if not result.success:
                wrong += 1
                continue
            if sorted(result.alice_keys) != sorted(diff_a):
                wrong += 1
            if sorted(result.bob_keys) != sorted(diff_b):
                wrong += 1
        assert wrong == 0

    def test_checksum_blocks_misdecodes_at_overload(self):
        """Overloaded tables must fail, never hallucinate keys."""
        for seed in range(40):
            rng = random.Random(20_000 + seed)
            keys = {rng.getrandbits(48) for _ in range(200)}
            config = IBLTConfig(cells=64, q=4, key_bits=48, seed=seed)
            table = IBLT(config)
            table.insert_all(keys)
            result = decode(table)
            if result.success:
                # Success at 3x the threshold would itself be a red flag.
                assert sorted(result.alice_keys) == sorted(keys)
            for key in result.alice_keys:
                assert key in keys  # partial peels must still be truthful
