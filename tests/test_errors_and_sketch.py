"""Unit tests for the error hierarchy and the sketch wire-format helpers."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.sketch import HierarchySketch, LevelSketch, level_iblt_config
from repro.errors import (
    BackendUnavailableError,
    CapacityExceeded,
    ChannelError,
    ConfigError,
    DecodeFailure,
    ReconciliationFailure,
    ReproError,
    SerializationError,
)
from repro.iblt.table import IBLT


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ConfigError, SerializationError, DecodeFailure,
        ReconciliationFailure, ChannelError, CapacityExceeded,
        BackendUnavailableError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_config_error_is_value_error(self):
        """Callers using stdlib idioms still catch config problems."""
        assert issubclass(ConfigError, ValueError)

    def test_backend_unavailable_exported_from_package_root(self):
        import repro

        assert repro.BackendUnavailableError is BackendUnavailableError
        assert "BackendUnavailableError" in repro.__all__

    def test_typed_error_migration_keeps_value_error_compat(self):
        """The PR-7 ValueError -> ConfigError migrations must not break
        callers that catch ValueError (ConfigError subclasses it)."""
        from repro.iblt.hashing import HashFamily, splitmix64

        with pytest.raises(ValueError):
            splitmix64(-1)
        with pytest.raises(ValueError):
            HashFamily(q=1, cells=10, seed=0)
        config = ProtocolConfig(delta=64, dimension=1, k=2, seed=1)
        table = IBLT(level_iblt_config(
            config, ShiftedGridHierarchy(64, 1, 1), config.sketch_levels[0]
        ))
        with pytest.raises(ValueError):
            table.insert(-5)
        # And the same failures remain catchable as typed ConfigError.
        with pytest.raises(ConfigError):
            splitmix64(-1)
        with pytest.raises(ConfigError):
            table.insert(-5)

    def test_decode_failure_carries_diagnostics(self):
        failure = DecodeFailure("stalled", recovered=7, remaining=3)
        assert failure.recovered == 7
        assert failure.remaining == 3
        assert "stalled" in str(failure)

    def test_catching_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise CapacityExceeded("full")


class TestLevelConfigDerivation:
    def setup_method(self):
        self.config = ProtocolConfig(delta=1024, dimension=2, k=4, seed=5)
        self.grid = ShiftedGridHierarchy(1024, 2, 5)

    def test_levels_get_distinct_seeds(self):
        seeds = {
            level_iblt_config(self.config, self.grid, level).seed
            for level in self.config.sketch_levels
        }
        assert len(seeds) == len(self.config.sketch_levels)

    def test_key_bits_shrink_with_level(self):
        widths = [
            level_iblt_config(self.config, self.grid, level).key_bits
            for level in self.config.sketch_levels
        ]
        assert widths == sorted(widths, reverse=True)

    def test_cells_override(self):
        config = level_iblt_config(self.config, self.grid, 3, cells=64)
        assert config.cells == 64

    def test_default_cells_from_protocol_config(self):
        config = level_iblt_config(self.config, self.grid, 3)
        assert config.cells == self.config.cells_per_level


class TestHierarchySketchWire:
    def setup_method(self):
        self.config = ProtocolConfig(delta=256, dimension=1, k=2, seed=9)
        self.grid = ShiftedGridHierarchy(256, 1, 9)

    def build(self, levels):
        sketches = [
            LevelSketch(level, IBLT(level_iblt_config(self.config, self.grid, level)))
            for level in levels
        ]
        return HierarchySketch(n_points=5, levels=sketches)

    def test_roundtrip_subset_of_levels(self):
        sketch = self.build([0, 4, 8])
        restored = HierarchySketch.from_bytes(
            sketch.to_bytes(), self.config, self.grid
        )
        assert [s.level for s in restored.levels] == [0, 4, 8]
        assert restored.n_points == 5

    def test_too_many_levels_rejected(self):
        sketch = self.build(list(range(self.grid.max_level + 1)))
        payload = bytearray(sketch.to_bytes())
        # Patch the level-count varint (byte 2 after magic+version given
        # n_points=5 < 128 occupies one byte).
        payload[3] = 200
        with pytest.raises(SerializationError):
            HierarchySketch.from_bytes(bytes(payload), self.config, self.grid)

    def test_cells_by_level_override(self):
        small = LevelSketch(
            2, IBLT(level_iblt_config(self.config, self.grid, 2, cells=16))
        )
        sketch = HierarchySketch(n_points=1, levels=[small])
        restored = HierarchySketch.from_bytes(
            sketch.to_bytes(), self.config, self.grid, cells_by_level={2: 16}
        )
        assert restored.levels[0].table.config.cells == 16
