"""Unit tests for root finding and rational interpolation over GF(p)."""

import random

import pytest

from repro.errors import ReconciliationFailure
from repro.gf.factor import (
    NotSplitError,
    is_split_with_distinct_roots,
    roots_of_split_polynomial,
)
from repro.gf.field import MERSENNE61, PrimeField
from repro.gf.interp import interpolate_rational
from repro.gf.poly import Poly

SMALL = PrimeField(10_007)
BIG = PrimeField(MERSENNE61)


class TestSplitCheck:
    def test_split_polynomial_detected(self):
        poly = Poly.from_roots(SMALL, [1, 2, 3, 500])
        assert is_split_with_distinct_roots(poly)

    def test_repeated_root_rejected(self):
        poly = Poly.from_roots(SMALL, [4, 4])
        assert not is_split_with_distinct_roots(poly)

    def test_irreducible_quadratic_rejected(self):
        # x^2 + 1 is irreducible mod p when p ≡ 3 (mod 4); 10007 % 4 == 3.
        poly = Poly.make(SMALL, [1, 0, 1])
        assert not is_split_with_distinct_roots(poly)

    def test_constant_is_trivially_split(self):
        assert is_split_with_distinct_roots(Poly.constant(SMALL, 5))

    def test_zero_is_not_split(self):
        assert not is_split_with_distinct_roots(Poly.zero(SMALL))


class TestRootFinding:
    def test_empty_product(self):
        assert roots_of_split_polynomial(Poly.one(SMALL)) == []

    def test_single_root(self):
        assert roots_of_split_polynomial(Poly.from_roots(SMALL, [42])) == [42]

    def test_many_roots_small_field(self):
        roots = sorted(random.Random(1).sample(range(10_007), 25))
        poly = Poly.from_roots(SMALL, roots)
        assert roots_of_split_polynomial(poly) == roots

    def test_many_roots_big_field(self):
        rng = random.Random(2)
        roots = sorted({rng.getrandbits(60) for _ in range(30)})
        poly = Poly.from_roots(BIG, roots)
        assert roots_of_split_polynomial(poly) == roots

    def test_non_monic_input(self):
        poly = Poly.from_roots(SMALL, [5, 6]).scale(17)
        assert roots_of_split_polynomial(poly) == [5, 6]

    def test_not_split_raises(self):
        with pytest.raises(NotSplitError):
            roots_of_split_polynomial(Poly.make(SMALL, [1, 0, 1]))

    def test_zero_raises(self):
        with pytest.raises(NotSplitError):
            roots_of_split_polynomial(Poly.zero(SMALL))

    def test_deterministic_default_rng(self):
        poly = Poly.from_roots(SMALL, [9, 99, 999])
        assert (
            roots_of_split_polynomial(poly)
            == roots_of_split_polynomial(poly)
            == [9, 99, 999]
        )


def char_ratio_samples(field, alice, bob, points):
    """Evaluate chi_A / chi_B at the given points."""
    chi_a = Poly.from_roots(field, alice)
    chi_b = Poly.from_roots(field, bob)
    return [field.div(chi_a(z), chi_b(z)) for z in points]


class TestRationalInterpolation:
    def test_recovers_reduced_function(self):
        field = SMALL
        alice = [1, 2, 3, 10, 11]
        bob = [1, 2, 3, 20]
        d_bound = 3  # |A\B| + |B\A| = 2 + 1 = 3
        points = [5000 + i for i in range(d_bound + 1)]
        values = char_ratio_samples(field, alice, bob, points)
        result = interpolate_rational(field, points, values, 2, 1)
        assert sorted(roots_of_split_polynomial(result.numerator)) == [10, 11]
        assert sorted(roots_of_split_polynomial(result.denominator)) == [20]

    def test_overshooting_degrees_is_harmless(self):
        field = SMALL
        alice = [7, 8, 100]
        bob = [7, 8, 200]
        # True degrees are (1, 1) but we allocate (4, 4).
        points = [3000 + i for i in range(9)]
        values = char_ratio_samples(field, alice, bob, points)
        result = interpolate_rational(field, points, values, 4, 4)
        assert roots_of_split_polynomial(result.numerator) == [100]
        assert roots_of_split_polynomial(result.denominator) == [200]

    def test_identical_sets_give_constant_one(self):
        field = SMALL
        both = [5, 6, 7]
        points = [4000 + i for i in range(5)]
        values = char_ratio_samples(field, both, both, points)
        result = interpolate_rational(field, points, values, 2, 2)
        assert result.numerator == Poly.one(field)
        assert result.denominator == Poly.one(field)

    def test_undershooting_detected_with_verification_points(self):
        """With only d_p + d_q + 1 samples any values interpolate, so a too-
        small degree bound is invisible; extra verification samples make the
        system over-determined and expose it."""
        field = SMALL
        alice = [1, 2, 3, 4, 5, 6]
        bob: list[int] = []
        points = [2000 + i for i in range(8)]  # 4 needed + 4 verification
        values = char_ratio_samples(field, alice, bob, points)
        with pytest.raises(ReconciliationFailure):
            interpolate_rational(field, points, values, 2, 1)

    def test_evaluate_rational(self):
        field = SMALL
        alice = [10]
        bob = [20]
        points = [3000, 3001, 3002]
        values = char_ratio_samples(field, alice, bob, points)
        result = interpolate_rational(field, points, values, 1, 1)
        assert result(3000) == values[0]

    def test_input_validation(self):
        field = SMALL
        with pytest.raises(ReconciliationFailure):
            interpolate_rational(field, [1, 2], [1], 1, 1)
        with pytest.raises(ReconciliationFailure):
            interpolate_rational(field, [1, 1], [2, 2], 0, 0)
        with pytest.raises(ReconciliationFailure):
            interpolate_rational(field, [1], [2], 1, 1)

    def test_big_field_end_to_end(self):
        field = BIG
        rng = random.Random(7)
        shared = [rng.getrandbits(59) for _ in range(40)]
        alice = shared + [rng.getrandbits(59) for _ in range(6)]
        bob = shared + [rng.getrandbits(59) for _ in range(4)]
        # MTZ sizing rule: with total-difference bound m and size delta
        # Δ = |A| - |B|, use degrees ((m + Δ)/2, (m - Δ)/2) so the slack on
        # both sides matches (the common factor R must fit both).
        bound = 12
        delta = len(alice) - len(bob)
        d_p = (bound + delta) // 2
        d_q = (bound - delta) // 2
        points = [(1 << 60) + i for i in range(d_p + d_q + 1)]
        values = char_ratio_samples(field, alice, bob, points)
        result = interpolate_rational(field, points, values, d_p, d_q)
        assert sorted(roots_of_split_polynomial(result.numerator)) == sorted(
            set(alice) - set(bob)
        )
        assert sorted(roots_of_split_polynomial(result.denominator)) == sorted(
            set(bob) - set(alice)
        )
