"""End-to-end integration tests across subsystems.

These exercise the full stacks the benchmarks rely on: workload generator →
protocol/baseline → channel → EMD measurement, asserting the qualitative
claims (who wins, what stays flat, what explodes) at miniature scale so the
whole story is validated on every test run.
"""

import math
import random

import pytest

from repro import ProtocolConfig, emd, reconcile, reconcile_adaptive
from repro.analysis.methods import default_methods, measure_emd
from repro.baselines import CPIReconciler, ExactIBF, FullTransfer
from repro.emd.partial import emd_k
from repro.workloads import (
    boundary_pair,
    clustered_pair,
    geo_pair,
    perturbed_pair,
    sensor_pair,
)


class TestProtocolAgainstBaselines:
    def test_robust_beats_exact_ibf_under_noise(self):
        """The headline: noisy duplicates cost exact-IBF, not robust."""
        workload = perturbed_pair(0, 600, 2**20, 2, true_k=4, noise=4)
        config = ProtocolConfig(delta=2**20, dimension=2, k=8, seed=0)
        robust = reconcile(workload.alice, workload.bob, config)
        exact = ExactIBF(2**20, 2, seed=0).run(workload.alice, workload.bob)
        assert robust.transcript.total_bits < exact.total_bits / 2

    def test_exact_ibf_wins_without_noise(self):
        """Fairness check: with clean data, exact reconciliation is cheaper."""
        workload = perturbed_pair(1, 600, 2**20, 2, true_k=4, noise=0)
        config = ProtocolConfig(delta=2**20, dimension=2, k=8, seed=1)
        robust = reconcile(workload.alice, workload.bob, config)
        exact = ExactIBF(2**20, 2, seed=1).run(workload.alice, workload.bob)
        assert exact.total_bits < robust.transcript.total_bits

    def test_robust_flat_in_n_exact_linear(self):
        """4x the points: robust bits unchanged, exact-IBF bits ~4x."""
        robust_bits, exact_bits = [], []
        for n in (300, 1200):
            workload = perturbed_pair(2, n, 2**20, 2, true_k=4, noise=4)
            config = ProtocolConfig(delta=2**20, dimension=2, k=8, seed=2)
            robust_bits.append(
                reconcile(workload.alice, workload.bob, config).transcript.total_bits
            )
            exact_bits.append(
                ExactIBF(2**20, 2, seed=2).run(workload.alice, workload.bob).total_bits
            )
        # Cell layout is identical; only the varint-coded per-cell counts
        # grow (logarithmically) with n.
        assert robust_bits[1] < robust_bits[0] * 1.1
        assert exact_bits[1] > 2.5 * exact_bits[0]

    def test_all_methods_quality_ordering(self):
        """Exact methods reach EMD 0; robust lands within its bound."""
        workload = perturbed_pair(3, 300, 2**12, 2, true_k=4, noise=2)
        methods = default_methods(workload, k=8, seed=3)
        exact_methods = ("exact-ibf", "full-transfer", "cpi")
        for name in exact_methods:
            run = methods[name]()
            assert not run.failed, f"{name} failed"
            assert run.emd_to(workload) == 0.0, name
        robust_run = methods["robust"]()
        floor = emd_k(workload.alice, workload.bob, 8, backend="scipy")
        assert robust_run.emd_to(workload) <= max(50.0, 30 * max(floor, 1.0))


class TestAdaptiveVersusOneRound:
    def test_same_repair_quality_class(self):
        workload = clustered_pair(4, 300, 2**16, 2, true_k=4, noise=3)
        config = ProtocolConfig(delta=2**16, dimension=2, k=8, seed=4)
        one = reconcile(workload.alice, workload.bob, config)
        two = reconcile_adaptive(workload.alice, workload.bob, config)
        q_one = emd(workload.alice, one.repaired, backend="scipy")
        q_two = emd(workload.alice, two.repaired, backend="scipy")
        assert q_two <= 5 * max(q_one, 1.0)

    def test_adaptive_round_structure(self):
        workload = perturbed_pair(5, 200, 2**16, 2, true_k=2, noise=2)
        config = ProtocolConfig(delta=2**16, dimension=2, k=4, seed=5)
        result = reconcile_adaptive(workload.alice, workload.bob, config)
        assert result.transcript.rounds == 2
        assert result.transcript.message_labels[0] == "adaptive-request"


class TestScenarioWorkloads:
    @pytest.mark.parametrize("maker,kwargs", [
        (sensor_pair, dict(n_objects=150, delta=2**16, dimension=2,
                           sensor_noise=3.0, missed=2, ghosts=1)),
        (geo_pair, dict(n=150, delta=2**16, true_k=3, noise=3.0)),
        (clustered_pair, dict(n=150, delta=2**16, dimension=2,
                              true_k=3, noise=3.0)),
    ])
    def test_protocol_handles_every_scenario(self, maker, kwargs):
        workload = maker(6, **kwargs)
        config = ProtocolConfig(
            delta=workload.delta, dimension=workload.dimension,
            k=2 * workload.true_k + 2, seed=6,
        )
        result = reconcile(workload.alice, workload.bob, config)
        assert len(result.repaired) == len(workload.alice)
        before = measure_emd(workload, workload.bob)
        after = measure_emd(workload, result.repaired)
        assert after <= before or math.isclose(after, before, rel_tol=0.05)

    def test_boundary_workload_shift_matters(self):
        """Unshifted variant needs a far coarser level on adversarial data."""
        workload = boundary_pair(7, 300, 2**12, 2, true_k=2, cell_width=64)
        shifted_config = ProtocolConfig(delta=2**12, dimension=2, k=6, seed=7)
        unshifted_config = ProtocolConfig(
            delta=2**12, dimension=2, k=6, seed=7, random_shift=False
        )
        shifted = reconcile(workload.alice, workload.bob, shifted_config)
        unshifted = reconcile(workload.alice, workload.bob, unshifted_config)
        assert shifted.level < unshifted.level

    def test_duplicate_heavy_multisets(self):
        """Many co-located points: multiset occurrence keys hold up."""
        rng = random.Random(8)
        base = [(100, 100)] * 40 + [(500, 500)] * 40
        alice = base + [(900, 900)]
        bob = list(base) + [(10, 900)]
        config = ProtocolConfig(delta=1024, dimension=2, k=4, seed=8)
        result = reconcile(alice, bob, config)
        assert len(result.repaired) == len(alice)
        assert emd(alice, result.repaired, backend="scipy") <= emd(
            alice, bob, backend="scipy"
        )


class TestCPIAgainstIBF:
    def test_bit_efficiency_ordering_on_clean_data(self):
        """CPI ships fewer A->B bits than IBF for the same clean diff."""
        rng = random.Random(9)
        pool = set()
        while len(pool) < 520:
            pool.add((rng.randrange(2**12), rng.randrange(2**12)))
        pool = list(pool)
        shared, alice_extra, bob_extra = pool[:500], pool[500:510], pool[510:]
        alice = shared + alice_extra
        bob = shared + bob_extra
        cpi = CPIReconciler(2**12, 2, seed=9).run(alice, bob)
        ibf = ExactIBF(2**12, 2, seed=9).run(alice, bob)
        assert sorted(cpi.repaired) == sorted(ibf.repaired) == sorted(alice)
        assert (
            cpi.transcript.alice_to_bob_bits < ibf.transcript.alice_to_bob_bits
        )

    def test_full_transfer_is_the_ceiling(self):
        workload = perturbed_pair(10, 400, 2**12, 2, true_k=2, noise=0)
        full = FullTransfer(2**12, 2).run(workload.alice, workload.bob)
        assert full.total_bits >= 400 * 24  # n * d * log2(delta)
        assert sorted(full.repaired) == sorted(workload.alice)
