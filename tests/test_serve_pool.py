"""The pre-fork worker pool: lifecycle, drain, crash recovery, shedding.

Contract under test (ROADMAP item 2 / the multi-core serve work):

* N workers over one listen address serve every protocol variant with
  the same correct repairs as the single-process server, in both
  distribution modes (SO_REUSEPORT and shared-socket pre-fork accept).
* The shared :class:`~repro.serve.service.ServerCore` is built and
  warmed once, pre-fork; workers inherit it copy-on-write.
* SIGTERM drains in-flight sessions to completion before workers exit;
  a SIGKILL'd (crashed) worker surfaces to its client as a typed
  retryable error and is reforked by the parent, after which
  ``resilient_sync`` completes the interrupted rateless stream (the
  stale cross-incarnation token resets it, trading saved bytes for
  correctness — never a wrong repair).
* Overload shedding stays per worker: the ``retry_after`` hint scales
  with the shedding worker's own backlog, not the pool-wide burst.
"""

import asyncio
import os
import signal

import pytest

from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig, reconcile_rateless
from repro.errors import ConfigError, ServerOverloadedError, SessionError
from repro.iblt.decode import PeelState
from repro.net.channel import SimulatedChannel
from repro.scale.executors import fork_available
from repro.serve import (
    RESET,
    RETRY,
    ReconciliationServer,
    RetryPolicy,
    ServerCore,
    WorkerPoolServer,
    classify,
    handshake,
    resilient_sync,
    reuse_port_available,
    sync,
)
from repro.serve.frames import read_frame, write_frame
from repro.session import make_session
from repro.session.driver import outbound_messages
from repro.session.rateless import RatelessResumeState
from repro.workloads.synthetic import perturbed_pair

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="worker pool requires the fork start method"
)

DELTA = 2048
SCENARIO_TIMEOUT = 60.0
#: Forces a long multi-increment rateless stream (room to crash it).
RATELESS = RatelessConfig(initial_cells=8, growth=1.3, max_increments=64)

CONFIG = ProtocolConfig(delta=DELTA, dimension=2, k=6, seed=9)


def run_scenario(coro):
    async def bounded():
        return await asyncio.wait_for(coro, SCENARIO_TIMEOUT)

    return asyncio.run(bounded())


def _workload(seed=3, n=120, diff=8):
    return perturbed_pair(seed, n, DELTA, 2, diff, 2)


MODES = [False] + ([True] if reuse_port_available() else [])


@pytest.mark.parametrize(
    "reuse_port", MODES,
    ids=["shared-socket", "reuse-port"][: len(MODES)],
)
class TestPoolServesCorrectly:
    def test_all_variants_across_workers(self, reuse_port):
        workload = _workload()
        expected = sorted(
            reconcile_rateless(
                workload.alice, list(workload.bob), CONFIG, RATELESS
            ).repaired
        )

        async def scenario():
            async with WorkerPoolServer(
                CONFIG, workload.alice, workers=2, rateless=RATELESS,
                reuse_port=reuse_port,
            ) as pool:
                host, port = pool.address
                assert pool.mode == (
                    "reuse-port" if reuse_port else "shared-socket"
                )
                seen = set()
                for variant in ("one-round", "adaptive", "rateless"):
                    for _ in range(4):
                        result = await sync(
                            host, port, CONFIG, list(workload.bob),
                            variant=variant, rateless=RATELESS,
                        )
                        if variant == "rateless":
                            assert sorted(result.repaired) == expected
                        seen.add(result.served_by)
                await pool.wait_for_sessions(12)
                summary = pool.summary()
                # Both workers stamped welcomes (the kernel spread load).
                assert seen <= {0, 1} and len(seen) == 2
                assert summary["sessions"] == 12
                assert summary["ok"] == 12
                assert summary["failed"] == 0
                assert summary["restarts"] == 0
                assert summary["bytes_out"] > 0

        run_scenario(scenario())


class TestSharedCore:
    def test_warm_prebuilds_every_cache(self):
        workload = _workload()
        core = ServerCore(CONFIG, workload.alice, rateless=RATELESS).warm()
        assert "one-round" in core._encoded
        assert "sharded" in core._encoded
        # The warmed payload is exactly what a cold encode produces.
        cold = ServerCore(CONFIG, workload.alice, rateless=RATELESS)
        assert core.encoded("one-round") == cold.encoded("one-round")
        assert core.rateless_increment(0) == cold.rateless_increment(0)

    def test_core_and_config_are_mutually_exclusive(self):
        workload = _workload()
        core = ServerCore(CONFIG, workload.alice)
        with pytest.raises(ConfigError):
            ReconciliationServer(CONFIG, workload.alice, core=core)
        with pytest.raises(ConfigError):
            ReconciliationServer()
        with pytest.raises(ConfigError):
            WorkerPoolServer(CONFIG, workload.alice, core=core)
        with pytest.raises(ConfigError):
            WorkerPoolServer(core=core, rateless=RATELESS)
        with pytest.raises(ConfigError):
            WorkerPoolServer(CONFIG, workload.alice, workers=0)
        with pytest.raises(ConfigError):
            WorkerPoolServer(CONFIG, workload.alice, offload="bogus")

    def test_one_core_many_servers_identical_payloads(self):
        """Two servers over one core (the worker arrangement, sans fork)
        ship byte-identical sessions."""
        workload = _workload()
        core = ServerCore(CONFIG, workload.alice, rateless=RATELESS).warm()

        async def scenario():
            triples = []
            for _ in range(2):
                async with ReconciliationServer(core=core) as server:
                    channel = SimulatedChannel()
                    await sync(
                        *server.address, CONFIG, list(workload.bob),
                        variant="one-round", channel=channel,
                    )
                    triples.append(
                        [(m.direction, m.label, m.payload)
                         for m in channel.messages]
                    )
            assert triples[0] == triples[1]

        run_scenario(scenario())
        core.close()


class TestGracefulShutdown:
    def test_sigterm_drains_in_flight_session(self):
        """SIGTERM mid-session: the worker stops accepting but finishes
        the session it is serving before exiting 0 (no crash restart)."""
        workload = _workload()
        expected = sorted(
            reconcile_rateless(
                workload.alice, list(workload.bob), CONFIG, RATELESS
            ).repaired
        )

        async def scenario():
            async with WorkerPoolServer(
                CONFIG, workload.alice, workers=2, rateless=RATELESS,
            ) as pool:
                host, port = pool.address
                reader, writer = await asyncio.open_connection(host, port)
                digest = pool.digest("rateless")
                await write_frame(
                    writer, handshake.hello_bytes("rateless", digest)
                )
                handshake.parse_welcome(await read_frame(reader))
                first = await read_frame(reader)  # increment 0 in flight
                for pid in pool.worker_pids():
                    os.kill(pid, signal.SIGTERM)
                await asyncio.sleep(0.3)  # workers are draining now
                session = make_session(
                    "rateless", "bob", CONFIG, list(workload.bob),
                    rateless=RATELESS,
                )
                with session:
                    for message in outbound_messages(session.start()):
                        await write_frame(writer, message.payload)
                    output = session.feed(first)
                    while True:
                        for message in outbound_messages(output):
                            await write_frame(writer, message.payload)
                        if session.done:
                            break
                        output = session.feed(await read_frame(reader))
                    result = session.result
                writer.close()
                assert sorted(result.repaired) == expected
                # Drained workers exit 0 and are not reforked.
                deadline = asyncio.get_running_loop().time() + 10
                while any(p is not None for p in pool.worker_pids()):
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                summary = pool.summary()
                assert summary["restarts"] == 0
                assert summary["ok"] == 1

        run_scenario(scenario())


class TestCrashRecovery:
    def test_crash_mid_session_is_retryable_and_resumable(self):
        """SIGKILL every worker mid-rateless-stream: the in-flight sync
        fails with a RETRY-classified typed error, the parent reforks
        replacements, and resilient_sync completes against them (the
        stale token from the dead incarnation resets the stream)."""
        workload = _workload(seed=5, n=160, diff=40)
        expected = sorted(
            reconcile_rateless(
                workload.alice, list(workload.bob), CONFIG, RATELESS
            ).repaired
        )

        async def scenario():
            async with WorkerPoolServer(
                CONFIG, workload.alice, workers=2, rateless=RATELESS,
            ) as pool:
                host, port = pool.address
                before = list(pool.worker_pids())
                resume = RatelessResumeState()
                task = asyncio.ensure_future(
                    sync(
                        host, port, CONFIG, list(workload.bob),
                        variant="rateless", rateless=RATELESS, resume=resume,
                    )
                )
                # Let the stream advance, then kill every worker.
                while resume.next_index < 1 and not task.done():
                    await asyncio.sleep(0.001)
                for pid in pool.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                with pytest.raises(SessionError) as excinfo:
                    await task
                assert classify(excinfo.value) == RETRY
                assert resume.in_progress  # transferred increments survive

                # The monitor reforks crashed workers from the parent,
                # which still holds the sockets and the warmed core.
                deadline = asyncio.get_running_loop().time() + 10
                while pool.summary()["restarts"] < 2:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                after = list(pool.worker_pids())
                assert all(pid is not None for pid in after)
                assert set(after).isdisjoint(before)

                # Resume against the fresh incarnation: the old token is
                # typed-stale there, resilient_sync resets and restarts.
                result = await resilient_sync(
                    host, port, CONFIG, list(workload.bob),
                    variant="rateless", rateless=RATELESS, resume=resume,
                    policy=RetryPolicy(
                        attempts=6, base_delay=0.05, max_delay=0.5, seed=7,
                    ),
                )
                assert sorted(result.repaired) == expected
                assert resume.completed

        run_scenario(scenario())

    def test_cross_incarnation_token_is_typed_reset(self):
        """A structurally valid token no live worker minted is refused
        with the stale-token error (classify == RESET), never resumed."""
        workload = _workload()

        async def scenario():
            async with WorkerPoolServer(
                CONFIG, workload.alice, workers=2, rateless=RATELESS,
            ) as pool:
                host, port = pool.address
                forged = RatelessResumeState()
                forged.token = handshake.resume_token(0xDEAD, 1)
                forged.peel = PeelState()
                forged.next_index = 1
                assert forged.in_progress
                with pytest.raises(Exception) as excinfo:
                    await sync(
                        host, port, CONFIG, list(workload.bob),
                        variant="rateless", rateless=RATELESS, resume=forged,
                    )
                assert classify(excinfo.value) == RESET

        run_scenario(scenario())


class TestPerWorkerShedding:
    def test_retry_after_scales_with_worker_backlog_not_burst(self):
        """Regression (multi-core satellite): with ``max_pending=0`` no
        connection ever waits, so every shed's hint must be exactly
        ``retry_after_hint * (1 + 0)`` — per-worker backlog — no matter
        how large the pool-wide burst is.  Pre-pool code computed the
        hint from one process's ``_waiting``; under N workers that is
        still the right (per-worker) signal, which this pins down."""
        workload = _workload()
        hint = 0.02

        async def scenario():
            async with WorkerPoolServer(
                CONFIG, workload.alice, workers=2, rateless=RATELESS,
                max_sessions=1, max_pending=0, retry_after_hint=hint,
                timeout=10.0,
            ) as pool:
                host, port = pool.address
                burst = [
                    sync(
                        host, port, CONFIG, list(workload.bob),
                        variant="rateless", rateless=RATELESS,
                    )
                    for _ in range(12)
                ]
                outcomes = await asyncio.gather(*burst, return_exceptions=True)
                shed = [
                    e for e in outcomes
                    if isinstance(e, ServerOverloadedError)
                ]
                ok = [r for r in outcomes if not isinstance(r, Exception)]
                assert ok, "a saturated pool must still serve someone"
                assert shed, "a 12-burst against 2x1 slots must shed"
                for error in shed:
                    assert classify(error) == RETRY
                    # Per-worker watermark: zero waiters ahead, so the
                    # hint is the base — never scaled by the global burst.
                    assert error.retry_after == pytest.approx(hint)
                await pool.wait_for_sessions(12)
                summary = pool.summary()
                assert summary["shed"] == len(shed)
                assert summary["sessions"] == 12

        run_scenario(scenario())


class TestOffload:
    @pytest.mark.parametrize("offload", ["thread", "process"])
    def test_offload_repairs_identically(self, offload):
        if offload == "process" and not fork_available():
            pytest.skip("process offload requires fork")
        workload = _workload()
        expected = sorted(
            reconcile_rateless(
                workload.alice, list(workload.bob), CONFIG, RATELESS
            ).repaired
        )

        async def scenario():
            async with ReconciliationServer(
                CONFIG, workload.alice, rateless=RATELESS, offload=offload,
            ) as server:
                for variant in ("one-round", "adaptive", "rateless"):
                    result = await sync(
                        *server.address, CONFIG, list(workload.bob),
                        variant=variant, rateless=RATELESS,
                    )
                    if variant == "rateless":
                        assert sorted(result.repaired) == expected

        run_scenario(scenario())

    def test_pool_with_process_offload(self):
        workload = _workload()

        async def scenario():
            async with WorkerPoolServer(
                CONFIG, workload.alice, workers=2, rateless=RATELESS,
                offload="process",
            ) as pool:
                host, port = pool.address
                for variant in ("one-round", "adaptive", "rateless"):
                    await sync(
                        host, port, CONFIG, list(workload.bob),
                        variant=variant, rateless=RATELESS,
                    )
                await pool.wait_for_sessions(3)
                assert pool.summary()["ok"] == 3

        run_scenario(scenario())
