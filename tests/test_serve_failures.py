"""Failure injection at the session/transport boundary.

Contract under test (mirrors ``test_failure_injection.py`` one layer up):
**no truncated, duplicated, or mismatched exchange may ever hang or
escape as a non-library exception.**  Truncated frames, stray/duplicated
frames, handshake version and config-digest mismatches, and mid-session
disconnects must all surface as :class:`~repro.errors.SessionError` /
:class:`~repro.errors.SerializationError` within a bounded time.
"""

import asyncio

import pytest

from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig, reconcile_rateless
from repro.errors import SerializationError, SessionError, StaleResumeTokenError
from repro.net.channel import Direction
from repro.net.faults import ChaosProxy, FaultPlan
from repro.serve import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    ReconciliationServer,
    encode_frame,
    read_frame,
    sync,
)
from repro.serve import handshake
from repro.serve.frames import HEADER
from repro.session.rateless import RatelessResumeState
from repro.workloads.synthetic import perturbed_pair

DELTA = 2048
#: Every async scenario must finish well within this (never hang).
SCENARIO_TIMEOUT = 20.0


def _workload(seed=0):
    return perturbed_pair(seed, 60, DELTA, 2, 3, 2)


def _config(**kwargs):
    defaults = dict(delta=DELTA, dimension=2, k=6, seed=9)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


def run_scenario(coro):
    """Run one async scenario with a hard timeout (hang = failure)."""
    async def bounded():
        return await asyncio.wait_for(coro, SCENARIO_TIMEOUT)

    return asyncio.run(bounded())


class TestFrameCodec:
    def test_roundtrip(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"alpha") + encode_frame(b""))
        assert decoder.next_frame() == b"alpha"
        assert decoder.next_frame() == b""
        assert decoder.next_frame() is None
        assert decoder.at_boundary

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        frames = []
        for byte in encode_frame(b"slow"):
            decoder.feed(bytes([byte]))
            frame = decoder.next_frame()
            if frame is not None:
                frames.append(frame)
        assert frames == [b"slow"]

    def test_truncated_frame_is_typed_error_at_eof(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"whole-frame")[:-3])
        assert decoder.next_frame() is None
        with pytest.raises(SessionError):
            decoder.finish()

    def test_oversized_header_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(HEADER.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(SerializationError):
            decoder.next_frame()

    def test_encode_rejects_non_bytes(self):
        with pytest.raises(SerializationError):
            encode_frame("text")


class TestHandshakeParsing:
    def test_hello_roundtrip(self):
        config = _config()
        digest = handshake.config_digest(config, "adaptive")
        variant, parsed_digest, version = handshake.parse_hello(
            handshake.hello_bytes("adaptive", digest)
        )
        assert (variant, parsed_digest) == ("adaptive", digest)
        assert version == handshake.WIRE_VERSION

    def test_garbage_hello_is_serialization_error(self):
        with pytest.raises(SerializationError):
            handshake.parse_hello(b"\xff\xfe not json")

    def test_wrong_magic_rejected(self):
        with pytest.raises(SerializationError):
            handshake.parse_hello(b'{"magic": "other-protocol"}')

    def test_version_mismatch_is_session_error(self):
        payload = handshake.hello_bytes("one-round", "0" * 16).replace(
            b'"version":1', b'"version":999'
        )
        with pytest.raises(SessionError, match="version"):
            handshake.parse_hello(payload)

    def test_error_frame_surfaces_reason(self):
        with pytest.raises(SessionError, match="digest mismatch"):
            handshake.parse_welcome(handshake.error_bytes("digest mismatch"))

    def test_digest_separates_wire_relevant_fields(self):
        base = _config()
        assert handshake.config_digest(base) == handshake.config_digest(
            ProtocolConfig(
                delta=DELTA, dimension=2, k=6, seed=9, backend="pure",
                decode_strategy="scalar", executor="serial",
            )
        ), "private knobs must not change the digest"
        assert handshake.config_digest(base) != handshake.config_digest(
            _config(seed=10)
        )
        # shards digests only the sharded variant's wire.
        assert handshake.config_digest(base) == handshake.config_digest(
            _config(shards=4)
        )
        assert handshake.config_digest(base, "sharded") != handshake.config_digest(
            _config(shards=4), "sharded"
        )


class TestHandshakeRejection:
    def test_config_digest_mismatch(self):
        workload = _workload()

        async def scenario():
            async with ReconciliationServer(_config(), workload.alice) as server:
                host, port = server.address
                with pytest.raises(SessionError, match="digest mismatch"):
                    await sync(
                        host, port, _config(seed=10), workload.bob, timeout=5
                    )
                await server.wait_for_sessions(1)
                return server.stats

        (stats,) = run_scenario(scenario())
        assert not stats.ok
        assert "digest mismatch" in stats.error

    def test_unknown_variant_refused(self):
        workload = _workload()

        async def scenario():
            config = _config()
            async with ReconciliationServer(config, workload.alice) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(
                    handshake.hello_bytes("three-round", "0" * 16)
                ))
                await writer.drain()
                reply = await read_frame(reader, timeout=5)
                writer.close()
                with pytest.raises(SessionError, match="variant"):
                    handshake.parse_welcome(reply)

        run_scenario(scenario())

    def test_version_mismatch_refused(self):
        workload = _workload()

        async def scenario():
            config = _config()
            async with ReconciliationServer(config, workload.alice) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                bad_hello = handshake.hello_bytes(
                    "one-round", server.digest("one-round")
                ).replace(b'"version":1', b'"version":999')
                writer.write(encode_frame(bad_hello))
                await writer.drain()
                reply = await read_frame(reader, timeout=5)
                writer.close()
                with pytest.raises(SessionError, match="version"):
                    handshake.parse_welcome(reply)

        run_scenario(scenario())


class TestWireCorruption:
    def test_truncated_frame_then_disconnect(self):
        """A client dying mid-frame must leave a typed failure, no hang."""
        workload = _workload()

        async def scenario():
            config = _config()
            async with ReconciliationServer(config, workload.alice) as server:
                host, port = server.address
                _, writer = await asyncio.open_connection(host, port)
                whole = encode_frame(
                    handshake.hello_bytes("one-round", server.digest("one-round"))
                )
                writer.write(whole[: len(whole) - 4])
                await writer.drain()
                writer.close()
                await server.wait_for_sessions(1)
                return server.stats

        (stats,) = run_scenario(scenario())
        assert not stats.ok
        assert stats.error  # disconnect surfaced as a typed library error

    def test_probe_connection_ignored(self):
        """Connect-and-close (a health check) is not a session."""
        workload = _workload()

        async def scenario():
            async with ReconciliationServer(_config(), workload.alice) as server:
                host, port = server.address
                _, writer = await asyncio.open_connection(host, port)
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.2)
                assert list(server.stats) == []
                assert server.summary()["sessions"] == 0

        run_scenario(scenario())

    def test_garbage_hello_recorded_as_failure(self):
        workload = _workload()

        async def scenario():
            async with ReconciliationServer(_config(), workload.alice) as server:
                host, port = server.address
                _, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(b"\x00garbage, not a hello"))
                await writer.drain()
                writer.close()
                await server.wait_for_sessions(1)
                return server.stats

        (stats,) = run_scenario(scenario())
        assert not stats.ok
        assert "SerializationError" in stats.error

    def test_duplicated_frame_rejected_typed(self):
        """Replaying Bob's adaptive request after the session finished is a
        protocol violation the server must fail typed, never rerun."""
        workload = _workload()

        async def scenario():
            config = _config()
            async with ReconciliationServer(config, workload.alice) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(
                    handshake.hello_bytes("adaptive", server.digest("adaptive"))
                ))
                await writer.drain()
                handshake.parse_welcome(await read_frame(reader, timeout=5))
                from repro.core.adaptive import AdaptiveReconciler

                request = AdaptiveReconciler(config).bob_request(workload.bob)
                # Send the request twice: the Alice session completes on the
                # first and must reject the duplicate.
                writer.write(encode_frame(request) + encode_frame(request))
                await writer.drain()
                window = await read_frame(reader, timeout=5)
                assert window  # the first request was answered normally
                writer.close()
                await server.wait_for_sessions(1)
                return server.stats

        (stats,) = run_scenario(scenario())
        # The server session finished; the duplicate either raced the
        # session teardown (connection closed) or was rejected typed.
        assert stats.variant == "adaptive"

    def test_mid_session_disconnect_client_side(self):
        """A server hanging up after the handshake must raise on the client."""
        workload = _workload()

        async def scenario():
            config = _config()

            async def rude_server(reader, writer):
                await read_frame(reader, timeout=5)  # swallow the hello
                writer.write(encode_frame(handshake.welcome_bytes(
                    "one-round", handshake.config_digest(config)
                )))
                await writer.drain()
                writer.close()  # hang up instead of sending the sketch

            server = await asyncio.start_server(rude_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(SessionError, match="disconnect"):
                    await sync(
                        "127.0.0.1", port, config, workload.bob, timeout=5
                    )
            finally:
                server.close()
                await server.wait_closed()

        run_scenario(scenario())

    def test_read_timeout_is_session_error(self):
        """A silent peer trips the timeout as a typed error, not a hang."""

        async def scenario():
            async def silent_server(reader, writer):
                await asyncio.sleep(30)

            server = await asyncio.start_server(silent_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                with pytest.raises(SessionError, match="timed out"):
                    await read_frame(reader, timeout=0.2)
                writer.close()
            finally:
                server.close()
                await server.wait_closed()

        run_scenario(scenario())

    def test_unreachable_server_is_session_error(self):
        workload = _workload()

        async def scenario():
            # Bind-and-release to get a port nothing listens on.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            with pytest.raises(SessionError, match="cannot reach"):
                await sync("127.0.0.1", port, _config(), workload.bob, timeout=5)

        run_scenario(scenario())


class TestRatelessWireFaults:
    """Rateless-specific wire faults: the streaming variant adds frame
    kinds (increments, acks, resume handshakes) with their own failure
    modes, injected here through the chaos proxy."""

    RATELESS = RatelessConfig(initial_cells=8)

    def _rateless_workload(self):
        # A difference large enough that the stream spans several
        # increments — room for faults *between* increment frames.
        return perturbed_pair(3, 120, DELTA, 2, 8, 2)

    def _server(self, workload, **kwargs):
        kwargs.setdefault("rateless", self.RATELESS)
        return ReconciliationServer(_config(), workload.alice, **kwargs)

    async def _sync(self, address, workload, **kwargs):
        kwargs.setdefault("timeout", 5)
        return await sync(
            *address, _config(), workload.bob,
            variant="rateless", rateless=self.RATELESS, **kwargs,
        )

    def test_duplicated_increment_frame_is_typed(self):
        """A replayed increment frame must fail the in-order check with a
        typed SerializationError, never be double-counted into the peel."""
        workload = self._rateless_workload()
        plan = FaultPlan(duplicate=1.0, window=1, only="A->B")

        async def scenario():
            async with self._server(workload, timeout=1.5) as server:
                async with ChaosProxy(*server.address, plan) as proxy:
                    with pytest.raises(
                        SerializationError, match="out of order"
                    ):
                        await self._sync(proxy.address, workload, timeout=0.7)
                    return proxy.trace

        trace = run_scenario(scenario())
        assert ("A->B", 0, "duplicate", 0, 0) in trace

    def test_dropped_increment_frame_times_out_typed(self):
        workload = self._rateless_workload()
        plan = FaultPlan(drop=1.0, window=1, only="A->B")

        async def scenario():
            async with self._server(workload, timeout=1.5) as server:
                async with ChaosProxy(*server.address, plan) as proxy:
                    with pytest.raises(SessionError, match="timed out"):
                        await self._sync(proxy.address, workload, timeout=0.5)
                    return proxy.trace

        trace = run_scenario(scenario())
        assert ("A->B", 0, "drop", 0, 0) in trace

    def test_disconnect_between_increments_then_fresh_sync(self):
        """A cut stream leaves the server consistent: the very next plain
        (resume-free) sync over the same proxy completes correctly."""
        workload = self._rateless_workload()
        clean = reconcile_rateless(
            workload.alice, workload.bob, _config(), self.RATELESS
        )
        plan = FaultPlan(disconnect=(Direction.ALICE_TO_BOB, 1))

        async def scenario():
            async with self._server(workload, timeout=2.0) as server:
                async with ChaosProxy(*server.address, plan) as proxy:
                    with pytest.raises(SessionError):
                        await self._sync(proxy.address, workload, timeout=0.7)
                    # The injector's frame counters are already past the
                    # pinned cut, so the retry sails through untouched.
                    result = await self._sync(proxy.address, workload)
                await server.wait_for_sessions(2)
                return result, server.summary()

        result, summary = run_scenario(scenario())
        assert sorted(result.repaired) == sorted(clean.repaired)
        assert summary == {**summary, "ok": 1, "failed": 1, "resumed": 0}

    def test_fabricated_resume_token_rejected_typed(self):
        """A token the server never issued is refused as a typed
        StaleResumeTokenError — and plain sync() must NOT auto-reset the
        caller's resume state (that is resilient_sync's decision)."""
        workload = self._rateless_workload()

        async def scenario():
            from repro.iblt.decode import PeelState

            resume = RatelessResumeState()
            resume.token = handshake.resume_token(0xBEEF, 3)
            resume.peel = PeelState(strategy=_config().decode_strategy)
            resume.next_index = 2
            async with self._server(workload) as server:
                with pytest.raises(StaleResumeTokenError, match="unknown"):
                    await self._sync(server.address, workload, resume=resume)
                await server.wait_for_sessions(1)
                return resume, server.summary()

        resume, summary = run_scenario(scenario())
        assert resume.token is not None, "sync() must not reset resume state"
        assert resume.next_index == 2
        assert summary == {**summary, "ok": 0, "failed": 1, "resumed": 0}

    def test_garbage_resume_token_rejected_typed(self):
        workload = self._rateless_workload()

        async def scenario():
            from repro.iblt.decode import PeelState

            resume = RatelessResumeState()
            resume.token = "zzz-not-a-token"
            resume.peel = PeelState(strategy=_config().decode_strategy)
            resume.next_index = 1
            async with self._server(workload) as server:
                with pytest.raises(
                    StaleResumeTokenError, match="unparseable"
                ):
                    await self._sync(server.address, workload, resume=resume)

        run_scenario(scenario())

    def test_resume_index_beyond_watermark_rejected_typed(self):
        """A token the server DID issue cannot resume past what was
        actually streamed on it."""
        workload = self._rateless_workload()

        async def scenario():
            from repro.iblt.decode import PeelState

            resume = RatelessResumeState()
            async with self._server(workload) as server:
                first = await self._sync(
                    server.address, workload, resume=resume
                )
                assert resume.completed and resume.token is not None
                # Forge an in-progress state far beyond the watermark.
                beyond = RatelessResumeState()
                beyond.token = resume.token
                beyond.peel = PeelState(strategy=_config().decode_strategy)
                beyond.next_index = 10_000
                with pytest.raises(
                    StaleResumeTokenError, match="cannot resume"
                ):
                    await self._sync(server.address, workload, resume=beyond)
                return first

        run_scenario(scenario())
