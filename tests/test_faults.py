"""Deterministic fault injection: plan purity and transport equivalence.

Two contracts under test:

1. **Plan determinism** — a :class:`~repro.net.faults.FaultPlan` is a
   pure function of ``(seed, direction, index)``: replaying it yields
   bit-identical decisions, independent of transport, process, or
   ``PYTHONHASHSEED``.
2. **Transport equivalence** — the same plan driven over the synchronous
   simulation, the asyncio loopback channel, and a chaos TCP proxy
   produces the *same fault trace* and the same client-observed outcome
   (identical repaired multiset on success, identical error type on
   failure).  This is what makes a chaos failure found on TCP
   reproducible in-process with a debugger attached.
"""

import asyncio

import pytest

from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig, reconcile_rateless
from repro.errors import ConfigError, ReproError, SessionError
from repro.net.channel import Direction
from repro.net.faults import (
    ChaosProxy,
    FaultKind,
    FaultPlan,
    FaultyChannel,
    FaultyLoopbackChannel,
    pump_faulty,
)
from repro.serve import ReconciliationServer, sync
from repro.session import run_async
from repro.session.rateless import RatelessAliceSession, RatelessBobSession
from repro.workloads.synthetic import perturbed_pair

DELTA = 2048
#: Every async scenario must finish well within this (never hang).
SCENARIO_TIMEOUT = 20.0


def run_scenario(coro):
    async def bounded():
        return await asyncio.wait_for(coro, SCENARIO_TIMEOUT)

    return asyncio.run(bounded())


def _config(**kwargs):
    defaults = dict(delta=DELTA, dimension=2, k=6, seed=9)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


#: Small initial segment so the rateless stream needs several increments
#: (multiple frames per direction = room for mid-stream faults).
RATELESS = RatelessConfig(initial_cells=8)


def _workload(seed=3):
    return perturbed_pair(seed, 120, DELTA, 2, 8, 2)


class TestFaultPlan:
    def test_apply_is_pure_and_deterministic(self):
        plan = FaultPlan(seed="trial", drop=0.2, corrupt=0.2, truncate=0.2)
        payload = bytes(range(64))
        for index in range(20):
            for direction in Direction:
                first = plan.apply(direction, index, payload)
                again = plan.apply(direction, index, payload)
                by_value = plan.apply(direction.value, index, payload)
                assert first == again == by_value

    def test_equal_plans_decide_identically(self):
        a = FaultPlan(seed=77, drop=0.3, delay=0.3)
        b = FaultPlan(seed=77, drop=0.3, delay=0.3)
        payload = b"increment bytes"
        decisions_a = [
            a.apply(d, i, payload).decision.record()
            for d in Direction for i in range(30)
        ]
        decisions_b = [
            b.apply(d, i, payload).decision.record()
            for d in Direction for i in range(30)
        ]
        assert decisions_a == decisions_b
        assert any(r[2] != "none" for r in decisions_a), "plan never fired"

    def test_different_seeds_diverge(self):
        payload = b"x" * 40
        a = [
            FaultPlan(seed="one", drop=0.5).apply(d, i, payload).decision.kind
            for d in Direction for i in range(20)
        ]
        b = [
            FaultPlan(seed="two", drop=0.5).apply(d, i, payload).decision.kind
            for d in Direction for i in range(20)
        ]
        assert a != b

    def test_fault_shapes(self):
        payload = bytes(range(50))
        drop = FaultPlan(drop=1.0).apply(Direction.ALICE_TO_BOB, 0, payload)
        assert drop.payloads == () and not drop.disconnect
        cut = FaultPlan(truncate=1.0).apply(Direction.ALICE_TO_BOB, 0, payload)
        (shorter,) = cut.payloads
        assert len(shorter) < len(payload) and payload.startswith(shorter)
        corrupt = FaultPlan(corrupt=1.0).apply(Direction.ALICE_TO_BOB, 0, payload)
        (mangled,) = corrupt.payloads
        assert len(mangled) == len(payload) and mangled != payload
        dup = FaultPlan(duplicate=1.0).apply(Direction.ALICE_TO_BOB, 0, payload)
        assert dup.payloads == (payload, payload)
        delay = FaultPlan(delay=1.0, delay_ms=7).apply(
            Direction.ALICE_TO_BOB, 0, payload
        )
        assert delay.payloads == (payload,) and delay.delay_s == 0.007
        cut_plan = FaultPlan(disconnect=(Direction.BOB_TO_ALICE, 2))
        cut_hit = cut_plan.apply(Direction.BOB_TO_ALICE, 2, payload)
        assert cut_hit.disconnect and cut_hit.payloads == ()
        cut_miss = cut_plan.apply(Direction.ALICE_TO_BOB, 2, payload)
        assert not cut_miss.disconnect

    def test_empty_payload_never_mangled(self):
        for plan in (FaultPlan(truncate=1.0), FaultPlan(corrupt=1.0)):
            outcome = plan.apply(Direction.ALICE_TO_BOB, 0, b"")
            assert outcome.decision.kind is FaultKind.NONE
            assert outcome.payloads == (b"",)

    def test_window_bounds_eligibility(self):
        plan = FaultPlan(drop=1.0, window=3)
        for index in range(3):
            assert not plan.apply(Direction.ALICE_TO_BOB, index, b"p").payloads
        for index in range(3, 10):
            assert plan.apply(Direction.ALICE_TO_BOB, index, b"p").payloads

    def test_only_restricts_direction(self):
        plan = FaultPlan(drop=1.0, only="A->B")
        assert not plan.apply(Direction.ALICE_TO_BOB, 0, b"p").payloads
        assert plan.apply(Direction.BOB_TO_ALICE, 0, b"p").payloads == (b"p",)

    def test_validation_is_typed(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(drop=0.6, corrupt=0.6)
        with pytest.raises(ConfigError):
            FaultPlan(delay_ms=-1)
        with pytest.raises(ConfigError):
            FaultPlan(window=-1)
        with pytest.raises(ConfigError):
            FaultPlan(disconnect=("sideways", 0))
        with pytest.raises(ConfigError):
            FaultPlan(disconnect=("A->B", -1))
        with pytest.raises(ConfigError):
            FaultPlan(only="C->D")


class TestFaultyChannel:
    def test_faultless_plan_matches_clean_run(self):
        workload = _workload()
        config = _config()
        clean = reconcile_rateless(
            workload.alice, workload.bob, config, RATELESS
        )
        channel = FaultyChannel(FaultPlan())
        _, result = pump_faulty(
            RatelessAliceSession(config, workload.alice, RATELESS),
            RatelessBobSession(config, workload.bob, RATELESS),
            channel,
        )
        assert sorted(result.repaired) == sorted(clean.repaired)
        assert channel.trace == ()
        assert channel.total_bytes > 0

    def test_drop_raises_session_error_with_location(self):
        workload = _workload()
        config = _config()
        channel = FaultyChannel(FaultPlan(drop=1.0, window=1, only="A->B"))
        with pytest.raises(SessionError, match="A->B frame 0 dropped"):
            pump_faulty(
                RatelessAliceSession(config, workload.alice, RATELESS),
                RatelessBobSession(config, workload.bob, RATELESS),
                channel,
            )
        assert channel.trace == (("A->B", 0, "drop", 0, 0),)


# ---------------------------------------------------------------------------
# Transport equivalence: same plan, same trace, same client outcome on the
# synchronous simulation, the asyncio loopback, and a chaos TCP proxy.
# Every plan here fires a bounded number of faults early in the stream, so
# post-failure pipelining differences between transports cannot add trace
# entries after the runs diverge.
# ---------------------------------------------------------------------------

IDENTITY_PLANS = [
    ("drop", FaultPlan(seed="id-drop", drop=1.0, window=1, only="A->B")),
    ("truncate",
     FaultPlan(seed="id-trunc", truncate=1.0, window=1, only="A->B")),
    ("corrupt",
     FaultPlan(seed="id-corrupt", corrupt=1.0, window=1, only="A->B")),
    ("duplicate",
     FaultPlan(seed="id-dup", duplicate=1.0, window=1, only="A->B")),
    ("delay",
     FaultPlan(seed="id-delay", delay=1.0, delay_ms=1, window=2, only="A->B")),
    ("disconnect",
     FaultPlan(seed="id-cut", disconnect=(Direction.ALICE_TO_BOB, 1))),
]


def _sessions(config, workload):
    return (
        RatelessAliceSession(config, workload.alice, RATELESS),
        RatelessBobSession(config, workload.bob, RATELESS),
    )


def _sim_outcome(plan, config, workload):
    channel = FaultyChannel(plan)
    alice, bob = _sessions(config, workload)
    try:
        _, result = pump_faulty(alice, bob, channel)
        return ("ok", sorted(result.repaired)), channel.trace
    except ReproError as exc:
        return (type(exc).__name__,), channel.trace


async def _loopback_outcome(plan, config, workload):
    channel = FaultyLoopbackChannel(plan)
    alice, bob = _sessions(config, workload)

    async def drive(session):
        try:
            return await run_async(session, channel)
        finally:
            channel.close()  # a finished (or dead) endpoint wakes its peer

    outcomes = await asyncio.gather(
        drive(alice), drive(bob), return_exceptions=True
    )
    client_side = outcomes[1]
    if isinstance(client_side, ReproError):
        return (type(client_side).__name__,), channel.trace
    assert not isinstance(client_side, BaseException), client_side
    return ("ok", sorted(bob.result.repaired)), channel.trace


async def _tcp_outcome(plan, config, workload):
    async with ReconciliationServer(
        config, workload.alice, rateless=RATELESS, timeout=2.0
    ) as server:
        async with ChaosProxy(*server.address, plan) as proxy:
            try:
                result = await sync(
                    *proxy.address, config, workload.bob,
                    variant="rateless", rateless=RATELESS, timeout=0.7,
                )
                outcome = ("ok", sorted(result.repaired))
            except ReproError as exc:
                outcome = (type(exc).__name__,)
        return outcome, proxy.trace


class TestTransportEquivalence:
    @pytest.mark.parametrize(
        "name,plan", IDENTITY_PLANS, ids=[n for n, _ in IDENTITY_PLANS]
    )
    def test_trace_and_outcome_identical_across_transports(self, name, plan):
        workload = _workload()
        config = _config()
        sim_outcome, sim_trace = _sim_outcome(plan, config, workload)
        loop_outcome, loop_trace = run_scenario(
            _loopback_outcome(plan, config, workload)
        )
        tcp_outcome, tcp_trace = run_scenario(
            _tcp_outcome(plan, config, workload)
        )
        assert sim_trace == loop_trace == tcp_trace, name
        assert sim_outcome == loop_outcome == tcp_outcome, name
        if name in ("delay",):
            assert sim_outcome[0] == "ok"
        else:
            assert sim_outcome[0] != "ok", "fault should have been observed"

    def test_faultless_proxy_is_transparent(self):
        """With an empty plan the proxy forwards bytes unchanged: the
        no-fault TCP path stays golden-transcript-identical."""
        workload = _workload()
        config = _config()
        clean = reconcile_rateless(
            workload.alice, workload.bob, config, RATELESS
        )

        async def scenario():
            async with ReconciliationServer(
                config, workload.alice, rateless=RATELESS
            ) as server:
                async with ChaosProxy(*server.address, FaultPlan()) as proxy:
                    result = await sync(
                        *proxy.address, config, workload.bob,
                        variant="rateless", rateless=RATELESS, timeout=5,
                    )
                return result, proxy.trace

        result, trace = run_scenario(scenario())
        assert trace == ()
        assert sorted(result.repaired) == sorted(clean.repaired)
        assert (
            result.transcript.alice_to_bob_bytes
            == clean.transcript.alice_to_bob_bytes
        )
