"""Unit tests for the IBLT peeling decoder."""

import random

from repro.iblt.decode import decode
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells


def build_pair(alice_keys, bob_keys, cells=64, q=4, seed=21):
    config = IBLTConfig(cells=cells, q=q, seed=seed)
    alice = IBLT(config)
    bob = IBLT(config)
    alice.insert_all(alice_keys)
    bob.insert_all(bob_keys)
    return alice.subtract(bob)


class TestDecodeBasics:
    def test_empty_table_decodes_empty(self):
        result = decode(build_pair([], []))
        assert result.success
        assert result.difference_size == 0
        assert result.remaining_cells == 0

    def test_identical_sets_decode_empty(self):
        keys = list(range(100, 150))
        result = decode(build_pair(keys, keys))
        assert result.success
        assert result.difference_size == 0

    def test_single_alice_key(self):
        result = decode(build_pair([42], []))
        assert result.success
        assert result.alice_keys == [42]
        assert result.bob_keys == []

    def test_single_bob_key(self):
        result = decode(build_pair([], [42]))
        assert result.success
        assert result.alice_keys == []
        assert result.bob_keys == [42]

    def test_two_sided_difference(self):
        shared = list(range(1000, 1040))
        result = decode(build_pair(shared + [1, 2, 3], shared + [7, 8]))
        assert result.success
        assert sorted(result.alice_keys) == [1, 2, 3]
        assert sorted(result.bob_keys) == [7, 8]

    def test_decode_is_nondestructive(self):
        diff = build_pair([1], [2])
        before = (list(diff.counts), list(diff.key_sums))
        decode(diff)
        assert (list(diff.counts), list(diff.key_sums)) == before

    def test_peel_order_length_matches(self):
        result = decode(build_pair([1, 2, 3], [9]))
        assert len(result.peel_order) == 4


class TestDecodeCapacity:
    def test_within_capacity_decodes(self):
        rng = random.Random(5)
        shared = [rng.getrandbits(60) for _ in range(500)]
        alice_extra = [rng.getrandbits(60) for _ in range(20)]
        bob_extra = [rng.getrandbits(60) for _ in range(20)]
        cells = recommended_cells(40, q=4)
        diff = build_pair(shared + alice_extra, shared + bob_extra, cells=cells)
        result = decode(diff)
        assert result.success
        assert sorted(result.alice_keys) == sorted(alice_extra)
        assert sorted(result.bob_keys) == sorted(bob_extra)

    def test_overloaded_table_fails_gracefully(self):
        rng = random.Random(6)
        alice_extra = [rng.getrandbits(60) for _ in range(200)]
        diff = build_pair(alice_extra, [], cells=32)
        result = decode(diff)
        assert not result.success
        assert result.remaining_cells > 0

    def test_max_items_guard(self):
        rng = random.Random(7)
        alice_extra = [rng.getrandbits(60) for _ in range(30)]
        cells = recommended_cells(30, q=4)
        diff = build_pair(alice_extra, [], cells=cells)
        result = decode(diff, max_items=5)
        assert not result.success

    def test_success_rate_near_capacity(self):
        """At 60% of the nominal threshold, virtually every table decodes."""
        failures = 0
        trials = 30
        for trial in range(trials):
            rng = random.Random(1000 + trial)
            diff_keys = [rng.getrandbits(60) for _ in range(24)]
            cells = recommended_cells(40, q=4)
            diff = build_pair(diff_keys, [], cells=cells, seed=trial)
            if not decode(diff).success:
                failures += 1
        assert failures == 0


class TestDecodeCorruption:
    def test_corrupted_cell_detected(self):
        diff = build_pair([1, 2, 3], [4], cells=32)
        diff.key_sums[0] ^= 0xDEAD  # simulate bit-rot in one cell
        result = decode(diff)
        # Peeling may partially proceed but cannot finish cleanly.
        assert not result.success

    def test_corrupted_count_detected(self):
        diff = build_pair([10, 20], [], cells=32)
        # Find a pure cell and break its count.
        pure = next(i for i in range(32) if diff.cell_is_pure(i))
        diff.counts[pure] += 1
        assert not decode(diff).success
