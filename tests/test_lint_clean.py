"""The whole tree is finding-free — and the linter would catch a revert.

This is the contract the ``static-analysis`` CI job enforces: linting
``src/repro`` produces zero findings, and undoing one of this PR's
typed-error migrations (or re-typing a wire magic) makes the run fail
again.  The CLI runner is exercised end-to-end here too, since CI calls
it exactly this way.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.lint import RULES_BY_CODE, run_lint

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


class TestTreeIsClean:
    def test_whole_tree_has_no_findings(self):
        report = run_lint(PACKAGE_ROOT)
        assert report.findings == [], "\n" + report.render_text()

    def test_tree_uses_waivers_it_declares(self):
        # The reviewed exceptions (gf ZeroDivisionError semantics, strata
        # control-flow raises) are live: their waivers all match findings.
        report = run_lint(PACKAGE_ROOT)
        assert report.waivers_used >= 6

    def test_every_rule_ran_against_the_tree(self):
        # Guard against a rule silently dropping out of the registry.
        assert sorted(RULES_BY_CODE) == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
            "RPL007", "RPL008",
        ]


def copy_package(tmp_path: Path) -> Path:
    target = tmp_path / "repro"
    shutil.copytree(PACKAGE_ROOT, target)
    return target


class TestRevertDetection:
    """Deliberately undoing a PR-7 migration must fail the linter."""

    def test_reverting_typed_error_migration_fails(self, tmp_path):
        root = copy_package(tmp_path)
        hashing = root / "iblt" / "hashing.py"
        source = hashing.read_text(encoding="utf-8")
        migrated = 'raise ConfigError(f"splitmix64 input must be non-negative'
        assert migrated in source
        hashing.write_text(
            source.replace(migrated, 'raise ValueError(f"splitmix64 input must be non-negative'),
            encoding="utf-8",
        )
        report = run_lint(root)
        assert [finding.code for finding in report.findings] == ["RPL003"]
        assert report.findings[0].path == "iblt/hashing.py"
        assert report.exit_code() == 1

    def test_retyping_a_wire_magic_fails(self, tmp_path):
        root = copy_package(tmp_path)
        rateless = root / "core" / "rateless.py"
        source = rateless.read_text(encoding="utf-8")
        assert "INCREMENT_MAGIC, 8)" in source
        rateless.write_text(
            source.replace("INCREMENT_MAGIC, 8)", "0xC7, 8)", 1),
            encoding="utf-8",
        )
        report = run_lint(root)
        assert any(f.code == "RPL005" for f in report.findings)

    def test_deleting_a_used_waiver_reason_fails(self, tmp_path):
        root = copy_package(tmp_path)
        strata = root / "iblt" / "strata.py"
        source = strata.read_text(encoding="utf-8")
        waiver = "# repro-lint: waive[RPL003] reason="
        assert waiver in source
        # Truncate the first waiver's reason: the waiver turns malformed
        # (RPL900) and the raise it covered resurfaces (RPL003).
        index = source.index(waiver)
        end = source.index("\n", index)
        stale = source[:index] + "# repro-lint: waive[RPL003]" + source[end:]
        strata.write_text(stale, encoding="utf-8")
        report = run_lint(root)
        codes = sorted({f.code for f in report.findings})
        assert codes == ["RPL003", "RPL900"]


def run_cli(*argv, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(PACKAGE_ROOT.parent), "PATH": "/usr/bin:/bin"},
    )


class TestRunner:
    def test_text_run_on_real_tree_exits_zero(self):
        result = run_cli(str(PACKAGE_ROOT))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 findings" in result.stdout

    def test_default_root_is_the_installed_package(self):
        result = run_cli()
        assert result.returncode == 0, result.stdout + result.stderr

    def test_json_output_is_machine_readable(self, tmp_path):
        out = tmp_path / "lint.json"
        result = run_cli(str(PACKAGE_ROOT), "--format", "json",
                         "--output", str(out))
        assert result.returncode == 0
        stdout_report = json.loads(result.stdout)
        file_report = json.loads(out.read_text(encoding="utf-8"))
        assert stdout_report == file_report
        assert stdout_report["tool"] == "repro-lint"
        assert stdout_report["findings"] == []
        assert stdout_report["exit_code"] == 0
        assert stdout_report["files"] > 80

    def test_findings_drive_exit_code_and_json(self, tmp_path):
        bad = tmp_path / "pkg"
        (bad / "session").mkdir(parents=True)
        (bad / "__init__.py").write_text("", encoding="utf-8")
        (bad / "session" / "__init__.py").write_text("", encoding="utf-8")
        (bad / "session" / "m.py").write_text("import socket\n", encoding="utf-8")
        result = run_cli(str(bad), "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["counts"] == {"RPL001": 1}
        assert payload["findings"][0]["path"] == "session/m.py"

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "pkg"
        (bad / "session").mkdir(parents=True)
        (bad / "__init__.py").write_text("", encoding="utf-8")
        (bad / "session" / "m.py").write_text(
            "import socket\nimport numpy\n", encoding="utf-8"
        )
        result = run_cli(str(bad), "--select", "RPL002", "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["counts"] == {"RPL002": 1}

    def test_bad_arguments_exit_two(self, tmp_path):
        assert run_cli(str(tmp_path / "missing")).returncode == 2
        assert run_cli(str(PACKAGE_ROOT), "--select", "RPL999").returncode == 2

    def test_list_rules_names_every_code(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for code in list(RULES_BY_CODE) + ["RPL900", "RPL901", "RPL902"]:
            assert code in result.stdout


@pytest.mark.parametrize("code", sorted(RULES_BY_CODE))
def test_every_rule_module_declares_metadata(code):
    rule = RULES_BY_CODE[code]
    assert rule.CODE == code
    assert rule.NAME and rule.NAME == rule.NAME.lower()
    assert rule.DESCRIPTION
