"""Differential suite: the batch round-based decoder vs the scalar peel.

The batch decoder (``decode(..., strategy="batch")``, the default) must
recover exactly the same key sets as the scalar reference on every backend:
same ``success``, same ``alice_keys`` / ``bob_keys`` as multisets, same
``remaining_cells``.  ``peel_order`` is the one sanctioned difference —
round-major/index-ascending for batch, stack-driven for scalar — so it is
compared as a multiset, plus a dedicated test pinning the round-major
contract itself.  Inputs cover random, adversarially structured, and
stall-inducing (non-empty 2-core) tables across backends and q.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.incremental import IncrementalSketch
from repro.core.protocol import reconcile
from repro.errors import ConfigError
from repro.iblt.backends import available_backends
from repro.iblt.decode import DECODE_STRATEGIES, decode
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells

BACKENDS = available_backends()
QS = (3, 4)
SEEDS = (0, 1, 2, 7, 23)


def _subtracted(alice_keys, bob_keys, cells, q, seed, backend):
    config = IBLTConfig(cells=cells, q=q, key_bits=64, seed=seed)
    alice = IBLT(config, backend=backend)
    bob = IBLT(config, backend=backend)
    alice.insert_many(alice_keys)
    bob.insert_many(bob_keys)
    return alice.subtract(bob)


def _set_fingerprint(result):
    """Everything both strategies must agree on (peel order excluded)."""
    return (
        result.success,
        sorted(result.alice_keys),
        sorted(result.bob_keys),
        result.remaining_cells,
    )


def _assert_strategies_agree(diff):
    batch = decode(diff)
    scalar = decode(diff, strategy="scalar")
    assert _set_fingerprint(batch) == _set_fingerprint(scalar)
    # Same extractions overall, just a different (documented) order.
    assert sorted(batch.peel_order) == sorted(scalar.peel_order)
    return batch, scalar


# ----------------------------------------------------------- random inputs


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("q", QS)
def test_random_differences_match_scalar(backend, q):
    """Two-sided random differences around and above capacity."""
    for seed in SEEDS:
        rng = random.Random(10_000 * q + seed)
        cells = q * rng.randint(8, 40)
        # Sweep loads from comfortable to overloaded so both success and
        # honest stalls are exercised.
        for load in (0.3, 0.6, 0.9, 1.3):
            n_diff = max(1, int(load * cells))
            shared = [rng.getrandbits(64) for _ in range(rng.randint(0, 150))]
            alice_extra = [rng.getrandbits(64) for _ in range(n_diff // 2)]
            bob_extra = [rng.getrandbits(64) for _ in range(n_diff - n_diff // 2)]
            diff = _subtracted(
                shared + alice_extra, shared + bob_extra, cells, q, seed, backend
            )
            batch, _ = _assert_strategies_agree(diff)
            if batch.success:
                assert sorted(batch.alice_keys) == sorted(alice_extra)
                assert sorted(batch.bob_keys) == sorted(bob_extra)


# ------------------------------------------------------ adversarial inputs


def _adversarial_families(rng):
    """Structured key sets that stress hashing and cell placement."""
    base = rng.getrandbits(40) << 20
    return [
        list(range(1, 80)),                          # dense consecutive ints
        [i << 32 for i in range(1, 60)],             # only high bits vary
        [base | i for i in range(48)],               # shared high, low counter
        [(i * 0x9E3779B97F4A7C15) & (2**64 - 1) for i in range(1, 50)],
        [1 << i for i in range(1, 63)],              # one-hot keys
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("q", QS)
def test_adversarial_key_structures_match_scalar(backend, q):
    for seed in SEEDS[:3]:
        rng = random.Random(500 + seed)
        for keys in _adversarial_families(rng):
            half = len(keys) // 2
            cells = q * max(2, (len(keys) * 2) // q)
            diff = _subtracted(keys[:half], keys[half:], cells, q, seed, backend)
            _assert_strategies_agree(diff)


# -------------------------------------------------- stall-inducing (2-core)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("q", QS)
def test_overloaded_tables_stall_identically(backend, q):
    """Loads far above the peeling threshold leave a non-empty 2-core; the
    partially peeled state must be identical (peeling is confluent)."""
    for seed in SEEDS:
        rng = random.Random(77 * q + seed)
        cells = q * 8
        keys = [rng.getrandbits(64) for _ in range(4 * cells)]
        diff = _subtracted(keys, [], cells, q, seed, backend)
        batch, scalar = _assert_strategies_agree(diff)
        assert not batch.success
        assert batch.remaining_cells > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_minimal_two_core_cycle_stalls(backend):
    """A crafted pair of keys sharing all their cells can never peel."""
    # Search a small key space for two keys with identical cell index sets:
    # their subtracted cells all hold two keys, a textbook 2-core.
    config = IBLTConfig(cells=6, q=3, seed=5)
    family = config.hash_family()
    by_cells = {}
    pair = None
    for key in range(1, 5000):
        signature = family.indices(key)
        if signature in by_cells:
            pair = (by_cells[signature], key)
            break
        by_cells[signature] = key
    assert pair is not None, "no colliding key pair in the search space"
    diff = _subtracted(list(pair), [], config.cells, config.q, config.seed, backend)
    batch, scalar = _assert_strategies_agree(diff)
    assert not batch.success
    assert batch.difference_size == 0  # nothing peels at all


# ------------------------------------------------------------ guard + edges


@pytest.mark.parametrize("backend", BACKENDS)
def test_max_items_guard_fails_both_strategies(backend):
    rng = random.Random(7)
    keys = [rng.getrandbits(60) for _ in range(30)]
    cells = recommended_cells(30, q=4)
    diff = _subtracted(keys, [], cells, 4, 21, backend)
    for strategy in DECODE_STRATEGIES:
        result = decode(diff, max_items=5, strategy=strategy)
        assert not result.success
        assert result.remaining_cells > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_and_tiny_tables(backend):
    for alice, bob in ([], []), ([42], []), ([], [42]), ([1, 2], [2, 1]):
        diff = _subtracted(alice, bob, 24, 4, 3, backend)
        batch, scalar = _assert_strategies_agree(diff)
        assert batch.success


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_decode_is_nondestructive(backend):
    diff = _subtracted([1, 2, 3], [9], 32, 4, 21, backend)
    before = diff.to_bytes()
    decode(diff)
    assert diff.to_bytes() == before


def test_unknown_strategy_rejected():
    diff = _subtracted([1], [], 24, 4, 3, "pure")
    with pytest.raises(ConfigError):
        decode(diff, strategy="quantum")


# ------------------------------------------------------ peel-order contract


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_peel_order_is_round_major(backend):
    """Round 1 of the batch peel order is exactly the pure cells of the
    original table, in ascending cell-index order (first occurrence per
    key)."""
    rng = random.Random(13)
    keys = [rng.getrandbits(60) for _ in range(20)]
    diff = _subtracted(keys[:12], keys[12:], recommended_cells(20, q=4), 4, 9, backend)
    indices, signs = diff.pure_mask()
    gathered = diff.gather_cells(indices)
    first_round = []
    seen = set()
    for key, sign in zip(
        gathered.tolist() if hasattr(gathered, "tolist") else gathered,
        signs.tolist() if hasattr(signs, "tolist") else signs,
    ):
        if key not in seen:
            seen.add(key)
            first_round.append((key, sign))
    result = decode(diff)
    assert result.peel_order[: len(first_round)] == first_round


@pytest.mark.skipif(len(BACKENDS) < 2, reason="only the pure backend is available")
@pytest.mark.parametrize("q", QS)
def test_batch_decode_bit_identical_across_backends(q):
    """Full fingerprints — peel_order included — match between backends."""
    for seed in SEEDS:
        rng = random.Random(31 * q + seed)
        cells = q * rng.randint(8, 30)
        alice = [rng.getrandbits(64) for _ in range(rng.randint(0, 60))]
        bob = [rng.getrandbits(64) for _ in range(rng.randint(0, 60))]
        results = []
        for backend in BACKENDS:
            result = decode(_subtracted(alice, bob, cells, q, seed, backend))
            results.append(
                (
                    result.success,
                    result.alice_keys,
                    result.bob_keys,
                    result.remaining_cells,
                    result.peel_order,
                )
            )
        assert all(fingerprint == results[0] for fingerprint in results[1:])


# ------------------------------------------------------- protocol-level


@pytest.mark.parametrize("backend", BACKENDS)
def test_protocol_identical_under_both_strategies(backend):
    """End-to-end reconcile: the strategy must not change level or repair."""
    rng = random.Random(3)
    delta = 1024
    alice = [(rng.randrange(delta), rng.randrange(delta)) for _ in range(150)]
    bob = [
        tuple(min(delta - 1, max(0, c + rng.choice((-1, 0, 1)))) for c in p)
        for p in alice[:146]
    ]
    outcomes = {}
    for strategy in DECODE_STRATEGIES:
        config = ProtocolConfig(
            delta=delta, dimension=2, k=8, seed=11,
            backend=backend, decode_strategy=strategy,
        )
        result = reconcile(alice, bob, config)
        outcomes[strategy] = (
            result.level,
            result.levels_probed,
            result.alice_surplus,
            result.bob_surplus,
            sorted(result.repaired),
        )
    assert outcomes["batch"] == outcomes["scalar"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_incremental_decode_difference(backend):
    """A live incremental sketch decodes a peer's message without re-encoding."""
    config = ProtocolConfig(delta=256, dimension=1, k=4, seed=5, backend=backend)
    alice = IncrementalSketch(config)
    bob = IncrementalSketch(config)
    shared = [(i * 7 % 256,) for i in range(30)]
    alice.insert_all(shared + [(201,)])
    bob.insert_all(shared)
    bob.insert((99,))
    bob.remove((99,))  # exercise maintenance before decoding

    level, result = bob.decode_difference(alice.encode())
    assert result.success
    assert result.difference_size >= 1
    # Level-0 keys are exact (cell side 1): the packed difference names 201.
    if level == 0:
        occ_bits = bob.grid.occupancy_bits
        cells = {key >> occ_bits for key in result.alice_keys}
        assert bob.grid.cell_id((201,), 0) in cells
    # The sketch stayed intact: decoding again gives the same answer.
    assert bob.decode_difference(alice.encode())[0] == level


def test_incremental_decode_difference_probe_validation():
    config = ProtocolConfig(delta=64, dimension=1, k=2, seed=1)
    sketch = IncrementalSketch(config)
    sketch.insert((3,))
    from repro.errors import ReconciliationFailure

    with pytest.raises(ReconciliationFailure):
        sketch.decode_difference(sketch.encode(), probe="zigzag")


def test_incremental_decode_difference_rejects_empty_payload():
    """A payload carrying zero levels must fail loudly, not IndexError."""
    from repro.core.sketch import HierarchySketch
    from repro.errors import ReconciliationFailure

    config = ProtocolConfig(delta=256, dimension=1, k=2, seed=3)
    sketch = IncrementalSketch(config)
    empty = HierarchySketch(n_points=0, levels=[]).to_bytes()
    with pytest.raises(ReconciliationFailure, match="no levels"):
        sketch.decode_difference(empty)
