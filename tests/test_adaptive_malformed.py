"""Malformed / truncated adaptive payloads must fail with SerializationError.

Satellite coverage for the wire-layer bugfixes: bad magic, wrong version,
mid-estimator truncation, duplicate window levels — every case must raise
:class:`~repro.errors.SerializationError` (or, for impossible configs,
:class:`~repro.errors.ConfigError`), never an uncontrolled crash.
"""

from __future__ import annotations

import pytest

from repro.core.adaptive import (
    REQUEST_MAGIC,
    RESPONSE_MAGIC,
    AdaptiveReconciler,
)
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.core.sketch import HierarchySketch
from repro.errors import ConfigError, SerializationError
from repro.net.bits import BitReader, BitWriter


def _parties():
    config = ProtocolConfig(delta=1024, dimension=2, k=4, seed=21)
    reconciler = AdaptiveReconciler(config)
    alice = [(10, 10), (500, 501), (900, 4), (77, 300)]
    bob = [(10, 11), (500, 500), (700, 700), (77, 300)]
    return reconciler, alice, bob


class TestRoundOneMalformed:
    def test_bad_magic(self):
        reconciler, alice, bob = _parties()
        request = bytearray(reconciler.bob_request(bob))
        request[0] ^= 0xFF
        with pytest.raises(SerializationError, match="magic"):
            reconciler.alice_respond(bytes(request), alice)

    def test_wrong_version(self):
        reconciler, alice, bob = _parties()
        request = bytearray(reconciler.bob_request(bob))
        request[1] = 0x7E
        with pytest.raises(SerializationError, match="version"):
            reconciler.alice_respond(bytes(request), alice)

    @pytest.mark.parametrize("keep_fraction", [0.25, 0.5, 0.9])
    def test_mid_estimator_truncation(self, keep_fraction):
        reconciler, alice, bob = _parties()
        request = reconciler.bob_request(bob)
        truncated = request[: int(len(request) * keep_fraction)]
        with pytest.raises(SerializationError):
            reconciler.alice_respond(truncated, alice)

    def test_trailing_garbage(self):
        reconciler, alice, bob = _parties()
        request = reconciler.bob_request(bob)
        with pytest.raises(SerializationError):
            reconciler.alice_respond(request + b"\xa5", alice)


class TestRoundTwoMalformed:
    def _response(self):
        reconciler, alice, bob = _parties()
        request = reconciler.bob_request(bob)
        return reconciler, bob, reconciler.alice_respond(request, alice)

    def test_bad_magic(self):
        reconciler, bob, response = self._response()
        tampered = bytes([response[0] ^ 0xFF]) + response[1:]
        with pytest.raises(SerializationError, match="magic"):
            reconciler.bob_finish(tampered, bob)

    def test_wrong_version(self):
        reconciler, bob, response = self._response()
        tampered = bytes([response[0], 0x7E]) + response[2:]
        with pytest.raises(SerializationError, match="version"):
            reconciler.bob_finish(tampered, bob)

    @pytest.mark.parametrize("keep_fraction", [0.3, 0.6, 0.95])
    def test_mid_table_truncation(self, keep_fraction):
        reconciler, bob, response = self._response()
        truncated = response[: int(len(response) * keep_fraction)]
        with pytest.raises(SerializationError):
            reconciler.bob_finish(truncated, bob)

    def test_duplicate_window_levels(self):
        reconciler, bob, response = self._response()
        # Re-frame the response so the first window table appears twice.
        reader = BitReader(response)
        assert reader.read_uint(8) == RESPONSE_MAGIC
        version = reader.read_uint(8)
        n_alice = reader.read_varint()
        n_levels = reader.read_varint()
        assert n_levels >= 1
        level = reader.read_varint()
        cells = reader.read_varint()
        writer = BitWriter()
        writer.write_uint(RESPONSE_MAGIC, 8)
        writer.write_uint(version, 8)
        writer.write_varint(n_alice)
        writer.write_varint(2)
        table_config = None
        from repro.core.sketch import level_iblt_config
        from repro.iblt.table import IBLT

        table_config = level_iblt_config(
            reconciler.config, reconciler.grid, level, cells
        )
        table = IBLT.read_from(reader, table_config)
        for _ in range(2):
            writer.write_varint(level)
            writer.write_varint(cells)
            table.write_to(writer)
        with pytest.raises(SerializationError, match="twice"):
            reconciler.bob_finish(writer.getvalue(), bob)

    def test_request_fed_to_bob_finish(self):
        reconciler, bob, _ = self._response()
        request = reconciler.bob_request(bob)
        assert request[0] == REQUEST_MAGIC
        with pytest.raises(SerializationError, match="magic"):
            reconciler.bob_finish(request, bob)


class TestEmptyLevelConfigs:
    def test_config_rejects_empty_levels_tuple(self):
        with pytest.raises(ConfigError, match="level"):
            ProtocolConfig(delta=1024, dimension=2, k=4, levels=())

    def test_sampled_levels_raises_config_error_not_index_error(self):
        """Even a config that smuggles empty levels past validation fails
        with ConfigError (the old code crashed with IndexError)."""
        reconciler, _, _ = _parties()
        object.__setattr__(reconciler.config, "levels", ())
        with pytest.raises(ConfigError, match="sketch level"):
            reconciler.sampled_levels()


class TestDuplicateSketchLevels:
    def test_from_bytes_rejects_duplicate_levels(self):
        config = ProtocolConfig(delta=256, dimension=1, k=2, seed=3)
        reconciler = HierarchicalReconciler(config)
        sketch_bytes = reconciler.encode([(10,), (200,)])
        sketch = HierarchySketch.from_bytes(sketch_bytes, config, reconciler.grid)
        # Rebuild a payload that carries the first level twice.
        duplicated = HierarchySketch(
            n_points=sketch.n_points,
            levels=[sketch.levels[0], sketch.levels[0]] + sketch.levels[2:],
        )
        with pytest.raises(SerializationError, match="twice"):
            HierarchySketch.from_bytes(
                duplicated.to_bytes(), config, reconciler.grid
            )
