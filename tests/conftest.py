"""Test-suite configuration.

The protocol core is dependency-free, but the EMD *evaluation* machinery
(exact matchings, quality measurements, the examples built on them) uses
numpy + scipy at benchmark scale.  When that stack is not installed — the
CI matrix runs one leg without it on purpose — the files below are skipped
wholesale and everything else (protocol, IBLT backends, differential and
golden suites, CLI, workloads) must stay green on the pure fallback.
"""

from __future__ import annotations

try:
    import numpy  # noqa: F401
    import scipy  # noqa: F401

    HAVE_SCIENTIFIC_STACK = True
except ImportError:
    HAVE_SCIENTIFIC_STACK = False

if not HAVE_SCIENTIFIC_STACK:
    collect_ignore = [
        # Direct numpy / backend="scipy" users (EMD quality measurement).
        "test_emd_metrics.py",
        "test_emd_matching.py",
        "test_emd_partial_onedim.py",
        "test_core_broadcast.py",
        "test_integration.py",
        "test_property_protocol.py",
        "test_stress_consistency.py",
        "test_examples.py",
    ]
