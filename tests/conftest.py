"""Test-suite configuration.

The protocol core is dependency-free, but the EMD *evaluation* machinery
(exact matchings, quality measurements, the examples built on them) uses
numpy + scipy at benchmark scale.  When that stack is not installed — the
CI matrix runs one leg without it on purpose — the files below are skipped
wholesale and everything else (protocol, IBLT backends, differential and
golden suites, CLI, workloads) must stay green on the pure fallback.
"""

from __future__ import annotations

try:
    import numpy  # noqa: F401
    import scipy  # noqa: F401

    HAVE_SCIENTIFIC_STACK = True
except ImportError:
    HAVE_SCIENTIFIC_STACK = False

if not HAVE_SCIENTIFIC_STACK:
    collect_ignore = [
        # Direct numpy / backend="scipy" users (EMD quality measurement).
        "test_emd_metrics.py",
        "test_emd_matching.py",
        "test_emd_partial_onedim.py",
        "test_core_broadcast.py",
        "test_integration.py",
        "test_property_protocol.py",
        "test_stress_consistency.py",
        "test_examples.py",
    ]


import functools
import os

import pytest


@pytest.fixture(autouse=True)
def _serve_workers_shim(request, monkeypatch):
    """Run the chaos matrix against a multi-worker pool, unmodified.

    ``REPRO_SERVE_WORKERS=N`` (N > 1) swaps the ``ReconciliationServer``
    name inside ``test_chaos_matrix`` for a pre-fork
    :class:`~repro.serve.pool.WorkerPoolServer` of N workers — the
    crash-only acceptance contract of the pool: every fault plan must
    end in the same correct repair or the same typed error whether one
    process serves or N do.  Unset (the default), this fixture is a
    no-op and the matrix runs against the single-process server exactly
    as before.
    """
    workers = int(os.environ.get("REPRO_SERVE_WORKERS", "1") or "1")
    if workers <= 1 or request.module.__name__ != "test_chaos_matrix":
        yield
        return
    from repro.serve import WorkerPoolServer

    monkeypatch.setattr(
        request.module,
        "ReconciliationServer",
        functools.partial(WorkerPoolServer, workers=workers),
    )
    yield


@pytest.fixture(autouse=True)
def _serve_store_shim(request, monkeypatch, tmp_path_factory):
    """Run the chaos matrix against durable-store-backed servers.

    ``REPRO_STORE_DIR=1`` rebuilds every ``ReconciliationServer`` the
    chaos matrix constructs around a :class:`~repro.store.DurableSketchStore`
    bulk-loaded into a fresh temp directory — the acceptance contract of
    the store layer: every fault plan must end in the same correct
    repair or the same typed error whether the served payloads come from
    live reconcilers or from recovered durable state.  Stacks with
    ``REPRO_SERVE_WORKERS`` (this shim wraps whatever that one bound).
    Unset (the default), a no-op.
    """
    if (
        not os.environ.get("REPRO_STORE_DIR")
        or request.module.__name__ != "test_chaos_matrix"
    ):
        yield
        return
    import tempfile

    from repro.serve import ServerCore
    from repro.store import DurableSketchStore

    current = request.module.ReconciliationServer
    base = tmp_path_factory.mktemp("chaos-store")

    def store_backed(
        config=None, points=None, *, core=None,
        adaptive=None, rateless=None, **kwargs,
    ):
        if core is None:
            directory = tempfile.mkdtemp(dir=str(base))
            store = DurableSketchStore.open(config, directory)
            store.bulk_load(points)
            core = ServerCore(
                config, points,
                adaptive=adaptive, rateless=rateless, store=store,
            )
        return current(core=core, **kwargs)

    monkeypatch.setattr(request.module, "ReconciliationServer", store_backed)
    yield
