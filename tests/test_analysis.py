"""Unit tests for the analysis/harness helpers."""

import math

import pytest

from repro.analysis.methods import MethodRun, default_methods, measure_emd
from repro.analysis.stats import geometric_mean, mean_ci, summarize
from repro.analysis.tables import Table
from repro.errors import ConfigError
from repro.workloads.synthetic import perturbed_pair


class TestStats:
    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.ci95 == 0.0
        assert summary.n == 1

    def test_mean_and_ci(self):
        mean, ci = mean_ci([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert ci > 0

    def test_min_max(self):
        summary = summarize([3.0, 1.0, 2.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_format(self):
        assert "±" in summarize([1.0, 2.0]).format()

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ConfigError):
            geometric_mean([])


class TestTable:
    def test_render_alignment(self):
        table = Table(["method", "bits"], title="demo")
        table.add_row(["robust", 123456])
        table.add_row(["cpi", 9])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert all("|" in line for line in lines[2:])

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row([3.14159])
        assert "3.1" in table.render()

    def test_row_width_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ConfigError):
            table.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigError):
            Table([])


class TestMethodRegistry:
    def test_all_methods_present_small_universe(self):
        workload = perturbed_pair(0, 30, 2**10, 2, true_k=2, noise=1)
        methods = default_methods(workload, k=4, seed=1)
        assert set(methods) == {
            "robust", "robust-adaptive", "exact-ibf",
            "fixed-grid", "full-transfer", "cpi",
        }

    def test_cpi_excluded_for_wide_universe(self):
        workload = perturbed_pair(1, 10, 2**16, 4, true_k=1, noise=0)
        methods = default_methods(workload, k=2, seed=1)
        assert "cpi" not in methods

    def test_run_produces_comparable_results(self):
        workload = perturbed_pair(2, 60, 2**12, 2, true_k=2, noise=1)
        methods = default_methods(workload, k=4, seed=2)
        run = methods["full-transfer"]()
        assert not run.failed
        assert run.bits > 0
        assert run.emd_to(workload) == 0.0

    def test_failed_run_has_nan_emd(self):
        workload = perturbed_pair(3, 10, 2**10, 2, true_k=1, noise=0)
        run = MethodRun("x", 0, 0, None, failed=True, failure="boom")
        assert math.isnan(run.emd_to(workload))

    def test_measure_emd_size_mismatch_is_nan(self):
        workload = perturbed_pair(4, 10, 2**10, 2, true_k=1, noise=0)
        assert math.isnan(measure_emd(workload, workload.alice[:-1]))

    def test_measure_emd_uses_1d_fast_path(self):
        workload = perturbed_pair(5, 1000, 2**10, 1, true_k=0, noise=0)
        assert measure_emd(workload, workload.alice) == 0.0

    def test_measure_emd_estimator_large_sets(self):
        workload = perturbed_pair(6, 700, 2**10, 2, true_k=0, noise=0)
        assert measure_emd(workload, workload.alice) == 0.0
