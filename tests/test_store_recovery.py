"""Differential crash matrix for the durable store (PR 10 tentpole).

The contract under test: a :class:`~repro.store.DurableSketchStore`
recovered after a crash at *any* storage operation is bit-identical —
``encode()`` and all — to a fresh sketch of exactly the acknowledged
batches (or acknowledged + the one batch in flight, wholly in or wholly
out, never half-applied).  The matrix enumerates every kill point of a
canonical scenario (first boot, insert batches, a mid-run snapshot
rotation, a remove batch), sweeps torn and clean variants of the dying
write, and runs the same plans over the POSIX-pessimistic
:class:`~repro.store.MemStorage` and a real directory.  A second
recovery of a recovered store must be a fixpoint.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import replace

import pytest

from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, InjectedCrash, StoreCorruptError, StoreError
from repro.iblt.backends import available_backends
from repro.scale.incremental import ShardedIncrementalSketch
from repro.store import (
    CrashPlan,
    DurableSketchStore,
    MemStorage,
    OsStorage,
)
from repro.store import wal as wal_codec
from repro.store.store import SNAPSHOT_NAME, WAL_NAME
from repro.workloads.synthetic import uniform_points

SEED = 9
DELTA = 2048
CONFIG = ProtocolConfig(
    delta=DELTA, dimension=2, k=6, seed=7, shards=2, backend="pure"
)
BACKENDS = [name for name in ("pure", "numpy") if name in available_backends()]

#: Scenario shape: five insert batches of 20 plus one remove batch that
#: spans two of them; a snapshot rotation after the third batch.
SNAPSHOT_AFTER = 2


def _batches() -> list[tuple[str, list]]:
    rng = random.Random(SEED)
    points = uniform_points(rng, 100, DELTA, 2)
    ops = [("insert", points[i * 20 : (i + 1) * 20]) for i in range(5)]
    ops.append(("remove", points[10:30]))
    return ops


def _config(backend: str) -> ProtocolConfig:
    return replace(CONFIG, backend=backend)


_EXPECTED_CACHE: dict[str, list[bytes]] = {}


def _expected(backend: str) -> list[bytes]:
    """``_expected(b)[k]`` = fresh encode after the first ``k`` batches."""
    if backend not in _EXPECTED_CACHE:
        config = _config(backend)
        multiset: Counter = Counter()

        def fresh() -> bytes:
            sketch = ShardedIncrementalSketch(config)
            sketch.insert_all(
                [p for p, count in multiset.items() for _ in range(count)]
            )
            return sketch.encode()

        encodes = [fresh()]
        for kind, batch in _batches():
            for point in batch:
                if kind == "insert":
                    multiset[point] += 1
                else:
                    multiset[point] -= 1
                    if not multiset[point]:
                        del multiset[point]
            encodes.append(fresh())
        _EXPECTED_CACHE[backend] = encodes
    return _EXPECTED_CACHE[backend]


def _run_scenario(config, storage, acked: list[int]) -> DurableSketchStore:
    """Boot + batches + mid-run snapshot; ``acked[0]`` tracks progress."""
    store = DurableSketchStore.open(config, storage=storage)
    for index, (kind, batch) in enumerate(_batches()):
        if kind == "insert":
            store.insert_batch(batch)
        else:
            store.remove_batch(batch)
        acked[0] = index + 1
        if index == SNAPSHOT_AFTER:
            store.snapshot()
    return store


def _total_ops() -> int:
    """Dry-run the scenario to enumerate its storage operations."""
    injector = CrashPlan(seed=SEED, kill_after=None).injector()
    _run_scenario(CONFIG, MemStorage(injector=injector), [0])
    return injector.ops


TOTAL_OPS = _total_ops()


def _assert_recovered(storage, backend: str, acked: int) -> DurableSketchStore:
    """Recover, check bit-identity to an allowed fresh encode + fixpoint."""
    config = _config(backend)
    expected = _expected(backend)
    recovered = DurableSketchStore.open(config, storage=storage)
    allowed = {
        expected[acked],
        expected[min(acked + 1, len(expected) - 1)],
    }
    assert recovered.encode() in allowed
    again = DurableSketchStore.open(config, storage=storage)
    assert again.encode() == recovered.encode()
    assert again.recovery.truncated_bytes == 0
    assert again.recovery.n_points == recovered.recovery.n_points
    return recovered


class TestCrashMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
    @pytest.mark.parametrize("kill", range(TOTAL_OPS))
    def test_every_kill_point_mem(self, kill, torn, backend):
        plan = CrashPlan(seed=SEED, kill_after=kill, torn=torn)
        storage = MemStorage(injector=plan.injector())
        acked = [0]
        with pytest.raises(InjectedCrash):
            _run_scenario(_config(backend), storage, acked)
        storage.crash(plan.rng("crash"))
        _assert_recovered(storage, backend, acked[0])

    @pytest.mark.parametrize("kill", range(TOTAL_OPS))
    def test_every_kill_point_os(self, kill, tmp_path):
        plan = CrashPlan(seed=SEED, kill_after=kill, torn=True)
        storage = OsStorage(str(tmp_path), injector=plan.injector())
        acked = [0]
        with pytest.raises(InjectedCrash):
            _run_scenario(CONFIG, storage, acked)
        # The real filesystem is kinder than MemStorage: everything the
        # dead process wrote survives, minus the dying op's torn tail.
        _assert_recovered(OsStorage(str(tmp_path)), "pure", acked[0])

    def test_op_count_is_stable(self):
        # The matrix only covers every kill point if the dry-run count
        # is the real count; re-derive it to catch drift.
        assert TOTAL_OPS == _total_ops()
        assert TOTAL_OPS > 20

    def test_plans_are_reproducible(self):
        def survivors(plan):
            storage = MemStorage(injector=plan.injector())
            with pytest.raises(InjectedCrash):
                _run_scenario(CONFIG, storage, [0])
            storage.crash(plan.rng("crash"))
            return {
                name: storage.read(name)
                for name in (SNAPSHOT_NAME, WAL_NAME)
                if storage.read(name) is not None
            }

        kill = TOTAL_OPS // 2
        first = survivors(CrashPlan(seed=SEED, kill_after=kill, torn=True))
        second = survivors(CrashPlan(seed=SEED, kill_after=kill, torn=True))
        assert first == second


class TestCleanRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip_bit_identity(self, backend):
        storage = MemStorage()
        store = _run_scenario(_config(backend), storage, [0])
        assert store.encode() == _expected(backend)[-1]
        recovered = DurableSketchStore.open(_config(backend), storage=storage)
        assert recovered.encode() == store.encode()
        assert recovered.recovery.source == "snapshot+wal"
        assert recovered.recovery.replayed_records == 3
        assert recovered.recovery.truncated_bytes == 0
        again = DurableSketchStore.open(_config(backend), storage=storage)
        assert again.recovery == recovered.recovery

    def test_torn_tail_truncated_at_first_bad_crc(self):
        storage = MemStorage()
        _run_scenario(CONFIG, storage, [0])
        wal = storage.read(WAL_NAME)
        storage.write(WAL_NAME, wal[:-3])
        storage.fsync(WAL_NAME)
        recovered = DurableSketchStore.open(CONFIG, storage=storage)
        # The chopped record (the final remove batch) is wholly out.
        assert recovered.encode() == _expected("pure")[-2]
        assert recovered.recovery.truncated_bytes > 0
        again = DurableSketchStore.open(CONFIG, storage=storage)
        assert again.recovery.truncated_bytes == 0
        assert again.encode() == recovered.encode()

    def test_bulk_load_snapshot_durability(self):
        storage = MemStorage()
        store = DurableSketchStore.open(CONFIG, storage=storage)
        points = uniform_points(random.Random(3), 80, DELTA, 2)
        store.bulk_load(points)
        assert store.recovery.n_points == 80
        recovered = DurableSketchStore.open(CONFIG, storage=storage)
        assert recovered.encode() == store.encode()
        assert recovered.recovery.source == "snapshot"
        with pytest.raises(ConfigError):
            store.bulk_load(points)

    def test_one_round_encode_single_shard_only(self):
        single = replace(CONFIG, shards=1)
        storage = MemStorage()
        store = DurableSketchStore.open(single, storage=storage)
        points = uniform_points(random.Random(5), 40, DELTA, 2)
        store.insert_batch(points)
        assert store.one_round_encode() == store.sketch.shard_sketches()[0].encode()
        sharded = DurableSketchStore.open(CONFIG, storage=MemStorage())
        with pytest.raises(ConfigError):
            sharded.one_round_encode()


class TestTypedFailures:
    def _loaded_storage(self) -> MemStorage:
        storage = MemStorage()
        _run_scenario(CONFIG, storage, [0])
        return storage

    def test_corrupt_snapshot_is_typed(self):
        storage = self._loaded_storage()
        snap = bytearray(storage.read(SNAPSHOT_NAME))
        snap[len(snap) // 2] ^= 0xFF
        storage.write(SNAPSHOT_NAME, bytes(snap))
        with pytest.raises(StoreCorruptError, match="CRC"):
            DurableSketchStore.open(CONFIG, storage=storage)

    def test_config_digest_mismatch_is_typed(self):
        storage = self._loaded_storage()
        drifted = replace(CONFIG, seed=CONFIG.seed + 1)
        with pytest.raises(ConfigError, match="digest"):
            DurableSketchStore.open(drifted, storage=storage)

    def test_wal_outrunning_snapshot_is_typed(self):
        storage = self._loaded_storage()
        rogue = wal_codec.encode_record(99, wal_codec.KIND_DELTAS, b"\x00")
        storage.append(WAL_NAME, rogue)
        storage.fsync(WAL_NAME)
        with pytest.raises(StoreCorruptError, match="outruns"):
            DurableSketchStore.open(CONFIG, storage=storage)

    def test_unknown_record_kind_is_typed(self):
        storage = self._loaded_storage()
        store = DurableSketchStore.open(CONFIG, storage=storage)
        rogue = wal_codec.encode_record(store.generation, 7, b"\x00")
        storage.append(WAL_NAME, rogue)
        storage.fsync(WAL_NAME)
        with pytest.raises(StoreCorruptError, match="kind"):
            DurableSketchStore.open(CONFIG, storage=storage)

    def test_missing_directory_is_typed(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            OsStorage(str(tmp_path / "nope"))

    def test_bad_store_file_names_rejected(self):
        storage = MemStorage()
        for name in ("", "a/b", ".hidden", "a..b"):
            with pytest.raises(StoreError):
                storage.read(name)


class TestWalBeforeAck:
    """The serve-layer contract: a live insert is WAL'd and fsynced
    before the server acknowledges it — a crash mid-ingest loses only
    unacknowledged points."""

    def _loaded(self, storage, points):
        from repro.serve import ServerCore

        store = DurableSketchStore.open(CONFIG, storage=storage)
        store.bulk_load(points)
        return store, ServerCore(CONFIG, list(points), store=store)

    def test_ingest_acks_are_durable(self):
        points = uniform_points(random.Random(11), 40, DELTA, 2)
        extra = uniform_points(random.Random(12), 10, DELTA, 2)
        storage = MemStorage()
        store, core = self._loaded(storage, points)
        assert core.ingest(extra) == 10
        assert len(core.points) == 50
        assert core.encoded("sharded") == store.encode()
        recovered = DurableSketchStore.open(CONFIG, storage=storage)
        assert recovered.encode() == store.encode()
        assert recovered.recovery.n_points == 50

    def test_crash_during_ingest_loses_only_the_unacked_batch(self):
        points = uniform_points(random.Random(11), 40, DELTA, 2)
        extra = uniform_points(random.Random(12), 10, DELTA, 2)
        injector = CrashPlan(seed=1, kill_after=None).injector()
        self._loaded(MemStorage(injector=injector), points)
        boot_ops = injector.ops

        plan = CrashPlan(seed=1, kill_after=boot_ops, torn=True)
        storage = MemStorage(injector=plan.injector())
        store, core = self._loaded(storage, points)
        before = store.encode()
        with pytest.raises(InjectedCrash):
            core.ingest(extra)
        # The ack never happened: neither the point list nor the live
        # sketch moved, and recovery sees only the bulk-loaded state.
        assert len(core.points) == 40
        assert store.encode() == before
        storage.crash(plan.rng("crash"))
        recovered = DurableSketchStore.open(CONFIG, storage=storage)
        assert recovered.encode() == before
        assert recovered.recovery.n_points == 40


class _LoseAll:
    """An rng whose every draw is 0 — the harshest legal crash."""

    def randrange(self, n: int) -> int:
        return 0


class TestMemStorageModel:
    def test_unsynced_bytes_can_vanish(self):
        storage = MemStorage()
        storage.write("f.bin", b"durable")
        storage.fsync("f.bin")
        storage.publish("f.bin", "f.bin")  # dir-sync the binding
        storage.append("f.bin", b"-volatile")
        storage.crash(_LoseAll())
        assert storage.read("f.bin") == b"durable"

    def test_unsynced_binding_can_vanish(self):
        storage = MemStorage()
        storage.write("tmp.bin", b"x")
        storage.fsync("tmp.bin")  # bytes durable, binding not
        storage.crash(_LoseAll())
        assert storage.read("tmp.bin") is None

    def test_publish_makes_bindings_durable(self):
        storage = MemStorage()
        storage.write("a~tmp", b"payload")
        storage.fsync("a~tmp")
        storage.publish("a~tmp", "a.bin")
        storage.crash(_LoseAll())
        assert storage.read("a.bin") == b"payload"
        assert storage.read("a~tmp") is None
