"""Unit tests for exact EMD (flow and scipy backends)."""

import random

import pytest

from repro.emd.flow import MinCostFlow
from repro.emd.matching import emd, min_cost_matching
from repro.errors import ConfigError


def random_points(rng, n, d, delta=1000):
    return [tuple(rng.randrange(delta) for _ in range(d)) for _ in range(n)]


class TestMinCostFlow:
    def test_simple_path(self):
        network = MinCostFlow(3)
        network.add_arc(0, 1, 2.0, 1.0)
        network.add_arc(1, 2, 2.0, 1.0)
        flow, cost = network.solve(0, 2, 2.0)
        assert flow == 2.0
        assert cost == 4.0

    def test_chooses_cheaper_route(self):
        network = MinCostFlow(4)
        network.add_arc(0, 1, 1.0, 10.0)
        network.add_arc(0, 2, 1.0, 1.0)
        network.add_arc(1, 3, 1.0, 0.0)
        network.add_arc(2, 3, 1.0, 0.0)
        flow, cost = network.solve(0, 3, 1.0)
        assert flow == 1.0
        assert cost == 1.0

    def test_respects_capacity(self):
        network = MinCostFlow(2)
        network.add_arc(0, 1, 1.0, 1.0)
        flow, _ = network.solve(0, 1, 5.0)
        assert flow == 1.0

    def test_validation(self):
        network = MinCostFlow(2)
        with pytest.raises(ConfigError):
            network.add_arc(0, 5, 1.0, 1.0)
        with pytest.raises(ConfigError):
            network.add_arc(0, 1, -1.0, 1.0)
        with pytest.raises(ConfigError):
            network.add_arc(0, 1, 1.0, -1.0)
        with pytest.raises(ConfigError):
            network.solve(0, 0, 1.0)
        with pytest.raises(ConfigError):
            MinCostFlow(0)

    def test_incremental_optimality(self):
        """Flow of value f is optimal for every f along the augmentations."""
        network = MinCostFlow(4)
        network.add_arc(0, 1, 1.0, 1.0)
        network.add_arc(0, 2, 1.0, 3.0)
        network.add_arc(1, 3, 1.0, 0.0)
        network.add_arc(2, 3, 1.0, 0.0)
        _, cost_one = network.solve(0, 3, 1.0)
        assert cost_one == 1.0
        _, cost_more = network.solve(0, 3, 1.0)  # second unit on top
        assert cost_more == 3.0


class TestEmdBasics:
    def test_empty_sets(self):
        assert emd([], []) == 0.0

    def test_identical_sets(self):
        points = [(1, 2), (3, 4)]
        assert emd(points, points) == 0.0

    def test_single_pair(self):
        assert emd([(0, 0)], [(3, 4)], "l1") == 7.0
        assert emd([(0, 0)], [(3, 4)], "l2") == 5.0

    def test_crossing_pairs_matched_optimally(self):
        # Matching straight across costs 2; crossing costs 18.
        xs = [(0,), (10,)]
        ys = [(1,), (9,)]
        assert emd(xs, ys) == 2.0

    def test_unequal_sizes_rejected(self):
        with pytest.raises(ConfigError):
            emd([(1,)], [])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            emd([(1,)], [(2,)], backend="gpu")

    def test_permutation_invariance(self):
        rng = random.Random(0)
        xs = random_points(rng, 8, 2)
        ys = random_points(rng, 8, 2)
        shuffled = list(ys)
        rng.shuffle(shuffled)
        assert emd(xs, ys) == pytest.approx(emd(xs, shuffled))

    def test_symmetry(self):
        rng = random.Random(1)
        xs = random_points(rng, 7, 3)
        ys = random_points(rng, 7, 3)
        assert emd(xs, ys) == pytest.approx(emd(ys, xs))


class TestBackendAgreement:
    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flow_matches_scipy(self, metric, seed):
        rng = random.Random(seed)
        xs = random_points(rng, 12, 2)
        ys = random_points(rng, 12, 2)
        assert emd(xs, ys, metric, backend="flow") == pytest.approx(
            emd(xs, ys, metric, backend="scipy")
        )

    def test_auto_uses_both_regimes(self):
        rng = random.Random(3)
        small_x, small_y = random_points(rng, 5, 1), random_points(rng, 5, 1)
        large_x, large_y = random_points(rng, 60, 1), random_points(rng, 60, 1)
        assert emd(small_x, small_y) == pytest.approx(
            emd(small_x, small_y, backend="scipy")
        )
        assert emd(large_x, large_y) == pytest.approx(
            emd(large_x, large_y, backend="flow")
        )


class TestMatchingStructure:
    def test_pairs_form_bijection(self):
        rng = random.Random(4)
        xs = random_points(rng, 10, 2)
        ys = random_points(rng, 10, 2)
        pairs, _ = min_cost_matching(xs, ys)
        assert sorted(i for i, _ in pairs) == list(range(10))
        assert sorted(j for _, j in pairs) == list(range(10))

    def test_total_matches_pair_costs(self):
        from repro.emd.metrics import distance

        rng = random.Random(5)
        xs = random_points(rng, 9, 3)
        ys = random_points(rng, 9, 3)
        pairs, total = min_cost_matching(xs, ys, "l1", backend="flow")
        recomputed = sum(distance(xs[i], ys[j], "l1") for i, j in pairs)
        assert total == pytest.approx(recomputed)

    def test_triangle_inequality_through_midpoints(self):
        """EMD obeys the triangle inequality (needed by the paper's proof)."""
        rng = random.Random(6)
        xs = random_points(rng, 8, 2)
        ys = random_points(rng, 8, 2)
        zs = random_points(rng, 8, 2)
        assert emd(xs, zs) <= emd(xs, ys) + emd(ys, zs) + 1e-9
