"""Systematic failure injection across every wire format.

Contract under test: **no corrupted or truncated message may ever produce a
silently wrong answer or a non-library exception.**  Every mutation must
yield either (a) a clean library error, or (b) a successful result that
still satisfies the protocol's invariants (size balance, grid range).
"""

import random

import pytest

from repro.baselines.cpi import CPIReconciler
from repro.baselines.exact_ibf import ExactIBF
from repro.baselines.full_transfer import FullTransfer
from repro.core.adaptive import AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.errors import ReproError
from repro.iblt.strata import StrataConfig, StrataEstimator
from repro.iblt.table import IBLT, IBLTConfig
from repro.workloads.synthetic import perturbed_pair

DELTA = 4096


def corruptions(payload: bytes, rng: random.Random, count: int = 8):
    """Yield mutated variants of a payload: bit flips and truncations."""
    data = bytearray(payload)
    for _ in range(count):
        mutated = bytearray(data)
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 << rng.randrange(8)
        yield bytes(mutated)
    for fraction in (0.0, 0.25, 0.5, 0.95):
        yield payload[: int(len(payload) * fraction)]
    yield payload + b"\x00\x01"


def assert_graceful(fn, invariant=None):
    """Run fn; allow library errors, forbid foreign exceptions."""
    try:
        result = fn()
    except ReproError:
        return
    if invariant is not None:
        invariant(result)


class TestHierarchySketchCorruption:
    def test_one_round_protocol(self):
        workload = perturbed_pair(0, 60, DELTA, 2, true_k=2, noise=2)
        config = ProtocolConfig(delta=DELTA, dimension=2, k=4, seed=0)
        reconciler = HierarchicalReconciler(config)
        payload = reconciler.encode(workload.alice)
        rng = random.Random(0)
        for mutated in corruptions(payload, rng):
            assert_graceful(
                lambda m=mutated: reconciler.decode_and_repair(m, workload.bob),
                invariant=lambda res: _check_points(res.repaired),
            )


class TestAdaptiveCorruption:
    def test_request_corruption(self):
        workload = perturbed_pair(1, 60, DELTA, 2, true_k=2, noise=2)
        config = ProtocolConfig(delta=DELTA, dimension=2, k=4, seed=1)
        reconciler = AdaptiveReconciler(config)
        request = reconciler.bob_request(workload.bob)
        rng = random.Random(1)
        for mutated in corruptions(request, rng, count=5):
            assert_graceful(
                lambda m=mutated: reconciler.alice_respond(m, workload.alice)
            )

    def test_response_corruption(self):
        workload = perturbed_pair(2, 60, DELTA, 2, true_k=2, noise=2)
        config = ProtocolConfig(delta=DELTA, dimension=2, k=4, seed=2)
        reconciler = AdaptiveReconciler(config)
        request = reconciler.bob_request(workload.bob)
        response = reconciler.alice_respond(request, workload.alice)
        rng = random.Random(2)
        for mutated in corruptions(response, rng, count=5):
            assert_graceful(
                lambda m=mutated: reconciler.bob_finish(m, workload.bob),
                invariant=lambda res: _check_points(res.repaired),
            )


class TestBaselinePayloadCorruption:
    def test_full_transfer(self):
        transfer = FullTransfer(DELTA, 2)
        payload = transfer.encode([(1, 2), (3, 4), (100, 200)])
        rng = random.Random(3)
        for mutated in corruptions(payload, rng, count=5):
            assert_graceful(
                lambda m=mutated: transfer.decode(m),
                invariant=lambda points: _check_points(points, strict=False),
            )

    def test_iblt_payload(self):
        config = IBLTConfig(cells=32, q=4, seed=4)
        table = IBLT(config)
        table.insert_all(range(10))
        payload = table.to_bytes()
        rng = random.Random(4)
        for mutated in corruptions(payload, rng, count=5):
            assert_graceful(lambda m=mutated: IBLT.from_bytes(m, config))

    def test_strata_payload(self):
        config = StrataConfig(seed=5)
        estimator = StrataEstimator(config)
        estimator.insert_all(range(100))
        payload = estimator.to_bytes()
        rng = random.Random(5)
        mine = StrataEstimator(config)
        mine.insert_all(range(50))
        for mutated in corruptions(payload, rng, count=5):
            def attempt(m=mutated):
                other = StrataEstimator.from_bytes(m, config)
                # A bit-flipped estimator may parse; the estimate must then
                # still be a sane non-negative integer.
                estimate = mine.estimate_difference(other)
                assert estimate >= 0
            assert_graceful(attempt)


class TestCrossProtocolTampering:
    """Feed one protocol's message to another: must fail cleanly."""

    def test_sketch_fed_to_adaptive(self):
        workload = perturbed_pair(6, 40, DELTA, 2, true_k=2, noise=1)
        config = ProtocolConfig(delta=DELTA, dimension=2, k=4, seed=6)
        one_round = HierarchicalReconciler(config)
        adaptive = AdaptiveReconciler(config)
        payload = one_round.encode(workload.alice)
        assert_graceful(lambda: adaptive.bob_finish(payload, workload.bob))
        assert_graceful(lambda: adaptive.alice_respond(payload, workload.alice))

    def test_adaptive_request_fed_to_one_round(self):
        workload = perturbed_pair(7, 40, DELTA, 2, true_k=2, noise=1)
        config = ProtocolConfig(delta=DELTA, dimension=2, k=4, seed=7)
        adaptive = AdaptiveReconciler(config)
        one_round = HierarchicalReconciler(config)
        request = adaptive.bob_request(workload.bob)
        assert_graceful(
            lambda: one_round.decode_and_repair(request, workload.bob)
        )


class TestExactBaselineChannelFailures:
    def test_ibf_with_zero_retries_can_fail_cleanly(self):
        """An undersized headroom with retries disabled must raise a library
        error, not loop or crash."""
        workload = perturbed_pair(8, 400, 2**16, 2, true_k=2, noise=3)
        baseline = ExactIBF(2**16, 2, seed=8, headroom=1.0, max_retries=0)
        try:
            result = baseline.run(workload.alice, workload.bob)
        except ReproError:
            return
        assert sorted(result.repaired) == sorted(workload.alice)

    def test_cpi_with_zero_retries_can_fail_cleanly(self):
        rng = random.Random(9)
        pool = list({(rng.randrange(DELTA), rng.randrange(DELTA))
                     for _ in range(260)})
        alice = pool[:220]
        bob = pool[20:240]
        baseline = CPIReconciler(DELTA, 2, seed=9, headroom=1.0,
                                 max_retries=0, verify_points=2)
        try:
            result = baseline.run(alice, bob)
        except ReproError:
            return
        assert sorted(result.repaired) == sorted(alice)


def _check_points(points, strict: bool = True) -> None:
    assert isinstance(points, list)
    for point in points:
        assert len(point) == 2
        if strict:
            for coordinate in point:
                assert 0 <= coordinate < DELTA
