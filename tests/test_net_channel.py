"""Unit tests for the simulated channel and transcripts."""

import pytest

from repro.errors import ChannelError
from repro.net.channel import Direction, SimulatedChannel
from repro.net.transcript import Transcript


class TestSimulatedChannel:
    def test_send_returns_payload(self):
        channel = SimulatedChannel()
        payload = channel.send(Direction.ALICE_TO_BOB, b"abc", "greeting")
        assert payload == b"abc"

    def test_bit_accounting(self):
        channel = SimulatedChannel()
        channel.send(Direction.ALICE_TO_BOB, b"abcd")
        channel.send(Direction.BOB_TO_ALICE, b"xy")
        assert channel.total_bits == 48
        assert channel.total_bytes == 6
        assert channel.bits_from(Direction.ALICE_TO_BOB) == 32
        assert channel.bits_from(Direction.BOB_TO_ALICE) == 16

    def test_round_counting_alternating(self):
        channel = SimulatedChannel()
        channel.send(Direction.BOB_TO_ALICE, b"1")
        channel.send(Direction.ALICE_TO_BOB, b"2")
        channel.send(Direction.BOB_TO_ALICE, b"3")
        assert channel.rounds == 3

    def test_round_counting_merges_same_direction(self):
        channel = SimulatedChannel()
        channel.send(Direction.ALICE_TO_BOB, b"1")
        channel.send(Direction.ALICE_TO_BOB, b"2")
        assert channel.rounds == 1

    def test_empty_channel_has_zero_rounds(self):
        assert SimulatedChannel().rounds == 0

    def test_closed_channel_rejects_send(self):
        channel = SimulatedChannel()
        channel.close()
        with pytest.raises(ChannelError):
            channel.send(Direction.ALICE_TO_BOB, b"late")

    def test_non_bytes_payload_rejected(self):
        channel = SimulatedChannel()
        with pytest.raises(ChannelError):
            channel.send(Direction.ALICE_TO_BOB, "not bytes")

    def test_bytearray_payload_accepted(self):
        channel = SimulatedChannel()
        assert channel.send(Direction.ALICE_TO_BOB, bytearray(b"ok")) == b"ok"


class TestTranscript:
    def test_from_channel(self):
        channel = SimulatedChannel()
        channel.send(Direction.ALICE_TO_BOB, b"abcd", "sketch")
        channel.send(Direction.BOB_TO_ALICE, b"z", "ack")
        transcript = Transcript.from_channel(channel)
        assert transcript.total_bits == 40
        assert transcript.alice_to_bob_bits == 32
        assert transcript.bob_to_alice_bits == 8
        assert transcript.rounds == 2
        assert transcript.message_labels == ("sketch", "ack")
        assert transcript.total_bytes == 5

    def test_describe_mentions_labels(self):
        channel = SimulatedChannel()
        channel.send(Direction.ALICE_TO_BOB, b"abcd", "sketch")
        text = Transcript.from_channel(channel).describe()
        assert "sketch" in text
        assert "32 bits" in text

    def test_describe_empty(self):
        text = Transcript.from_channel(SimulatedChannel()).describe()
        assert "none" in text

    def test_per_direction_bytes(self):
        channel = SimulatedChannel()
        channel.send(Direction.ALICE_TO_BOB, b"abcd")
        channel.send(Direction.BOB_TO_ALICE, b"xy")
        transcript = Transcript.from_channel(channel)
        assert transcript.alice_to_bob_bytes == 4
        assert transcript.bob_to_alice_bytes == 2
        assert transcript.total_bytes == 6

    def test_to_dict_is_json_ready(self):
        import json

        channel = SimulatedChannel()
        channel.send(Direction.ALICE_TO_BOB, b"abcd", "sketch")
        record = Transcript.from_channel(channel).to_dict()
        assert json.loads(json.dumps(record)) == record
        assert record["alice_to_bob_bytes"] == 4
        assert record["message_labels"] == ["sketch"]
        assert record["rounds"] == 1

    def test_from_messages_slice_of_reused_channel(self):
        """A reused channel's transcript can cover just one run's slice."""
        channel = SimulatedChannel()
        channel.send(Direction.ALICE_TO_BOB, b"first-run")
        start = len(channel.messages)
        channel.send(Direction.ALICE_TO_BOB, b"second")
        transcript = Transcript.from_messages(channel.messages[start:])
        assert transcript.total_bytes == 6
        assert transcript.rounds == 1
