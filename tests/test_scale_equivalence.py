"""Sharded-vs-unsharded equivalence properties on the golden workloads.

The sharded engine's contract: the merged repair is a valid repair of the
whole multiset, and whenever repairs are exact (level 0 everywhere — the
case where the protocol's output is fully determined) the sharded and
monolithic protocols produce *identical* repaired multisets.  At coarser
levels both remain count-balanced and cell-consistent, but may legally pick
different levels per region (that is the point of sharding).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.scale import reconcile_sharded
from repro.workloads.synthetic import perturbed_pair

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FIXTURES = sorted(
    path for path in GOLDEN_DIR.glob("*.json") if "adaptive" not in path.name
)


def _load(path):
    data = json.loads(path.read_text())
    alice = [tuple(p) for p in data["alice"]]
    bob = [tuple(p) for p in data["bob"]]
    return alice, bob, data["config"]


@pytest.mark.parametrize("path", GOLDEN_FIXTURES, ids=lambda p: p.stem)
@pytest.mark.parametrize("shards", [2, 4])
def test_golden_workloads_shard_equivalence(path, shards):
    alice, bob, config_kwargs = _load(path)
    unsharded = reconcile(alice, bob, ProtocolConfig(**config_kwargs))
    sharded = reconcile_sharded(
        alice, bob, ProtocolConfig(shards=shards, **config_kwargs)
    )
    # Count balance holds for any shard count.
    assert len(sharded.repaired) == len(unsharded.repaired) == len(alice)
    if unsharded.exact and sharded.exact:
        assert sorted(sharded.repaired) == sorted(unsharded.repaired)
        assert sorted(sharded.repaired) == sorted(alice)


@pytest.mark.parametrize("shards", [2, 3, 4])
def test_noise_free_equivalence_is_exact(shards):
    w = perturbed_pair(11, 500, 2**12, 2, 12, 0, noise_model="none")
    config = ProtocolConfig(delta=w.delta, dimension=2, k=48, seed=2, shards=shards)
    unsharded = reconcile(w.alice, w.bob, ProtocolConfig(
        delta=w.delta, dimension=2, k=48, seed=2))
    sharded = reconcile_sharded(w.alice, w.bob, config)
    assert sorted(sharded.repaired) == sorted(unsharded.repaired)
    assert sorted(sharded.repaired) == sorted(w.alice)


points_1d = st.lists(
    st.tuples(st.integers(min_value=0, max_value=255)), min_size=0, max_size=30
)


@settings(max_examples=40, deadline=None)
@given(alice=points_1d, bob=points_1d, shards=st.integers(min_value=2, max_value=4))
def test_property_sharded_repair_is_count_balanced(alice, bob, shards):
    """For arbitrary multisets: |repaired| == |alice| whenever both decode."""
    from repro.errors import ReconciliationFailure

    config = ProtocolConfig(delta=256, dimension=1, k=32, seed=9, shards=shards)
    unsharded_config = ProtocolConfig(delta=256, dimension=1, k=32, seed=9)
    try:
        sharded = reconcile_sharded(alice, bob, config)
        unsharded = reconcile(alice, bob, unsharded_config)
    except ReconciliationFailure:
        return  # tiny-k corner: legitimate protocol failure, not a crash
    assert len(sharded.repaired) == len(alice)
    if sharded.exact and unsharded.exact:
        assert sorted(sharded.repaired) == sorted(unsharded.repaired)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    shards=st.integers(min_value=2, max_value=4),
)
def test_property_noise_free_workloads_repair_exactly(seed, shards):
    w = perturbed_pair(seed, 80, 1024, 2, 5, 0, noise_model="none")
    config = ProtocolConfig(delta=w.delta, dimension=2, k=20, seed=1, shards=shards)
    result = reconcile_sharded(w.alice, w.bob, config)
    assert sorted(result.repaired) == sorted(w.alice)
