"""Property-based tests of the end-to-end protocol invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.emd.metrics import distance

DELTA = 512

points_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=DELTA - 1),
        st.integers(min_value=0, max_value=DELTA - 1),
    ),
    min_size=0,
    max_size=30,
)


@given(points_strategy, st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_identical_multisets_reconcile_exactly(points, seed):
    config = ProtocolConfig(delta=DELTA, dimension=2, k=2, seed=seed)
    result = reconcile(points, list(points), config)
    assert sorted(result.repaired) == sorted(points)
    assert result.level == 0


@given(points_strategy, points_strategy, st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_size_invariant_holds_for_arbitrary_sets(alice, bob, seed):
    """|S'_B| always equals |S_A| whenever the protocol succeeds."""
    config = ProtocolConfig(delta=DELTA, dimension=2, k=8, seed=seed)
    result = reconcile(alice, bob, config)
    assert len(result.repaired) == len(alice)


@given(
    points_strategy,
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_noise_only_repair_never_leaves_grid(points, noise, seed):
    rng = random.Random(seed)
    bob = [
        tuple(
            max(0, min(DELTA - 1, c + rng.randint(-noise, noise)))
            for c in point
        )
        for point in points
    ]
    config = ProtocolConfig(delta=DELTA, dimension=2, k=4, seed=seed)
    result = reconcile(points, bob, config)
    for point in result.repaired:
        assert all(0 <= c < DELTA for c in point)


@given(points_strategy, st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_repair_emd_never_worse_than_replacing_everything(alice, seed):
    """Repaired EMD is at most n * grid diameter (sanity ceiling)."""
    rng = random.Random(seed)
    bob = [
        (rng.randrange(DELTA), rng.randrange(DELTA)) for _ in alice
    ]
    config = ProtocolConfig(delta=DELTA, dimension=2, k=max(2, len(alice)),
                            seed=seed)
    result = reconcile(alice, bob, config)
    if alice:
        ceiling = len(alice) * 2 * DELTA
        assert emd(alice, result.repaired, backend="scipy") <= ceiling


@given(
    st.tuples(
        st.integers(min_value=0, max_value=DELTA - 1),
        st.integers(min_value=0, max_value=DELTA - 1),
    ),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=60, deadline=None)
def test_grid_center_distance_bounded(point, level, seed):
    """centre(cell(x)) is within the cell diameter of x, at every level."""
    grid = ShiftedGridHierarchy(DELTA, 2, seed)
    level = min(level, grid.max_level)
    centre = grid.center(grid.cell(point, level), level)
    assert distance(point, centre, "l1") <= grid.cell_diameter(level) + 2


@given(points_strategy, st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_strategies_agree_on_size(points, seed):
    rng = random.Random(seed)
    bob = [
        tuple(max(0, min(DELTA - 1, c + rng.randint(-2, 2))) for c in p)
        for p in points
    ]
    config = ProtocolConfig(delta=DELTA, dimension=2, k=4, seed=seed)
    occurrence = reconcile(points, bob, config, strategy="occurrence")
    centroid = reconcile(points, bob, config, strategy="centroid")
    assert len(occurrence.repaired) == len(centroid.repaired) == len(points)
