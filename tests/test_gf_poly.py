"""Unit tests for dense polynomial algebra over GF(p)."""

import pytest

from repro.errors import ConfigError
from repro.gf.field import PrimeField
from repro.gf.poly import Poly

F = PrimeField(97)


def P(*coeffs):
    """Low-degree-first polynomial shorthand."""
    return Poly.make(F, coeffs)


class TestConstruction:
    def test_trailing_zeros_stripped(self):
        assert P(1, 2, 0, 0).coeffs == (1, 2)

    def test_zero(self):
        zero = Poly.zero(F)
        assert zero.is_zero
        assert zero.degree == -1
        assert zero.leading == 0

    def test_one_and_x(self):
        assert Poly.one(F).coeffs == (1,)
        assert Poly.x(F).coeffs == (0, 1)

    def test_constant(self):
        assert Poly.constant(F, 100).coeffs == (3,)

    def test_negative_coefficients_normalised(self):
        assert P(-1).coeffs == (96,)

    def test_from_roots_small(self):
        poly = Poly.from_roots(F, [2, 5])
        # (x-2)(x-5) = x^2 - 7x + 10
        assert poly.coeffs == (10, 90, 1)

    def test_from_roots_empty(self):
        assert Poly.from_roots(F, []) == Poly.one(F)

    def test_from_roots_evaluates_to_zero_at_roots(self):
        roots = [3, 10, 44, 90]
        poly = Poly.from_roots(F, roots)
        assert poly.is_monic
        assert poly.degree == 4
        for root in roots:
            assert poly(root) == 0

    def test_from_roots_many_matches_left_fold(self):
        roots = list(range(1, 40))
        poly = Poly.from_roots(F, roots)
        fold = Poly.one(F)
        for r in roots:
            fold = fold * P(-r, 1)
        assert poly == fold


class TestArithmetic:
    def test_add_commutes_and_cancels(self):
        a, b = P(1, 2, 3), P(4, 5)
        assert a + b == b + a == P(5, 7, 3)
        assert (a - a).is_zero

    def test_mul_basic(self):
        # (1 + x)(1 - x) = 1 - x^2
        assert P(1, 1) * P(1, -1) == P(1, 0, -1)

    def test_mul_zero(self):
        assert (P(1, 2) * Poly.zero(F)).is_zero

    def test_mul_degree_adds(self):
        assert (P(1, 1, 1) * P(2, 3)).degree == 3

    def test_different_fields_rejected(self):
        other = Poly.make(PrimeField(101), [1])
        with pytest.raises(ConfigError):
            P(1) + other

    def test_scale(self):
        assert P(1, 2).scale(3) == P(3, 6)
        assert P(1, 2).scale(0).is_zero

    def test_shift(self):
        assert P(1, 2).shift(2) == P(0, 0, 1, 2)
        with pytest.raises(ConfigError):
            P(1).shift(-1)

    def test_eval_horner(self):
        poly = P(1, 2, 3)  # 1 + 2x + 3x^2
        assert poly(0) == 1
        assert poly(1) == 6
        assert poly(2) == (1 + 4 + 12) % 97


class TestDivision:
    def test_divmod_identity(self):
        a = P(5, 0, 3, 1)
        b = P(1, 2)
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_exact_division(self):
        product = P(1, 2) * P(3, 4, 5)
        assert product // P(1, 2) == P(3, 4, 5)
        assert (product % P(1, 2)).is_zero

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            P(1).divmod(Poly.zero(F))

    def test_small_by_large(self):
        q, r = P(1, 2).divmod(P(1, 2, 3))
        assert q.is_zero
        assert r == P(1, 2)

    def test_monic(self):
        assert P(2, 4).monic() == P(49, 1)  # divide by 4... (2/4, 1) mod 97
        assert Poly.zero(F).monic().is_zero

    def test_gcd_of_products(self):
        common = Poly.from_roots(F, [7, 11])
        a = common * Poly.from_roots(F, [1])
        b = common * Poly.from_roots(F, [2, 3])
        assert a.gcd(b) == common

    def test_gcd_coprime(self):
        a = Poly.from_roots(F, [1, 2])
        b = Poly.from_roots(F, [3, 4])
        assert a.gcd(b) == Poly.one(F)

    def test_gcd_with_zero(self):
        a = Poly.from_roots(F, [5])
        assert a.gcd(Poly.zero(F)) == a.monic()


class TestPowmodDerivative:
    def test_derivative(self):
        # d/dx (1 + 2x + 3x^2) = 2 + 6x
        assert P(1, 2, 3).derivative() == P(2, 6)
        assert P(5).derivative().is_zero

    def test_powmod_matches_naive(self):
        base = P(1, 1)
        modulus = P(1, 0, 1)  # x^2 + 1
        naive = Poly.one(F)
        for _ in range(13):
            naive = (naive * base) % modulus
        assert base.powmod(13, modulus) == naive

    def test_powmod_zero_exponent(self):
        assert P(4, 2).powmod(0, P(1, 0, 1)) == Poly.one(F)

    def test_powmod_validation(self):
        with pytest.raises(ConfigError):
            P(1).powmod(-1, P(1, 1))
        with pytest.raises(ConfigError):
            P(1).powmod(2, P(5))

    def test_fermat_on_polynomials(self):
        """x^p ≡ x (mod f) structure: x^p - x kills all linear factors."""
        f = Poly.from_roots(F, [10, 20, 30])
        x = Poly.x(F)
        frob = x.powmod(F.p, f)
        assert ((frob - x) % f).is_zero


class TestRepr:
    def test_zero_repr(self):
        assert repr(Poly.zero(F)) == "Poly(0)"

    def test_terms_repr(self):
        assert "x^2" in repr(P(0, 0, 5))
