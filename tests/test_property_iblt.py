"""Property-based tests for IBLT algebra and peeling."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iblt.decode import decode
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells

keys_strategy = st.sets(st.integers(min_value=0, max_value=2**60), max_size=40)


def fresh_pair(seed, cells=96, q=4):
    config = IBLTConfig(cells=cells, q=q, seed=seed)
    return IBLT(config), IBLT(config)


@given(keys_strategy, st.integers(min_value=0, max_value=1000))
@settings(max_examples=60)
def test_insert_then_delete_everything_is_empty(keys, seed):
    table, _ = fresh_pair(seed)
    table.insert_all(keys)
    table.delete_all(keys)
    assert table.is_empty()


@given(keys_strategy, keys_strategy, st.integers(min_value=0, max_value=1000))
@settings(max_examples=60)
def test_subtract_recovers_symmetric_difference(alice_keys, bob_keys, seed):
    """The defining IBLT property, over arbitrary small random sets."""
    alice, bob = fresh_pair(seed, cells=recommended_cells(80, q=4))
    alice.insert_all(alice_keys)
    bob.insert_all(bob_keys)
    result = decode(alice.subtract(bob))
    assert result.success
    assert sorted(result.alice_keys) == sorted(alice_keys - bob_keys)
    assert sorted(result.bob_keys) == sorted(bob_keys - alice_keys)


@given(keys_strategy, st.integers(min_value=0, max_value=1000))
@settings(max_examples=40)
def test_subtract_self_is_empty(keys, seed):
    alice, bob = fresh_pair(seed)
    alice.insert_all(keys)
    bob.insert_all(keys)
    diff = alice.subtract(bob)
    assert diff.is_empty()
    assert decode(diff).success


@given(keys_strategy, st.integers(min_value=0, max_value=1000))
@settings(max_examples=40)
def test_subtract_antisymmetry(keys, seed):
    """alice - bob peels to the mirror of bob - alice."""
    alice, bob = fresh_pair(seed, cells=recommended_cells(80, q=4))
    alice.insert_all(keys)
    forward = decode(alice.subtract(bob))
    backward = decode(bob.subtract(alice))
    assert forward.success and backward.success
    assert sorted(forward.alice_keys) == sorted(backward.bob_keys)
    assert sorted(forward.bob_keys) == sorted(backward.alice_keys)


@given(
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=1, max_value=60),
)
@settings(max_examples=40)
def test_serialisation_roundtrip_random_tables(seed, n_keys):
    rng = random.Random(seed)
    config = IBLTConfig(cells=64, q=4, seed=seed)
    table = IBLT(config)
    table.insert_all(rng.getrandbits(60) for _ in range(n_keys))
    restored = IBLT.from_bytes(table.to_bytes(), config)
    assert restored.counts == table.counts
    assert restored.key_sums == table.key_sums
    assert restored.check_sums == table.check_sums


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30)
def test_decode_success_at_half_load(seed):
    """Tables loaded to ~50% of the peeling threshold always decode."""
    rng = random.Random(seed)
    cells = 120
    n_diff = int(cells * 0.772 * 0.5)
    config = IBLTConfig(cells=cells, q=4, seed=seed)
    table = IBLT(config)
    keys = {rng.getrandbits(60) for _ in range(n_diff)}
    table.insert_all(keys)
    result = decode(table)
    assert result.success
    assert sorted(result.alice_keys) == sorted(keys)
