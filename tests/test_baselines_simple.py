"""Unit tests for the full-transfer and fixed-grid baselines plus key packing."""

import random

import pytest

from repro.baselines.base import (
    coordinate_bits,
    pack_point,
    point_bits,
    unpack_point,
)
from repro.baselines.fixed_grid import FixedGridQuantize
from repro.baselines.full_transfer import FullTransfer
from repro.emd.matching import emd
from repro.errors import ConfigError
from repro.workloads.synthetic import perturbed_pair


class TestPointPacking:
    def test_roundtrip(self):
        rng = random.Random(0)
        for _ in range(100):
            point = (rng.randrange(1000), rng.randrange(1000), rng.randrange(1000))
            key = pack_point(point, 1000, 3)
            assert unpack_point(key, 1000, 3) == point

    def test_distinct_points_distinct_keys(self):
        keys = {
            pack_point((x, y), 64, 2) for x in range(32) for y in range(32)
        }
        assert len(keys) == 1024

    def test_width_accounting(self):
        assert coordinate_bits(1024) == 10
        assert coordinate_bits(1025) == 11
        assert point_bits(1024, 3) == 30

    def test_validation(self):
        with pytest.raises(ConfigError):
            pack_point((1, 2), 64, 3)
        with pytest.raises(ConfigError):
            pack_point((64,), 64, 1)
        with pytest.raises(ConfigError):
            unpack_point(1 << 80, 64, 2)
        with pytest.raises(ConfigError):
            coordinate_bits(1)

    def test_unpack_rejects_out_of_grid_coordinate(self):
        # delta=1000 -> 10 bits per coordinate, but 1023 is encodable.
        with pytest.raises(ConfigError):
            unpack_point(1023, 1000, 1)


class TestFullTransfer:
    def test_exact_result(self):
        workload = perturbed_pair(1, 50, 1024, 2, true_k=4, noise=2)
        result = FullTransfer(1024, 2).run(workload.alice, workload.bob)
        assert sorted(result.repaired) == sorted(workload.alice)
        assert emd(workload.alice, result.repaired) == 0.0

    def test_bits_linear_in_n(self):
        transfer = FullTransfer(1024, 2)
        small = transfer.run([(1, 1)] , [(2, 2)]).total_bits
        big_set = [(i, i) for i in range(100)]
        big = transfer.run(big_set, [(2, 2)]).total_bits
        assert big > 50 * small / 2

    def test_single_round(self):
        result = FullTransfer(64, 1).run([(1,)], [(2,)])
        assert result.transcript.rounds == 1

    def test_empty_set(self):
        result = FullTransfer(64, 1).run([], [(2,)])
        assert result.repaired == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            FullTransfer(1, 1)


class TestFixedGrid:
    def test_clean_data_reconciles(self):
        workload = perturbed_pair(2, 80, 4096, 2, true_k=4, noise=0)
        baseline = FixedGridQuantize(4096, 2, level=4, seed=2)
        result = baseline.run(workload.alice, workload.bob)
        assert len(result.repaired) == len(workload.alice)
        # With zero noise the only differences are the true-k points, and
        # they come back as cell centres: EMD bounded by k * cell diameter.
        achieved = emd(workload.alice, result.repaired)
        assert achieved <= 8 * 2 * (2**4) * 2

    def test_small_noise_bits_flat_in_n(self):
        """Most noisy pairs stay inside their (coarse) cells, so the cost is
        dominated by the fixed estimator, not by n."""
        bits = []
        for n in (80, 320):
            workload = perturbed_pair(3, n, 4096, 2, true_k=2, noise=1)
            coarse = FixedGridQuantize(4096, 2, level=6, seed=3)
            bits.append(coarse.run(workload.alice, workload.bob).total_bits)
        assert bits[1] < bits[0] * 2  # 4x the data, <2x the bits

    def test_level_zero_equals_exact_semantics(self):
        workload = perturbed_pair(4, 40, 1024, 2, true_k=2, noise=0)
        baseline = FixedGridQuantize(1024, 2, level=0, seed=4)
        result = baseline.run(workload.alice, workload.bob)
        assert sorted(result.repaired) == sorted(workload.alice)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FixedGridQuantize(1024, 2, level=99)
        with pytest.raises(ConfigError):
            FixedGridQuantize(1024, 2, level=1, headroom=0.5)

    def test_info_reports_level(self):
        workload = perturbed_pair(5, 30, 1024, 2, true_k=1, noise=0)
        result = FixedGridQuantize(1024, 2, level=3, seed=5).run(
            workload.alice, workload.bob
        )
        assert result.info["level"] == 3
