"""Unit tests for the bit-granular serialisation layer."""

import pytest

from repro.errors import SerializationError
from repro.net.bits import (
    BitReader,
    BitWriter,
    uint_width,
    zigzag_decode,
    zigzag_encode,
)


class TestUintWidth:
    def test_zero_needs_one_bit(self):
        assert uint_width(0) == 1

    def test_powers_of_two(self):
        assert uint_width(1) == 1
        assert uint_width(2) == 2
        assert uint_width(255) == 8
        assert uint_width(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            uint_width(-1)


class TestZigzag:
    def test_small_values(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    def test_roundtrip(self):
        for value in (-1000, -17, -1, 0, 1, 5, 2**40, -(2**40)):
            assert zigzag_decode(zigzag_encode(value)) == value

    def test_decode_negative_rejected(self):
        with pytest.raises(SerializationError):
            zigzag_decode(-3)


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.getvalue() == b""

    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write_bit(bit)
        assert writer.bit_length == 4
        # 1011 padded to 10110000 = 0xB0.
        assert writer.getvalue() == b"\xb0"

    def test_bad_bit_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_bit(2)

    def test_uint_exact_width(self):
        writer = BitWriter()
        writer.write_uint(0xAB, 8)
        assert writer.getvalue() == b"\xab"

    def test_uint_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_uint(256, 8)

    def test_uint_negative_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_uint(-1, 8)

    def test_uint_zero_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_uint(0, 0)

    def test_varint_small_is_one_byte(self):
        writer = BitWriter()
        writer.write_varint(127)
        assert writer.byte_length == 1

    def test_varint_negative_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_varint(-1)

    def test_byte_length_rounds_up(self):
        writer = BitWriter()
        writer.write_uint(1, 3)
        assert writer.byte_length == 1
        assert len(writer.getvalue()) == 1


class TestRoundtrips:
    def test_mixed_fields(self):
        writer = BitWriter()
        writer.write_uint(5, 3)
        writer.write_varint(300)
        writer.write_svarint(-42)
        writer.write_bit(1)
        writer.write_bytes(b"hello")
        reader = BitReader(writer.getvalue())
        assert reader.read_uint(3) == 5
        assert reader.read_varint() == 300
        assert reader.read_svarint() == -42
        assert reader.read_bit() == 1
        assert reader.read_bytes() == b"hello"
        reader.expect_end()

    def test_wide_uint(self):
        writer = BitWriter()
        value = (1 << 200) - 12345
        writer.write_uint(value, 200)
        reader = BitReader(writer.getvalue())
        assert reader.read_uint(200) == value

    def test_large_varints(self):
        values = [0, 1, 127, 128, 2**32, 2**63 + 11]
        writer = BitWriter()
        for value in values:
            writer.write_varint(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_varint() for _ in values] == values

    def test_bits_consumed_tracking(self):
        writer = BitWriter()
        writer.write_uint(3, 2)
        writer.write_uint(1, 7)
        reader = BitReader(writer.getvalue())
        reader.read_uint(2)
        assert reader.bits_consumed == 2
        reader.read_uint(7)
        assert reader.bits_consumed == 9


class TestReaderErrors:
    def test_overrun(self):
        reader = BitReader(b"\x01")
        with pytest.raises(SerializationError):
            reader.read_uint(9)

    def test_expect_end_with_unread_byte(self):
        reader = BitReader(b"\x01\x02")
        reader.read_uint(8)
        with pytest.raises(SerializationError):
            reader.expect_end()

    def test_expect_end_nonzero_padding(self):
        reader = BitReader(b"\xff")
        reader.read_uint(3)
        with pytest.raises(SerializationError):
            reader.expect_end()

    def test_expect_end_accepts_zero_padding(self):
        writer = BitWriter()
        writer.write_uint(1, 3)
        reader = BitReader(writer.getvalue())
        reader.read_uint(3)
        reader.expect_end()

    def test_strict_expect_end(self):
        writer = BitWriter()
        writer.write_uint(1, 8)
        reader = BitReader(writer.getvalue())
        reader.read_uint(8)
        reader.expect_end(allow_padding=False)

    def test_bytes_overrun(self):
        writer = BitWriter()
        writer.write_varint(100)  # claims 100 bytes follow, none do
        reader = BitReader(writer.getvalue())
        with pytest.raises(SerializationError):
            reader.read_bytes()
