"""Unit tests for the bit-granular serialisation layer."""

import time

import pytest

from repro.errors import SerializationError
from repro.net.bits import (
    BitReader,
    BitWriter,
    uint_width,
    zigzag_decode,
    zigzag_encode,
)


class TestUintWidth:
    def test_zero_needs_one_bit(self):
        assert uint_width(0) == 1

    def test_powers_of_two(self):
        assert uint_width(1) == 1
        assert uint_width(2) == 2
        assert uint_width(255) == 8
        assert uint_width(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            uint_width(-1)


class TestZigzag:
    def test_small_values(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    def test_roundtrip(self):
        for value in (-1000, -17, -1, 0, 1, 5, 2**40, -(2**40)):
            assert zigzag_decode(zigzag_encode(value)) == value

    def test_decode_negative_rejected(self):
        with pytest.raises(SerializationError):
            zigzag_decode(-3)


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.getvalue() == b""

    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write_bit(bit)
        assert writer.bit_length == 4
        # 1011 padded to 10110000 = 0xB0.
        assert writer.getvalue() == b"\xb0"

    def test_bad_bit_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_bit(2)

    def test_uint_exact_width(self):
        writer = BitWriter()
        writer.write_uint(0xAB, 8)
        assert writer.getvalue() == b"\xab"

    def test_uint_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_uint(256, 8)

    def test_uint_negative_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_uint(-1, 8)

    def test_uint_zero_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_uint(0, 0)

    def test_varint_small_is_one_byte(self):
        writer = BitWriter()
        writer.write_varint(127)
        assert writer.byte_length == 1

    def test_varint_negative_rejected(self):
        writer = BitWriter()
        with pytest.raises(SerializationError):
            writer.write_varint(-1)

    def test_byte_length_rounds_up(self):
        writer = BitWriter()
        writer.write_uint(1, 3)
        assert writer.byte_length == 1
        assert len(writer.getvalue()) == 1


class TestRoundtrips:
    def test_mixed_fields(self):
        writer = BitWriter()
        writer.write_uint(5, 3)
        writer.write_varint(300)
        writer.write_svarint(-42)
        writer.write_bit(1)
        writer.write_bytes(b"hello")
        reader = BitReader(writer.getvalue())
        assert reader.read_uint(3) == 5
        assert reader.read_varint() == 300
        assert reader.read_svarint() == -42
        assert reader.read_bit() == 1
        assert reader.read_bytes() == b"hello"
        reader.expect_end()

    def test_wide_uint(self):
        writer = BitWriter()
        value = (1 << 200) - 12345
        writer.write_uint(value, 200)
        reader = BitReader(writer.getvalue())
        assert reader.read_uint(200) == value

    def test_large_varints(self):
        values = [0, 1, 127, 128, 2**32, 2**63 + 11]
        writer = BitWriter()
        for value in values:
            writer.write_varint(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_varint() for _ in values] == values

    def test_bits_consumed_tracking(self):
        writer = BitWriter()
        writer.write_uint(3, 2)
        writer.write_uint(1, 7)
        reader = BitReader(writer.getvalue())
        reader.read_uint(2)
        assert reader.bits_consumed == 2
        reader.read_uint(7)
        assert reader.bits_consumed == 9


class TestReaderErrors:
    def test_overrun(self):
        reader = BitReader(b"\x01")
        with pytest.raises(SerializationError):
            reader.read_uint(9)

    def test_expect_end_with_unread_byte(self):
        reader = BitReader(b"\x01\x02")
        reader.read_uint(8)
        with pytest.raises(SerializationError):
            reader.expect_end()

    def test_expect_end_nonzero_padding(self):
        reader = BitReader(b"\xff")
        reader.read_uint(3)
        with pytest.raises(SerializationError):
            reader.expect_end()

    def test_expect_end_accepts_zero_padding(self):
        writer = BitWriter()
        writer.write_uint(1, 3)
        reader = BitReader(writer.getvalue())
        reader.read_uint(3)
        reader.expect_end()

    def test_strict_expect_end(self):
        writer = BitWriter()
        writer.write_uint(1, 8)
        reader = BitReader(writer.getvalue())
        reader.read_uint(8)
        reader.expect_end(allow_padding=False)

    def test_bytes_overrun(self):
        writer = BitWriter()
        writer.write_varint(100)  # claims 100 bytes follow, none do
        reader = BitReader(writer.getvalue())
        with pytest.raises(SerializationError):
            reader.read_bytes()


class TestBulkBytes:
    def test_aligned_read_bytes_is_sliced_verbatim(self):
        blob = bytes(range(256)) * 64
        writer = BitWriter()
        writer.write_bytes(blob)
        reader = BitReader(writer.getvalue())
        assert reader.read_bytes() == blob
        reader.expect_end()

    def test_unaligned_read_bytes_roundtrip(self):
        blob = bytes((i * 37) & 0xFF for i in range(10_000))
        writer = BitWriter()
        writer.write_uint(5, 3)  # knock the stream off byte alignment
        writer.write_bytes(blob)
        writer.write_uint(2, 2)
        reader = BitReader(writer.getvalue())
        assert reader.read_uint(3) == 5
        assert reader.read_bytes() == blob
        assert reader.read_uint(2) == 2

    def test_empty_read_bytes(self):
        writer = BitWriter()
        writer.write_uint(1, 1)
        writer.write_bytes(b"")
        reader = BitReader(writer.getvalue())
        assert reader.read_uint(1) == 1
        assert reader.read_bytes() == b""


class TestLinearScaling:
    """Regression guard for the old big-int-per-field BitReader.

    The previous reader parsed the whole message into one Python integer and
    shifted it per field, making a byte-wise scan of an ``n``-byte payload
    O(n^2).  The cursor-based reader must scan in (near-)linear time: the
    measured cost ratio between a 1 MB and a 128 KB scan stays near the size
    ratio (8x) instead of its square (64x).
    """

    @staticmethod
    def _scan_seconds(n_bytes: int) -> float:
        payload = bytes(256 * (n_bytes // 256))
        reader = BitReader(payload)
        reader.read_uint(3)  # unaligned: the worst case for the cursor
        fields = n_bytes - 1
        start = time.perf_counter()
        for _ in range(fields):
            reader.read_uint(8)
        return time.perf_counter() - start

    def test_bytewise_scan_is_near_linear(self):
        small, large = 128 * 1024, 1024 * 1024
        # Warm-up pass stabilises allocator effects; min-of-3 on BOTH sizes
        # keeps a transient stall on either measurement from skewing the
        # ratio on loaded CI machines.
        self._scan_seconds(small)
        t_small = min(self._scan_seconds(small) for _ in range(3))
        t_large = min(self._scan_seconds(large) for _ in range(3))
        ratio = t_large / max(t_small, 1e-9)
        # Linear scaling gives ~8x; the old quadratic reader gave ~64x.
        # The bound leaves ample room for timer noise while still failing
        # decisively on quadratic behaviour.
        assert ratio < 24, (
            f"byte-wise reads scale super-linearly: {small}B took {t_small:.4f}s, "
            f"{large}B took {t_large:.4f}s (ratio {ratio:.1f}x, expected ~8x)"
        )

    def test_megabyte_scan_absolute_budget(self):
        # A 1 MB byte-wise scan is ~1M small reads; even slow CI boxes finish
        # well under this cap, while the quadratic reader took minutes.
        assert self._scan_seconds(1024 * 1024) < 5.0

    def test_megabyte_writer_is_linear(self):
        blob = bytes(1024) * 1024
        writer = BitWriter()
        writer.write_uint(1, 3)  # keep every append unaligned
        start = time.perf_counter()
        for byte in blob[: 256 * 1024]:
            writer.write_uint(byte, 8)
        writer.write_bytes(blob)
        elapsed = time.perf_counter() - start
        assert writer.getvalue()  # materialise
        assert elapsed < 5.0
