"""Unit tests for EMD_k, the 1-D fast path, and the grid estimator."""

import random

import pytest

from repro.emd.estimate import GridEmdEstimator
from repro.emd.matching import emd
from repro.emd.onedim import emd_1d
from repro.emd.partial import emd_k
from repro.errors import ConfigError


def random_points(rng, n, d, delta=1000):
    return [tuple(rng.randrange(delta) for _ in range(d)) for _ in range(n)]


class TestEmdK:
    def test_k_zero_equals_emd(self):
        rng = random.Random(0)
        xs = random_points(rng, 10, 2)
        ys = random_points(rng, 10, 2)
        assert emd_k(xs, ys, 0) == pytest.approx(emd(xs, ys))

    def test_k_equals_n_is_zero(self):
        rng = random.Random(1)
        xs = random_points(rng, 5, 2)
        ys = random_points(rng, 5, 2)
        assert emd_k(xs, ys, 5) == 0.0
        assert emd_k(xs, ys, 50) == 0.0

    def test_monotone_in_k(self):
        rng = random.Random(2)
        xs = random_points(rng, 12, 2)
        ys = random_points(rng, 12, 2)
        values = [emd_k(xs, ys, k) for k in range(6)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_outlier_forgiven(self):
        # Identical sets except one far outlier on each side.
        base = [(i, i) for i in range(10)]
        xs = base + [(900, 900)]
        ys = base + [(0, 900)]
        assert emd_k(xs, ys, 1) == 0.0
        assert emd_k(xs, ys, 0) == pytest.approx(900.0)

    def test_backends_agree(self):
        rng = random.Random(3)
        xs = random_points(rng, 11, 2)
        ys = random_points(rng, 11, 2)
        for k in (1, 3, 5):
            assert emd_k(xs, ys, k, backend="flow") == pytest.approx(
                emd_k(xs, ys, k, backend="scipy")
            )

    def test_validation(self):
        with pytest.raises(ConfigError):
            emd_k([(1,)], [], 1)
        with pytest.raises(ConfigError):
            emd_k([(1,)], [(2,)], -1)
        with pytest.raises(ConfigError):
            emd_k([(1,)], [(2,)], 1, backend="gpu")

    def test_empty_sets(self):
        assert emd_k([], [], 0) == 0.0

    def test_brute_force_agreement(self):
        """Cross-check against explicit enumeration of excluded subsets."""
        from itertools import combinations

        rng = random.Random(4)
        xs = random_points(rng, 6, 1, delta=100)
        ys = random_points(rng, 6, 1, delta=100)
        k = 2
        best = float("inf")
        for keep_x in combinations(range(6), 6 - k):
            for keep_y in combinations(range(6), 6 - k):
                sub_x = [xs[i] for i in keep_x]
                sub_y = [ys[j] for j in keep_y]
                best = min(best, emd(sub_x, sub_y))
        assert emd_k(xs, ys, k) == pytest.approx(best)


class TestEmd1d:
    def test_matches_general_emd(self):
        rng = random.Random(5)
        xs = random_points(rng, 20, 1)
        ys = random_points(rng, 20, 1)
        assert emd_1d(xs, ys) == pytest.approx(emd(xs, ys))

    def test_accepts_bare_numbers(self):
        assert emd_1d([0, 5], [1, 5]) == 1.0

    def test_rejects_higher_dims(self):
        with pytest.raises(ConfigError):
            emd_1d([(1, 2)], [(3, 4)])

    def test_rejects_unequal_sizes(self):
        with pytest.raises(ConfigError):
            emd_1d([1], [])

    def test_sorted_pairing_is_optimal(self):
        assert emd_1d([0, 100], [99, 1]) == 2.0


class TestGridEstimator:
    def test_identical_sets_estimate_zero(self):
        rng = random.Random(6)
        points = random_points(rng, 50, 2, delta=512)
        estimator = GridEmdEstimator(512, 2, seed=1)
        assert estimator.estimate(points, points) == 0.0

    def test_estimate_tracks_exact_within_log_factor(self):
        rng = random.Random(7)
        delta = 1024
        estimator = GridEmdEstimator(delta, 2, seed=2, shifts=5)
        xs = random_points(rng, 30, 2, delta)
        ys = [(x + rng.randrange(-3, 4), y + rng.randrange(-3, 4)) for x, y in xs]
        ys = [(max(0, min(delta - 1, a)), max(0, min(delta - 1, b))) for a, b in ys]
        exact = emd(xs, ys)
        estimate = estimator.estimate(xs, ys)
        # Pyramid estimators are O(d log delta) distorted; assert a loose sandwich.
        assert estimate <= exact * 2 * 10 + 1e-9
        assert estimate >= exact / 20 - 1e-9

    def test_estimate_orders_small_vs_large_perturbations(self):
        rng = random.Random(8)
        delta = 1024
        estimator = GridEmdEstimator(delta, 2, seed=3, shifts=5)
        xs = random_points(rng, 40, 2, delta)

        def perturb(points, magnitude):
            return [
                tuple(
                    max(0, min(delta - 1, c + rng.randrange(-magnitude, magnitude + 1)))
                    for c in p
                )
                for p in points
            ]

        small = estimator.estimate(xs, perturb(xs, 2))
        large = estimator.estimate(xs, perturb(xs, 200))
        assert large > small

    def test_validation(self):
        with pytest.raises(ConfigError):
            GridEmdEstimator(1, 2)
        with pytest.raises(ConfigError):
            GridEmdEstimator(16, 0)
        with pytest.raises(ConfigError):
            GridEmdEstimator(16, 2, shifts=0)
        estimator = GridEmdEstimator(16, 2)
        with pytest.raises(ConfigError):
            estimator.estimate([(1, 2, 3)], [(1, 2, 3)])
