"""Tests for the harness's failure handling and EMD-oracle selection."""

import math

from repro.analysis.methods import (
    EXACT_EMD_LIMIT,
    MethodRun,
    default_methods,
    measure_emd,
    run_method,
)
from repro.errors import ReconciliationFailure
from repro.workloads.synthetic import perturbed_pair


class TestRunMethod:
    def test_success_passthrough(self):
        run = MethodRun("x", 10, 1, [])
        assert run_method(lambda: run, "x") is run

    def test_library_failure_marked(self):
        def boom():
            raise ReconciliationFailure("sketch overflowed")

        run = run_method(boom, "x")
        assert run.failed
        assert "overflowed" in run.failure
        assert run.repaired is None

    def test_foreign_exception_propagates(self):
        """Bugs must not be silently converted into benchmark rows."""

        def bug():
            raise KeyError("logic error")

        try:
            run_method(bug, "x")
        except KeyError:
            return
        raise AssertionError("foreign exception was swallowed")


class TestEmdOracleSelection:
    def test_exact_for_small_2d(self):
        workload = perturbed_pair(0, 50, 2**10, 2, true_k=0, noise=0)
        assert measure_emd(workload, list(workload.bob)) == 0.0

    def test_estimator_kicks_in_above_limit(self):
        n = EXACT_EMD_LIMIT + 50
        workload = perturbed_pair(1, n, 2**10, 2, true_k=0, noise=0)
        # Identical sets: whatever oracle is used must report ~0.
        assert measure_emd(workload, list(workload.alice)) == 0.0

    def test_1d_fast_path_at_any_size(self):
        workload = perturbed_pair(2, 3000, 2**10, 1, true_k=0, noise=0)
        assert measure_emd(workload, list(workload.alice)) == 0.0

    def test_size_mismatch_is_nan(self):
        workload = perturbed_pair(3, 20, 2**10, 2, true_k=0, noise=0)
        assert math.isnan(measure_emd(workload, workload.alice[:-2]))


class TestRegistryLaziness:
    def test_thunks_do_no_work_until_called(self):
        """Building the registry must be free (benchmarks build many)."""
        workload = perturbed_pair(4, 2000, 2**20, 2, true_k=4, noise=3)
        import time

        start = time.perf_counter()
        methods = default_methods(workload, k=8, seed=4)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.2
        assert len(methods) >= 5
