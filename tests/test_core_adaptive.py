"""Unit and integration tests for the two-round adaptive protocol."""

import random

import pytest

from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveReconciler,
    reconcile_adaptive,
)
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.errors import ConfigError, SerializationError
from repro.net.channel import SimulatedChannel


def clamp(value, delta):
    return max(0, min(delta - 1, value))


def perturbed_workload(rng, n, k, delta, dimension, noise):
    base = [
        tuple(rng.randrange(delta) for _ in range(dimension)) for _ in range(n)
    ]
    alice = list(base)
    bob = [
        tuple(clamp(c + rng.randrange(-noise, noise + 1), delta) for c in point)
        for point in base
    ]
    for _ in range(k // 2):
        alice.append(tuple(rng.randrange(delta) for _ in range(dimension)))
        bob.append(tuple(rng.randrange(delta) for _ in range(dimension)))
    return alice, bob


class TestAdaptiveConfig:
    def test_defaults_valid(self):
        AdaptiveConfig()

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveConfig(level_stride=0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(headroom=0.5)
        with pytest.raises(ConfigError):
            AdaptiveConfig(estimator_key_bits=16)


class TestSampledLevels:
    def test_includes_finest_and_coarsest(self):
        config = ProtocolConfig(delta=2**12, dimension=1, k=4, seed=1)
        reconciler = AdaptiveReconciler(config)
        sampled = reconciler.sampled_levels()
        assert sampled[0] == 0
        assert sampled[-1] == config.max_level

    def test_stride_thins_levels(self):
        config = ProtocolConfig(delta=2**12, dimension=1, k=4, seed=1)
        wide = AdaptiveReconciler(config, AdaptiveConfig(level_stride=4))
        narrow = AdaptiveReconciler(config, AdaptiveConfig(level_stride=1))
        assert len(wide.sampled_levels()) < len(narrow.sampled_levels())


class TestEndToEnd:
    def test_two_rounds(self):
        config = ProtocolConfig(delta=2**14, dimension=2, k=4, seed=2)
        rng = random.Random(2)
        alice, bob = perturbed_workload(rng, 150, 4, 2**14, 2, noise=3)
        channel = SimulatedChannel()
        result = reconcile_adaptive(alice, bob, config, channel=channel)
        assert result.transcript.rounds == 2
        assert result.transcript.bob_to_alice_bits > 0
        assert result.transcript.alice_to_bob_bits > 0

    def test_size_invariant(self):
        config = ProtocolConfig(delta=2**14, dimension=2, k=4, seed=3)
        rng = random.Random(3)
        alice, bob = perturbed_workload(rng, 150, 4, 2**14, 2, noise=3)
        result = reconcile_adaptive(alice, bob, config)
        assert len(result.repaired) == len(alice)

    def test_emd_improves(self):
        config = ProtocolConfig(delta=2**14, dimension=2, k=4, seed=4)
        rng = random.Random(4)
        alice, bob = perturbed_workload(rng, 150, 4, 2**14, 2, noise=3)
        result = reconcile_adaptive(alice, bob, config)
        assert emd(alice, result.repaired) < emd(alice, bob)

    def test_identical_sets_decode_finest(self):
        config = ProtocolConfig(delta=2**10, dimension=2, k=2, seed=5)
        rng = random.Random(5)
        points = [(rng.randrange(2**10), rng.randrange(2**10)) for _ in range(100)]
        result = reconcile_adaptive(points, list(points), config)
        assert sorted(result.repaired) == sorted(points)

    def test_cheaper_than_one_round_at_large_k(self):
        """The adaptive variant's raison d'être: shedding the log-delta
        factor once k (and so the per-level IBLT size) is large."""
        config = ProtocolConfig(delta=2**20, dimension=2, k=32, seed=6)
        rng = random.Random(6)
        alice, bob = perturbed_workload(rng, 400, 32, 2**20, 2, noise=8)
        one_round = reconcile(alice, bob, config)
        adaptive = reconcile_adaptive(alice, bob, config)
        assert (
            adaptive.transcript.total_bits < one_round.transcript.total_bits / 2
        )

    def test_quality_comparable_to_one_round(self):
        config = ProtocolConfig(delta=2**16, dimension=2, k=8, seed=7)
        rng = random.Random(7)
        alice, bob = perturbed_workload(rng, 200, 8, 2**16, 2, noise=4)
        one_round = reconcile(alice, bob, config)
        adaptive = reconcile_adaptive(alice, bob, config)
        assert emd(alice, adaptive.repaired) <= 4 * emd(alice, one_round.repaired)


class TestWireSafety:
    def test_request_magic_checked(self):
        config = ProtocolConfig(delta=2**10, dimension=1, k=2, seed=8)
        reconciler = AdaptiveReconciler(config)
        request = bytearray(reconciler.bob_request([(5,)]))
        request[0] ^= 0xFF
        with pytest.raises(SerializationError):
            reconciler.alice_respond(bytes(request), [(5,)])

    def test_response_magic_checked(self):
        config = ProtocolConfig(delta=2**10, dimension=1, k=2, seed=9)
        reconciler = AdaptiveReconciler(config)
        request = reconciler.bob_request([(5,)])
        response = bytearray(reconciler.alice_respond(request, [(5,)]))
        response[0] ^= 0xFF
        with pytest.raises(SerializationError):
            reconciler.bob_finish(bytes(response), [(5,)])

    def test_truncated_request_rejected(self):
        config = ProtocolConfig(delta=2**10, dimension=1, k=2, seed=10)
        reconciler = AdaptiveReconciler(config)
        request = reconciler.bob_request([(5,)])
        with pytest.raises(SerializationError):
            reconciler.alice_respond(request[:-8], [(5,)])


class TestWindowSelection:
    def test_window_contains_fallback(self):
        config = ProtocolConfig(delta=2**12, dimension=1, k=2, seed=11)
        reconciler = AdaptiveReconciler(config)
        estimates = {level: 10**6 for level in reconciler.sampled_levels()}
        window = reconciler._choose_window(estimates)
        assert any(level == config.max_level for level, _ in window)

    def test_no_fallback_when_disabled(self):
        config = ProtocolConfig(delta=2**12, dimension=1, k=2, seed=12)
        reconciler = AdaptiveReconciler(
            config, AdaptiveConfig(include_fallback=False)
        )
        estimates = {level: 1 for level in reconciler.sampled_levels()}
        window = reconciler._choose_window(estimates)
        assert all(level != config.max_level for level, _ in window)

    def test_small_estimates_choose_fine_levels(self):
        config = ProtocolConfig(delta=2**12, dimension=1, k=4, seed=13)
        reconciler = AdaptiveReconciler(config)
        estimates = {level: 2 for level in reconciler.sampled_levels()}
        window = reconciler._choose_window(estimates)
        finest = min(level for level, _ in window)
        assert finest == 0

    def test_finer_levels_get_more_cells(self):
        config = ProtocolConfig(delta=2**12, dimension=1, k=4, seed=14)
        reconciler = AdaptiveReconciler(config)
        sampled = reconciler.sampled_levels()
        estimates = {level: (30 if level < 6 else 4) for level in sampled}
        window = sorted(reconciler._choose_window(estimates))
        non_fallback = [item for item in window if item[0] != config.max_level]
        if len(non_fallback) >= 2:
            cells = [cells for _, cells in non_fallback]
            assert cells == sorted(cells, reverse=True)
