"""The sans-I/O session layer: state-machine contract, drivers, parity.

Contract under test: sessions produce byte-identical exchanges to the
pre-session monolithic drivers (pinned independently by the golden
transcripts), enforce their state machine with typed
:class:`~repro.errors.SessionError`\\ s, and the public ``reconcile*``
functions no longer close channels they did not create.
"""

import asyncio
import random

import pytest

from repro.core.adaptive import reconcile_adaptive
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.core.rateless import RatelessConfig, reconcile_rateless
from repro.errors import ChannelError, ReconciliationFailure, SessionError
from repro.net.channel import Direction, LoopbackChannel, SimulatedChannel
from repro.scale.engine import reconcile_sharded
from repro.session import (
    AdaptiveAliceSession,
    AdaptiveBobSession,
    Done,
    OneRoundAliceSession,
    OneRoundBobSession,
    RatelessAliceSession,
    RatelessBobSession,
    Session,
    ShardedSession,
    make_session,
    pump,
    run_async,
)
from repro.workloads.synthetic import perturbed_pair

DELTA = 2048


def _workload(seed=0, n=80, true_k=3, noise=2):
    return perturbed_pair(seed, n, DELTA, 2, true_k, noise)


def _config(**kwargs):
    defaults = dict(delta=DELTA, dimension=2, k=8, seed=5)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


class TestStateMachine:
    def test_one_round_alice_speaks_once_and_is_done(self):
        workload = _workload()
        session = OneRoundAliceSession(_config(), workload.alice)
        out = session.start()
        assert isinstance(out, Done)
        assert len(out.messages) == 1
        assert out.messages[0].label == "hierarchy-sketch"
        assert session.done
        assert session.result is None

    def test_one_round_bob_consumes_sketch(self):
        workload = _workload()
        config = _config()
        alice = OneRoundAliceSession(config, workload.alice)
        bob = OneRoundBobSession(config, workload.bob)
        sketch = alice.start().messages[0].payload
        assert bob.start() == []
        out = bob.feed(sketch)
        assert isinstance(out, Done)
        assert bob.done
        assert len(bob.result.repaired) == len(workload.alice)

    def test_adaptive_roles_alternate(self):
        workload = _workload(seed=1)
        config = _config(seed=1)
        alice = AdaptiveAliceSession(config, workload.alice)
        bob = AdaptiveBobSession(config, workload.bob)
        request = bob.start()
        assert [m.label for m in request] == ["adaptive-request"]
        assert not bob.done
        assert alice.start() == []
        window = alice.feed(request[0].payload)
        assert isinstance(window, Done)
        assert [m.label for m in window.messages] == ["adaptive-window"]
        final = bob.feed(window.messages[0].payload)
        assert isinstance(final, Done)
        assert len(bob.result.repaired) == len(workload.alice)

    def test_start_twice_raises(self):
        session = OneRoundBobSession(_config(), [(1, 1)])
        session.start()
        with pytest.raises(SessionError):
            session.start()

    def test_feed_before_start_raises(self):
        session = OneRoundBobSession(_config(), [(1, 1)])
        with pytest.raises(SessionError):
            session.feed(b"early")

    def test_feed_after_done_raises(self):
        """A duplicated message must be a typed error, not a rerun."""
        workload = _workload()
        config = _config()
        sketch = OneRoundAliceSession(config, workload.alice).start()
        bob = OneRoundBobSession(config, workload.bob)
        bob.start()
        payload = sketch.messages[0].payload
        bob.feed(payload)
        with pytest.raises(SessionError):
            bob.feed(payload)

    def test_result_before_done_raises(self):
        session = OneRoundBobSession(_config(), [(1, 1)])
        with pytest.raises(SessionError):
            session.result

    def test_non_bytes_payload_raises(self):
        session = OneRoundBobSession(_config(), [(1, 1)])
        session.start()
        with pytest.raises(SessionError):
            session.feed("not bytes")

    def test_memoryview_payload_accepted(self):
        """Zero-copy transports hand sessions buffer slices; feed must
        copy them out rather than reject them (regression)."""
        workload = _workload()
        config = _config()
        sketch = OneRoundAliceSession(config, workload.alice).start()
        payload = sketch.messages[0].payload
        for view in (memoryview(payload), bytearray(payload)):
            bob = OneRoundBobSession(config, workload.bob)
            bob.start()
            out = bob.feed(view)
            assert isinstance(out, Done)
            assert len(bob.result.repaired) == len(workload.alice)

    def test_sharded_role_validated(self):
        with pytest.raises(SessionError):
            ShardedSession(_config(shards=2), [(1, 1)], role="carol")

    def test_make_session_unknown_variant(self):
        with pytest.raises(SessionError):
            make_session("three-round", "alice", _config(), [])

    def test_make_session_builds_every_variant(self):
        config = _config(shards=2)
        for variant in ("one-round", "adaptive", "sharded", "rateless"):
            for role in ("alice", "bob"):
                with make_session(variant, role, config, [(1, 1)]) as session:
                    assert session.variant == variant
                    assert session.role == role


class _LabelProbe(Session):
    """Pin for inbound_label ordering: sessions routinely read their own
    position mid-feed (e.g. to parse the payload by expected type)."""

    variant = "probe"
    role = "bob"
    inbound_labels = ("first", "second", "third")

    def __init__(self):
        super().__init__()
        self.seen_during_feed = []

    def _feed(self, payload):
        self.seen_during_feed.append(self.inbound_label())
        if payload == b"boom":
            raise SessionError("probe exploded")
        return []


class TestInboundLabelOrdering:
    def test_label_names_the_in_flight_message(self):
        """Regression: ``_fed`` must advance *after* ``_feed`` so a
        mid-feed ``inbound_label()`` names the message being processed,
        never the next one (the old ordering was off by one)."""
        probe = _LabelProbe()
        probe.start()
        assert probe.inbound_label() == "first"     # next expected
        probe.feed(b"a")
        assert probe.seen_during_feed == ["first"]  # was "second" before fix
        assert probe.inbound_label() == "second"
        probe.feed(b"b")
        assert probe.seen_during_feed == ["first", "second"]

    def test_failed_feed_leaves_the_position_unchanged(self):
        probe = _LabelProbe()
        probe.start()
        probe.feed(b"a")
        with pytest.raises(SessionError, match="probe exploded"):
            probe.feed(b"boom")
        # The failed message was never consumed: the label still names it.
        assert probe.inbound_label() == "second"
        probe.feed(b"retry")
        assert probe.seen_during_feed == ["first", "second", "second"]

    def test_explicit_index_unaffected(self):
        probe = _LabelProbe()
        probe.start()
        assert probe.inbound_label(2) == "third"
        assert probe.inbound_label(9) == "message"


class TestRatelessStateMachine:
    def test_ping_pong_small_diff_stops_on_first_increment(self):
        workload = _workload(seed=11, n=40, true_k=2, noise=0)
        config = _config(seed=11)
        alice = RatelessAliceSession(config, workload.alice)
        bob = RatelessBobSession(config, workload.bob)
        opening = alice.start()
        assert [m.label for m in opening] == ["rateless-cells"]
        assert not alice.done
        assert bob.start() == []
        verdict = bob.feed(opening[0].payload)
        assert isinstance(verdict, Done)
        assert [m.label for m in verdict.messages] == ["rateless-ack"]
        assert sorted(bob.result.repaired) == sorted(workload.alice)
        closing = alice.feed(verdict.messages[0].payload)
        assert isinstance(closing, Done)
        assert closing.messages == ()
        assert alice.result is None

    def test_continue_ack_yields_the_next_increment(self):
        # Enough difference that segment 0 (initial_cells=8) cannot decode.
        workload = _workload(seed=12, n=60, true_k=8, noise=0)
        config = _config(seed=12)
        knobs = RatelessConfig(initial_cells=8, max_increments=8)
        alice = RatelessAliceSession(config, workload.alice, knobs)
        bob = RatelessBobSession(config, workload.bob, knobs)
        message = alice.start()[0]
        bob.start()
        increments = 1
        while True:
            out = bob.feed(message.payload)
            if isinstance(out, Done):
                break
            assert [m.label for m in out] == ["rateless-ack"]
            next_out = alice.feed(out[0].payload)
            assert [m.label for m in next_out] == ["rateless-cells"]
            message = next_out[0]
            increments += 1
        assert increments > 1
        assert sorted(bob.result.repaired) == sorted(workload.alice)

    def test_cap_raises_typed_failure_on_both_ends(self):
        workload = _workload(seed=13, n=80, true_k=12, noise=2)
        config = _config(seed=13)
        knobs = RatelessConfig(initial_cells=4, growth=1.1, max_increments=2)
        alice = RatelessAliceSession(config, workload.alice, knobs)
        bob = RatelessBobSession(config, workload.bob, knobs)
        message = alice.start()[0]
        bob.start()
        acks = []
        with pytest.raises(ReconciliationFailure, match="stream budget"):
            while True:
                out = bob.feed(message.payload)
                assert not isinstance(out, Done)
                acks.append(out[0])
                message = alice.feed(out[0].payload)[0]
        # Alice independently enforces the same shared cap.
        with pytest.raises(ReconciliationFailure, match="cap"):
            alice.feed(acks[-1].payload)

    def test_rateless_pump_matches_reconcile_rateless(self):
        workload = _workload(seed=14, n=50, true_k=4, noise=0)
        config = _config(seed=14)
        direct = reconcile_rateless(workload.alice, workload.bob, config)
        channel = SimulatedChannel()
        _, result = pump(
            RatelessAliceSession(config, workload.alice),
            RatelessBobSession(config, workload.bob),
            channel,
        )
        assert sorted(result.repaired) == sorted(direct.repaired)
        assert sorted(result.repaired) == sorted(workload.alice)
        assert channel.total_bits == direct.transcript.total_bits
        labels = [m.label for m in channel.messages]
        assert labels[0] == "rateless-cells"
        assert labels[-1] == "rateless-ack"
        assert set(labels) == {"rateless-cells", "rateless-ack"}


class TestPumpParity:
    """The session pump must reproduce the monolithic drivers exactly."""

    def test_one_round_pump_matches_reconcile(self):
        workload = _workload(seed=2)
        config = _config(seed=2)
        direct = reconcile(workload.alice, workload.bob, config)
        channel = SimulatedChannel()
        alice = OneRoundAliceSession(config, workload.alice)
        bob = OneRoundBobSession(config, workload.bob)
        _, result = pump(alice, bob, channel)
        assert sorted(result.repaired) == sorted(direct.repaired)
        assert [m.payload for m in channel.messages] and (
            channel.total_bits == direct.transcript.total_bits
        )

    def test_adaptive_pump_matches_reconcile_adaptive(self):
        workload = _workload(seed=3)
        config = _config(seed=3)
        direct = reconcile_adaptive(workload.alice, workload.bob, config)
        channel = SimulatedChannel()
        _, result = pump(
            AdaptiveAliceSession(config, workload.alice),
            AdaptiveBobSession(config, workload.bob),
            channel,
        )
        assert sorted(result.repaired) == sorted(direct.repaired)
        assert channel.rounds == 2
        assert [m.label for m in channel.messages] == [
            "adaptive-request", "adaptive-window",
        ]
        assert channel.messages[0].direction is Direction.BOB_TO_ALICE

    def test_sharded_pump_matches_reconcile_sharded(self):
        workload = _workload(seed=4, n=120)
        config = _config(seed=4, shards=2)
        direct = reconcile_sharded(workload.alice, workload.bob, config)
        channel = SimulatedChannel()
        with ShardedSession(config, workload.alice, role="alice") as alice, \
                ShardedSession(config, workload.bob, role="bob") as bob:
            _, result = pump(alice, bob, channel)
        assert sorted(result.repaired) == sorted(direct.repaired)
        assert channel.total_bits == direct.transcript.total_bits

    def test_pump_stalls_loudly_on_mispaired_sessions(self):
        """Two passive endpoints deadlock; the pump must raise, not hang."""
        config = _config()
        alice = AdaptiveAliceSession(config, [(1, 1)])  # waits for request
        bob = OneRoundBobSession(config, [(1, 1)])      # waits for sketch
        with pytest.raises(SessionError, match="stalled"):
            pump(alice, bob, SimulatedChannel())


class TestAsyncLoopback:
    def test_adaptive_over_loopback_matches_simulated(self):
        workload = _workload(seed=6)
        config = _config(seed=6)
        direct = reconcile_adaptive(workload.alice, workload.bob, config)

        async def run():
            channel = LoopbackChannel()
            alice = AdaptiveAliceSession(config, workload.alice)
            bob = AdaptiveBobSession(config, workload.bob)
            results = await asyncio.gather(
                run_async(alice, channel), run_async(bob, channel)
            )
            return channel, results[1]

        channel, result = asyncio.run(run())
        assert sorted(result.repaired) == sorted(direct.repaired)
        assert channel.total_bits == direct.transcript.total_bits

    def test_loopback_close_wakes_receiver(self):
        """A dead peer must never leave the other side awaiting forever."""

        async def run():
            channel = LoopbackChannel()

            async def receiver():
                await channel.receive(Direction.ALICE_TO_BOB)

            task = asyncio.create_task(receiver())
            await asyncio.sleep(0.01)
            channel.close()
            with pytest.raises(ChannelError):
                await asyncio.wait_for(task, timeout=2)

        asyncio.run(run())


class TestChannelOwnership:
    """Regression: reconcile* must not close caller-supplied channels."""

    @pytest.mark.parametrize("runner,kwargs", [
        (reconcile, {}),
        (reconcile_adaptive, {}),
        (reconcile_sharded, {}),
        (reconcile_rateless, {}),
    ])
    def test_caller_channel_stays_open_and_reusable(self, runner, kwargs):
        workload = _workload(seed=7)
        config = _config(
            seed=7, shards=2 if runner is reconcile_sharded else 1
        )
        channel = SimulatedChannel()
        first = runner(workload.alice, workload.bob, config, channel=channel)
        assert not channel.closed
        messages_after_first = len(channel.messages)
        # The same channel is usable for a second run (the old behavior
        # raised ChannelError here).
        second = runner(workload.alice, workload.bob, config, channel=channel)
        assert not channel.closed
        assert len(channel.messages) == 2 * messages_after_first
        # Each run's transcript covers only its own messages.
        assert first.transcript.total_bits == second.transcript.total_bits
        assert first.transcript.rounds == second.transcript.rounds

    def test_owned_channel_transcript_unchanged(self):
        workload = _workload(seed=8)
        config = _config(seed=8)
        channel = SimulatedChannel()
        via_channel = reconcile(
            workload.alice, workload.bob, config, channel=channel
        )
        owned = reconcile(workload.alice, workload.bob, config)
        assert owned.transcript == via_channel.transcript


class TestRandomizedParity:
    def test_many_seeds_one_round(self):
        """Session-pumped runs equal direct reconciler runs across seeds."""
        for seed in range(5):
            rng = random.Random(seed)
            workload = _workload(seed=seed, n=40 + rng.randrange(40))
            config = _config(seed=seed, k=4 + rng.randrange(8))
            direct = reconcile(workload.alice, workload.bob, config)
            channel = SimulatedChannel()
            _, result = pump(
                OneRoundAliceSession(config, workload.alice),
                OneRoundBobSession(config, workload.bob),
                channel,
            )
            assert sorted(result.repaired) == sorted(direct.repaired), seed
            assert channel.total_bits == direct.transcript.total_bits, seed
