"""Chaos matrix: the crash-only property over every variant.

Every fault plan crossed with every protocol variant, driven over a real
TCP connection through the chaos proxy.  The property under test is
crash-only behaviour: **each run either produces the correct repaired
multiset or raises a typed** :class:`~repro.errors.ReproError` **within
the scenario deadline** — never a hang, never a silently wrong answer.

When a cell of the matrix fails, the full reproduction recipe (plan
fields, fault trace, variant, observed outcome) is dumped as JSON into
``$CHAOS_TRACE_DIR`` (when set) so CI can upload it as an artifact; the
plan is a pure function of its seed, so the dump replays the failure
bit-identically.
"""

import asyncio
import dataclasses
import json
import os
import signal

import pytest

from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig
from repro.errors import ReproError, StaleResumeTokenError
from repro.net.channel import Direction
from repro.net.faults import ChaosProxy, FaultPlan
from repro.serve import (
    RESET,
    ReconciliationServer,
    RetryPolicy,
    ServerCore,
    WorkerPoolServer,
    classify,
    resilient_sync,
    sync,
)
from repro.session.rateless import RatelessResumeState
from repro.store import DurableSketchStore
from repro.workloads.synthetic import perturbed_pair

DELTA = 2048
#: Hard hang guard: every cell of the matrix must finish within this.
SCENARIO_TIMEOUT = 20.0
#: Client-side per-read timeout: small, so dropped frames surface as a
#: typed timeout quickly instead of stalling a cell.
CLIENT_TIMEOUT = 0.7
#: Server-side per-read timeout: outlives the client's so the server is
#: never the reason a healthy run fails, yet bounded so dead peers
#: cannot pin handler tasks past the scenario guard.
SERVER_TIMEOUT = 1.5

CONFIG = ProtocolConfig(delta=DELTA, dimension=2, k=6, seed=9)
RATELESS = RatelessConfig(initial_cells=8)
VARIANTS = ("one-round", "adaptive", "sharded", "rateless")

#: The fault plans of the matrix.  Probabilistic plans roll per frame in
#: both directions; the pinned plan cuts the first post-handshake server
#: frame, which every variant must survive with a typed error.
PLANS = [
    ("drop", FaultPlan(seed="mx-drop", drop=0.1)),
    ("truncate", FaultPlan(seed="mx-trunc", truncate=0.1)),
    ("corrupt", FaultPlan(seed="mx-corrupt", corrupt=0.15)),
    ("duplicate", FaultPlan(seed="mx-dup", duplicate=0.1)),
    ("mixed", FaultPlan(
        seed="mx-mixed", drop=0.05, truncate=0.05, corrupt=0.05,
        duplicate=0.05, delay=0.1, delay_ms=1,
    )),
    ("cut", FaultPlan(seed="mx-cut", disconnect=(Direction.ALICE_TO_BOB, 0))),
]


def _workload():
    return perturbed_pair(3, 120, DELTA, 2, 8, 2)


def _plan_record(plan: FaultPlan) -> dict:
    record = dataclasses.asdict(plan)
    if record["disconnect"] is not None:
        direction, index = record["disconnect"]
        record["disconnect"] = [getattr(direction, "value", direction), index]
    if record["only"] is not None:
        record["only"] = getattr(record["only"], "value", record["only"])
    return record


def _dump_trace(name: str, variant: str, plan: FaultPlan, trace, outcome):
    """Write the reproduction recipe for one failed cell (CI artifact)."""
    trace_dir = os.environ.get("CHAOS_TRACE_DIR")
    if not trace_dir:
        return
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, f"chaos_{name}_{variant}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "plan_name": name,
                "variant": variant,
                "plan": _plan_record(plan),
                "trace": [list(entry) for entry in trace],
                "outcome": outcome,
            },
            handle,
            indent=2,
            sort_keys=True,
        )


_CLEAN: dict[str, list] = {}


def _clean_repaired(variant: str) -> list:
    """The correct repaired multiset per variant, via a fault-free TCP
    run (computed once, cached for the whole matrix)."""
    if variant not in _CLEAN:
        workload = _workload()

        async def scenario():
            async with ReconciliationServer(
                CONFIG, workload.alice, rateless=RATELESS
            ) as server:
                return await sync(
                    *server.address, CONFIG, workload.bob,
                    variant=variant, rateless=RATELESS, timeout=10,
                )

        result = asyncio.run(
            asyncio.wait_for(scenario(), SCENARIO_TIMEOUT)
        )
        _CLEAN[variant] = sorted(result.repaired)
    return _CLEAN[variant]


async def _chaos_cell(variant: str, plan: FaultPlan):
    """Run one cell of the matrix; returns (outcome, trace)."""
    workload = _workload()
    async with ReconciliationServer(
        CONFIG, workload.alice, rateless=RATELESS, timeout=SERVER_TIMEOUT
    ) as server:
        async with ChaosProxy(*server.address, plan) as proxy:
            try:
                result = await sync(
                    *proxy.address, CONFIG, workload.bob,
                    variant=variant, rateless=RATELESS,
                    timeout=CLIENT_TIMEOUT,
                )
                outcome = ("ok", sorted(result.repaired))
            except ReproError as exc:
                outcome = ("error", type(exc).__name__, str(exc))
        return outcome, proxy.trace


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize(
    "name,plan", PLANS, ids=[name for name, _ in PLANS]
)
class TestChaosMatrix:
    def test_crash_only(self, name, plan, variant):
        trace = ()
        outcome = ("unknown",)
        try:
            outcome, trace = asyncio.run(
                asyncio.wait_for(_chaos_cell(variant, plan), SCENARIO_TIMEOUT)
            )
        except asyncio.TimeoutError:
            outcome = ("hang", f"exceeded the {SCENARIO_TIMEOUT:g}s guard")
            _dump_trace(name, plan=plan, variant=variant, trace=trace,
                        outcome=list(outcome))
            pytest.fail(f"{name} x {variant}: scenario hung")
        except Exception as exc:  # noqa: BLE001 — untyped escape = failure
            outcome = ("untyped", type(exc).__name__, str(exc))
            _dump_trace(name, plan=plan, variant=variant, trace=trace,
                        outcome=list(outcome))
            raise
        try:
            if outcome[0] == "ok":
                # Never a wrong answer: a run that claims success must
                # have repaired to exactly the clean multiset.
                assert outcome[1] == _clean_repaired(variant)
            else:
                # Typed failure: acceptable crash-only outcome.
                assert outcome[0] == "error"
        except AssertionError:
            _dump_trace(name, plan=plan, variant=variant, trace=trace,
                        outcome=[outcome[0], str(outcome[1:])])
            raise

    def test_pinned_cut_always_observed(self, name, plan, variant):
        """The pinned-disconnect plan is the one cell where the outcome
        is fully determined: the first server frame after the welcome is
        cut on every variant, so a typed error is guaranteed."""
        if name != "cut":
            pytest.skip("only the pinned-disconnect plan is deterministic")
        outcome, trace = asyncio.run(
            asyncio.wait_for(_chaos_cell(variant, plan), SCENARIO_TIMEOUT)
        )
        assert outcome[0] == "error", (variant, outcome)
        assert ("A->B", 0, "disconnect", 0, 0) in trace


#: Cuts the third server frame of a rateless stream: the client has the
#: welcome (resume token) and one fed increment when the wire dies, so
#: its resume state is worth presenting to the next incarnation.
RESTART_CUT = FaultPlan(
    seed="mx-restart", disconnect=(Direction.ALICE_TO_BOB, 2)
)


class TestRestartFromStore:
    """Restart plans: SIGKILL the serving process, restart from the
    durable store, and prove the client-visible contract — a resume
    token minted by a dead incarnation is refused *typed*
    (:class:`~repro.errors.StaleResumeTokenError`, classified
    :data:`~repro.serve.RESET`) and a fresh sync against the recovered
    state repairs correctly."""

    def _store_core(self, directory: str, points) -> tuple:
        store = DurableSketchStore.open(CONFIG, directory)
        if store.sketch.n_points == 0:
            store.bulk_load(points)
        core = ServerCore(CONFIG, points, store=store, rateless=RATELESS)
        return store, core

    def test_sigkill_then_stale_token_refused_then_repair(self, tmp_path):
        workload = _workload()
        state = RatelessResumeState()

        async def scenario():
            store_a, core_a = self._store_core(str(tmp_path), workload.alice)
            async with WorkerPoolServer(
                core=core_a, workers=1, max_restarts=0,
                timeout=SERVER_TIMEOUT,
            ) as pool:
                async with ChaosProxy(*pool.address, RESTART_CUT) as proxy:
                    with pytest.raises(ReproError):
                        await sync(
                            *proxy.address, CONFIG, workload.bob,
                            variant="rateless", rateless=RATELESS,
                            resume=state, timeout=CLIENT_TIMEOUT,
                        )
                # kill -9: incarnation A dies without any shutdown path.
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
            assert state.in_progress, "cut left nothing worth resuming"

            store_b, core_b = self._store_core(str(tmp_path), workload.alice)
            assert store_b.recovery.source == "snapshot"
            assert store_b.encode() == store_a.encode()
            async with ReconciliationServer(
                core=core_b, timeout=SERVER_TIMEOUT
            ) as server:
                with pytest.raises(StaleResumeTokenError) as refusal:
                    await sync(
                        *server.address, CONFIG, workload.bob,
                        variant="rateless", rateless=RATELESS,
                        resume=state, timeout=CLIENT_TIMEOUT,
                    )
                assert classify(refusal.value) == RESET
                state.reset()
                return await sync(
                    *server.address, CONFIG, workload.bob,
                    variant="rateless", rateless=RATELESS,
                    resume=state, timeout=CLIENT_TIMEOUT,
                )

        result = asyncio.run(asyncio.wait_for(scenario(), SCENARIO_TIMEOUT))
        assert sorted(result.repaired) == _clean_repaired("rateless")
        assert result.recovered is not None
        assert result.recovered["source"] == "snapshot"

    def test_resilient_sync_rides_through_the_restart(self, tmp_path):
        """The full ladder, hands-free: attempt 1 dies mid-stream (cut),
        the server is SIGKILLed and a new incarnation recovers from the
        store on the same address; attempt 2's stale token is refused →
        RESET; attempt 3 repairs.  ``resilient_sync`` absorbs all of it."""
        workload = _workload()
        incarnation_b: list = []

        async def scenario():
            store_a, core_a = self._store_core(str(tmp_path), workload.alice)
            pool = WorkerPoolServer(
                core=core_a, workers=1, max_restarts=0,
                timeout=SERVER_TIMEOUT,
            )
            await pool.start()
            proxy = ChaosProxy(*pool.address, RESTART_CUT)
            await proxy.start()
            host, port = proxy.address
            backoffs = []

            async def swap_on_first_backoff(delay):
                backoffs.append(delay)
                if len(backoffs) > 1:
                    return
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
                await pool.close()
                await proxy.close()
                _, core_b = self._store_core(str(tmp_path), workload.alice)
                last_error = None
                for _ in range(40):  # the freed port may linger briefly
                    server = ReconciliationServer(
                        core=core_b, host=host, port=port,
                        timeout=SERVER_TIMEOUT,
                    )
                    try:
                        await server.start()
                    except OSError as exc:
                        last_error = exc
                        await asyncio.sleep(0.05)
                        continue
                    incarnation_b.append(server)
                    return
                raise last_error

            try:
                result = await resilient_sync(
                    host, port, CONFIG, workload.bob,
                    variant="rateless", rateless=RATELESS,
                    policy=RetryPolicy(attempts=4, base_delay=0.0, jitter=0.0),
                    sleep=swap_on_first_backoff, timeout=CLIENT_TIMEOUT,
                )
            finally:
                if incarnation_b:
                    await incarnation_b[0].close()
                else:
                    await pool.close()
                    await proxy.close()
            return result, len(backoffs)

        result, retries = asyncio.run(
            asyncio.wait_for(scenario(), SCENARIO_TIMEOUT)
        )
        # Attempt 1 (cut) and attempt 2 (stale token) each backed off.
        assert retries == 2
        assert sorted(result.repaired) == _clean_repaired("rateless")
        assert result.recovered is not None
        assert result.recovered["source"] == "snapshot"
