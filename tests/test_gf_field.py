"""Unit tests for prime-field arithmetic."""

import random

import pytest

from repro.errors import ConfigError
from repro.gf.field import MERSENNE61, PrimeField, _is_probable_prime


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 97, 7919, MERSENNE61):
            assert _is_probable_prime(p)

    def test_known_composites(self):
        for n in (0, 1, 4, 9, 91, 561, 2**61 - 2):
            assert not _is_probable_prime(n)


class TestFieldOps:
    field = PrimeField(97)

    def test_modulus_must_be_prime(self):
        with pytest.raises(ConfigError):
            PrimeField(100)

    def test_default_modulus_is_mersenne61(self):
        assert PrimeField().p == MERSENNE61

    def test_add_sub_wraparound(self):
        f = self.field
        assert f.add(96, 5) == 4
        assert f.sub(3, 10) == 90

    def test_neg(self):
        assert self.field.neg(0) == 0
        assert self.field.neg(1) == 96

    def test_mul_inv_div(self):
        f = self.field
        for a in range(1, 97):
            assert f.mul(a, f.inv(a)) == 1
        assert f.div(10, 5) == 2

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            self.field.inv(0)

    def test_pow_negative_exponent(self):
        f = self.field
        assert f.mul(f.pow(5, -1), 5) == 1
        assert f.pow(5, -2) == f.mul(f.inv(5), f.inv(5))

    def test_normalize(self):
        assert self.field.normalize(-1) == 96
        assert self.field.normalize(97 * 5 + 3) == 3

    def test_random_element_bounds(self):
        rng = random.Random(1)
        for _ in range(50):
            value = self.field.random_element(rng)
            assert 0 <= value < 97
        for _ in range(50):
            assert self.field.random_element(rng, nonzero=True) != 0

    def test_field_is_hashable_value_object(self):
        assert PrimeField(97) == PrimeField(97)
        assert hash(PrimeField(97)) == hash(PrimeField(97))
