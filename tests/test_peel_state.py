"""Differential suite for the resumable :class:`~repro.iblt.decode.PeelState`.

Contract under test: a peel *resumed* across arbitrarily chunked cell
arrivals — ``declare`` + ``feed_cells`` in any grouping and order, or
whole segments via ``extend`` — finishes with exactly the same outcome as
a fresh ``decode()`` of everything at once: same ``success``, same
``alice_keys`` / ``bob_keys`` as multisets, same ``remaining_cells``.
That invariance is what makes the rateless protocol sound (peeling is
confluent: the recovered keys are the complement of the hypergraph's
2-core, which no arrival order can change).  A single ``extend``-ed
segment must additionally be *bit-identical* to ``decode()``, peel order
included — ``decode()`` is now a wrapper over this path.

Also pinned here: the within-round ``max_items`` guard (a batch round
larger than the remaining budget must truncate, not overshoot — the old
decoder applied whole rounds before checking) and the ``feed_cells``
misuse errors.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigError
from repro.iblt.backends import available_backends
from repro.iblt.decode import DECODE_STRATEGIES, PeelState, decode
from repro.iblt.table import IBLT, IBLTConfig

BACKENDS = available_backends()
QS = (3, 4)
SEEDS = (0, 1, 5, 11)


def _subtracted(alice_keys, bob_keys, cells, q, seed, backend):
    config = IBLTConfig(cells=cells, q=q, key_bits=64, seed=seed)
    alice = IBLT(config, backend=backend)
    bob = IBLT(config, backend=backend)
    alice.insert_many(alice_keys)
    bob.insert_many(bob_keys)
    return alice.subtract(bob)


def _random_sides(rng, n_diff):
    shared = [rng.getrandbits(64) for _ in range(rng.randint(0, 80))]
    alice_extra = [rng.getrandbits(64) for _ in range(n_diff // 2)]
    bob_extra = [rng.getrandbits(64) for _ in range(n_diff - n_diff // 2)]
    return shared + alice_extra, shared + bob_extra


def _fingerprint(result):
    """Everything a resumed peel must reproduce (peel order excluded)."""
    return (
        result.success,
        sorted(result.alice_keys),
        sorted(result.bob_keys),
        result.remaining_cells,
    )


def _cells_of(table):
    return [table.cell(index) for index in range(table.config.cells)]


def _feed_in_chunks(state, tables, chunks, rng):
    """Declare every table, then feed all cells in ``chunks`` shuffled pieces."""
    offsets = []
    for table in tables:
        offsets.append(state.declare(table.config))
    triples = []
    start = 0
    for table in tables:
        for local, cell in enumerate(_cells_of(table)):
            triples.append((start + local, cell))
        start += table.config.cells
    rng.shuffle(triples)
    size = max(1, -(-len(triples) // chunks))
    for begin in range(0, len(triples), size):
        piece = triples[begin:begin + size]
        state.feed_cells(
            [index for index, _ in piece], [cell for _, cell in piece]
        )
    return offsets


# --------------------------------------------------- incremental == fresh


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", DECODE_STRATEGIES)
@pytest.mark.parametrize("q", QS)
def test_chunked_feed_matches_fresh_decode(backend, strategy, q):
    """feed_cells in k shuffled increments == decode() of the whole table,
    across loads that succeed and loads that honestly stall."""
    for seed in SEEDS:
        rng = random.Random(90_000 * q + seed)
        cells = q * rng.randint(8, 30)
        for load in (0.3, 0.7, 1.2):
            n_diff = max(1, int(load * cells))
            alice_keys, bob_keys = _random_sides(rng, n_diff)
            diff = _subtracted(alice_keys, bob_keys, cells, q, seed, backend)
            fresh = decode(diff, strategy=strategy)
            for chunks in (1, 3, 7):
                state = PeelState(strategy=strategy, backend=backend)
                _feed_in_chunks(state, [diff], chunks, rng)
                assert state.fully_known
                assert _fingerprint(state.result()) == _fingerprint(fresh), (
                    seed, load, chunks
                )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", DECODE_STRATEGIES)
def test_single_extend_is_bit_identical_to_decode(backend, strategy):
    """decode() is a wrapper over extend(); peel_order must match too."""
    for seed in SEEDS:
        rng = random.Random(7_700 + seed)
        cells = 4 * rng.randint(10, 25)
        n_diff = rng.randint(1, int(0.7 * cells))
        alice_keys, bob_keys = _random_sides(rng, n_diff)
        diff = _subtracted(alice_keys, bob_keys, cells, 4, seed, backend)
        fresh = decode(diff, strategy=strategy)
        state = PeelState(strategy=strategy)
        state.extend(diff)
        resumed = state.result()
        assert _fingerprint(resumed) == _fingerprint(fresh)
        assert resumed.peel_order == fresh.peel_order


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", DECODE_STRATEGIES)
@pytest.mark.parametrize("q", QS)
def test_increments_after_a_stall_resume_the_peel(backend, strategy, q):
    """An undersized first segment stalls; a second independently seeded
    segment of the same keyspace must finish the job — and chunked feeding
    of both segments lands on the same outcome as whole-table extends."""
    for seed in SEEDS:
        rng = random.Random(42_000 * q + seed)
        n_diff = rng.randint(12, 24)
        alice_keys, bob_keys = _random_sides(rng, n_diff)
        # Segment 0 is far too small for the difference; segment 1 is ample.
        small = q * max(2, n_diff // 4)
        large = q * (2 * n_diff)
        seg0 = _subtracted(alice_keys, bob_keys, small, q, seed, backend)
        seg1 = _subtracted(alice_keys, bob_keys, large, q, seed + 1000, backend)

        state = PeelState(strategy=strategy)
        state.extend(seg0)
        stalled = state.result()
        state.extend(seg1)
        final = state.result()
        assert final.success, (seed, q)
        assert stalled.difference_size <= final.difference_size
        recovered = sorted(final.alice_keys + final.bob_keys)
        expected = sorted(
            set(alice_keys) ^ set(bob_keys)
        )
        assert recovered == expected

        # Same two segments, arbitrary cell arrival order and grouping.
        chunked = PeelState(strategy=strategy, backend=backend)
        _feed_in_chunks(chunked, [seg0, seg1], 5, rng)
        assert _fingerprint(chunked.result()) == _fingerprint(final)


@pytest.mark.parametrize("strategy", DECODE_STRATEGIES)
def test_declared_cells_do_not_leak_corrections(strategy):
    """A declared-but-unfed segment accumulates corrections that can look
    pure; peeling must never extract from it, and feeding the real cells
    later must still converge to the true difference."""
    rng = random.Random(99)
    alice_keys, bob_keys = _random_sides(rng, 10)
    seg0 = _subtracted(alice_keys, bob_keys, 80, 4, 3, "pure")
    seg1 = _subtracted(alice_keys, bob_keys, 80, 4, 4, "pure")
    state = PeelState(strategy=strategy)
    state.extend(seg0)           # decodes fully: corrections now pending
    assert state.solved
    state.declare(seg1.config)   # zeroed cells absorb the corrections
    assert not state.solved      # unknown cells block the verdict
    assert not state.failed
    before = state.result()
    # Feed segment 1 for real; the corrections and the true content must
    # cancel exactly (the state returns to solved with no new keys).
    state.feed_cells(
        range(seg0.config.cells, seg0.config.cells + seg1.config.cells),
        _cells_of(seg1),
    )
    assert state.solved
    after = state.result()
    assert sorted(after.alice_keys) == sorted(before.alice_keys)
    assert sorted(after.bob_keys) == sorted(before.bob_keys)
    assert after.remaining_cells == 0


# ------------------------------------------------------- max_items guard


def _adversarial_diff(backend, n_keys=30, cells=240, q=4):
    """A wide table whose *first* peel round exposes many pure cells at
    once — the shape that made the old between-rounds guard overshoot."""
    rng = random.Random(1234)
    keys = [rng.getrandbits(60) | 1 for _ in range(n_keys)]
    config = IBLTConfig(cells=cells, q=q, key_bits=64, seed=2)
    table = IBLT(config, backend=backend)
    table.insert_many(keys)
    return table


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", DECODE_STRATEGIES)
@pytest.mark.parametrize("max_items", (1, 5, 10))
def test_guard_is_enforced_within_a_round(backend, strategy, max_items):
    """Regression: no run may ever apply more than ``max_items``
    extractions, even when a single batch round holds more pure cells
    than the remaining budget."""
    diff = _adversarial_diff(backend)
    result = decode(diff, max_items=max_items, strategy=strategy)
    assert not result.success
    assert result.difference_size <= max_items
    assert len(result.peel_order) <= max_items
    assert result.remaining_cells > 0


@pytest.mark.parametrize("strategy", DECODE_STRATEGIES)
def test_guard_equality_still_succeeds(strategy):
    """A peel of exactly ``max_items`` keys is legitimate, not a failure."""
    rng = random.Random(5)
    keys = [rng.getrandbits(60) | 1 for _ in range(12)]
    config = IBLTConfig(cells=120, q=4, key_bits=64, seed=6)
    table = IBLT(config)
    table.insert_many(keys)
    result = decode(table, max_items=len(keys), strategy=strategy)
    assert result.success
    assert result.difference_size == len(keys)


@pytest.mark.parametrize("strategy", DECODE_STRATEGIES)
def test_tripped_guard_poisons_the_state(strategy):
    """After the guard fires, further arrivals merge but never peel."""
    diff = _adversarial_diff("pure")
    state = PeelState(strategy=strategy, max_items=4)
    state.extend(diff)
    assert state.failed
    size_at_failure = state.difference_size
    assert size_at_failure <= 4
    extra = _adversarial_diff("pure")
    state.extend(extra)
    assert state.failed
    assert state.difference_size == size_at_failure
    assert not state.result().success


# ------------------------------------------------------------ misuse API


def _config(cells=40, q=4, seed=0, **kwargs):
    return IBLTConfig(cells=cells, q=q, key_bits=64, seed=seed, **kwargs)


class TestFeedCellsValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            PeelState(strategy="quantum")

    def test_count_mismatch(self):
        state = PeelState(_config())
        with pytest.raises(ConfigError, match="per index"):
            state.feed_cells([0, 1], [(0, 0, 0)])

    def test_index_out_of_range(self):
        state = PeelState(_config(cells=40))
        with pytest.raises(ConfigError, match="outside the declared space"):
            state.feed_cells([40], [(0, 0, 0)])

    def test_duplicate_index_in_one_feed(self):
        state = PeelState(_config())
        with pytest.raises(ConfigError, match="duplicate"):
            state.feed_cells([3, 3], [(0, 0, 0), (0, 0, 0)])

    def test_refeeding_a_cell_rejected(self):
        state = PeelState(_config())
        state.feed_cells([3], [(0, 0, 0)])
        with pytest.raises(ConfigError, match="already fed"):
            state.feed_cells([3], [(0, 0, 0)])

    def test_extended_segment_cells_cannot_be_fed(self):
        table = IBLT(_config())
        state = PeelState()
        state.extend(table)
        with pytest.raises(ConfigError, match="already fed"):
            state.feed_cells([0], [(0, 0, 0)])

    def test_mismatched_key_widths_rejected(self):
        state = PeelState(_config())
        with pytest.raises(ConfigError, match="key and checksum widths"):
            state.declare(
                IBLTConfig(cells=40, q=4, key_bits=32, seed=1)
            )
