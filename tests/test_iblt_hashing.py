"""Unit tests for the shared hashing layer."""

import pytest

from repro.iblt.hashing import (
    HashFamily,
    TabulationHash,
    checksum64,
    hash_with_salt,
    splitmix64,
    trailing_zeros,
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_fits_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(value) < 2**64

    def test_wide_inputs_folded(self):
        wide = (1 << 200) | 7
        assert 0 <= splitmix64(wide) < 2**64

    def test_wide_inputs_distinct_from_truncation(self):
        wide = (1 << 100) | 7
        assert splitmix64(wide) != splitmix64(7)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            splitmix64(-1)

    def test_negative_wide_input_rejected_before_folding(self):
        # The wide-fold path must never run on negative inputs: the sign
        # check fires first, however many 64-bit limbs the value spans.
        for wide in (-(1 << 64), -(1 << 100), -((1 << 200) | 7)):
            with pytest.raises(ValueError):
                splitmix64(wide)

    def test_avalanche_smoke(self):
        # Flipping one input bit should flip roughly half the output bits.
        a = splitmix64(0xDEADBEEF)
        b = splitmix64(0xDEADBEEF ^ 1)
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48


class TestSaltedHashes:
    def test_salt_changes_output(self):
        assert hash_with_salt(42, 1) != hash_with_salt(42, 2)

    def test_checksum_width(self):
        for width in (8, 16, 32, 64):
            assert checksum64(999, 7, width) < 2**width

    def test_checksum_bad_width_rejected(self):
        with pytest.raises(ValueError):
            checksum64(1, 0, 0)
        with pytest.raises(ValueError):
            checksum64(1, 0, 65)


class TestHashFamily:
    def test_indices_are_distinct_and_in_partitions(self):
        family = HashFamily(q=4, cells=64, seed=3)
        for key in range(200):
            indices = family.indices(key)
            assert len(set(indices)) == 4
            for i, index in enumerate(indices):
                assert i * 16 <= index < (i + 1) * 16

    def test_deterministic_across_instances(self):
        a = HashFamily(q=3, cells=30, seed=11)
        b = HashFamily(q=3, cells=30, seed=11)
        assert a == b
        assert a.indices(77) == b.indices(77)

    def test_seed_changes_indices(self):
        a = HashFamily(q=3, cells=30, seed=1)
        b = HashFamily(q=3, cells=30, seed=2)
        assert any(a.indices(key) != b.indices(key) for key in range(32))

    def test_validation(self):
        with pytest.raises(ValueError):
            HashFamily(q=1, cells=10, seed=0)
        with pytest.raises(ValueError):
            HashFamily(q=3, cells=10, seed=0)  # not divisible

    def test_repr_mentions_params(self):
        assert "q=4" in repr(HashFamily(q=4, cells=8, seed=0))


class TestTabulationHash:
    def test_deterministic_given_seed(self):
        a = TabulationHash(9)
        b = TabulationHash(9)
        assert all(a(v) == b(v) for v in (0, 1, 12345, 2**63))

    def test_seed_matters(self):
        a = TabulationHash(1)
        b = TabulationHash(2)
        assert any(a(v) != b(v) for v in range(16))

    def test_wide_input_folded(self):
        hasher = TabulationHash(5)
        assert 0 <= hasher(1 << 200) < 2**64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TabulationHash(5)(-1)

    def test_tables_are_immutable_tuples(self):
        # The tables are shared, hot state; tuples guard against accidental
        # mutation and pin the draw order (one getrandbits(64) per entry).
        tables = TabulationHash(3)._tables
        assert isinstance(tables, tuple) and len(tables) == 8
        assert all(isinstance(row, tuple) and len(row) == 256 for row in tables)

    def test_values_match_reference_draw_order(self):
        # Frozen contract: entry [i][j] is the (256*i + j)-th getrandbits(64)
        # of random.Random(seed) — strata wire bytes depend on it.
        import random as _random

        rng = _random.Random(9)
        expected_first_row = [rng.getrandbits(64) for _ in range(256)]
        assert list(TabulationHash(9)._tables[0]) == expected_first_row


class TestTrailingZeros:
    def test_basic(self):
        assert trailing_zeros(0b1000, 10) == 3
        assert trailing_zeros(0b1, 10) == 0
        assert trailing_zeros(0b110, 10) == 1

    def test_zero_hits_limit(self):
        assert trailing_zeros(0, 7) == 7

    def test_cap(self):
        assert trailing_zeros(1 << 30, 5) == 5

    def test_matches_shift_loop_reference(self):
        def reference(value, limit):
            if value == 0:
                return limit
            count = 0
            while count < limit and not value & 1:
                value >>= 1
                count += 1
            return count

        for value in list(range(0, 300)) + [1 << 40, (1 << 63) | (1 << 12), 2**70]:
            for limit in (0, 1, 5, 32, 64):
                assert trailing_zeros(value, limit) == reference(value, limit)
