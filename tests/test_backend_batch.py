"""Edge-case tests for the batch IBLT APIs (insert_many / delete_many).

Every case runs against all available backends: empty batches, duplicate
keys inside one batch, batches far larger than the table, generator inputs,
invalid keys, and occupancy overflow near ``CapacityExceeded``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.incremental import IncrementalSketch
from repro.core.sketch import level_iblt_config
from repro.errors import CapacityExceeded, ConfigError
from repro.iblt.backends import available_backends, get_backend, resolve_backend
from repro.iblt.decode import decode
from repro.iblt.table import IBLT, IBLTConfig

BACKENDS = available_backends()


def make_table(backend, cells=32, q=4, key_bits=64, seed=1):
    return IBLT(
        IBLTConfig(cells=cells, q=q, key_bits=key_bits, seed=seed), backend=backend
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchEdgeCases:
    def test_empty_batch_is_a_noop(self, backend):
        table = make_table(backend)
        table.insert_many([])
        table.delete_many([])
        table.insert_many(iter(()))
        assert table.is_empty()

    def test_duplicate_keys_in_one_batch(self, backend):
        """A batch with the same key twice equals two sequential inserts."""
        batch = make_table(backend)
        batch.insert_many([7, 7, 7, 9])
        sequential = make_table(backend)
        for key in (7, 7, 7, 9):
            sequential.insert(key)
        assert batch.to_bytes() == sequential.to_bytes()

    def test_batch_insert_then_batch_delete_is_empty(self, backend):
        keys = [k * 31 + 1 for k in range(100)]
        table = make_table(backend)
        table.insert_many(keys)
        table.delete_many(keys)
        assert table.is_empty()

    def test_batch_larger_than_table(self, backend):
        """Overfull tables stay well-formed; decode fails cleanly."""
        rng = random.Random(5)
        keys = [rng.getrandbits(64) for _ in range(500)]
        table = make_table(backend, cells=16)
        table.insert_many(keys)
        assert sum(table.cell(i)[0] for i in range(16)) == 500 * 4  # q cells per key
        result = decode(table)
        assert not result.success

    def test_generator_input(self, backend):
        table = make_table(backend)
        table.insert_many(key for key in range(50))
        other = make_table(backend)
        other.insert_many(list(range(50)))
        assert table.to_bytes() == other.to_bytes()

    def test_negative_key_in_batch_rejected(self, backend):
        table = make_table(backend)
        with pytest.raises(ValueError, match="non-negative"):
            table.insert_many([1, 2, -3])

    def test_oversized_key_in_batch_rejected(self, backend):
        table = make_table(backend, key_bits=16)
        with pytest.raises(ValueError, match="exceeds configured key width"):
            table.insert_many([1, 1 << 16])

    def test_mixed_inserts_and_batches_compose(self, backend):
        table = make_table(backend)
        table.insert(1)
        table.insert_many([2, 3])
        table.delete(2)
        table.delete_many([1, 3])
        assert table.is_empty()


@pytest.mark.parametrize("backend", BACKENDS)
class TestCapacityOverflow:
    def test_grid_batch_overflow_raises(self, backend):
        """The batch key pass hits the occupancy wall like the scalar one."""
        grid = ShiftedGridHierarchy(256, 1, seed=1, occupancy_bits=1)
        points = [(9,)] * 3  # occupancy field holds 2 co-located points
        with pytest.raises(CapacityExceeded, match="share a level-0 cell"):
            grid.level_keys(points, (0,))

    def test_grid_batch_at_capacity_succeeds(self, backend):
        grid = ShiftedGridHierarchy(256, 1, seed=1, occupancy_bits=1)
        keys = grid.level_keys([(9,), (9,)], (0,))[0]
        assert len(set(keys)) == 2  # distinct occurrence ranks

    def test_incremental_overflow_raises(self, backend):
        config = ProtocolConfig(
            delta=256, dimension=1, k=2, seed=3, occupancy_bits=1, backend=backend
        )
        sketch = IncrementalSketch(config)
        sketch.insert((10,))
        sketch.insert((10,))
        with pytest.raises(CapacityExceeded, match="occupancy field"):
            sketch.insert((10,))

    def test_incremental_bulk_overflow_raises(self, backend):
        config = ProtocolConfig(
            delta=256, dimension=1, k=2, seed=3, occupancy_bits=1, backend=backend
        )
        with pytest.raises(CapacityExceeded):
            IncrementalSketch(config).insert_all([(10,)] * 3)

    def test_incremental_insert_is_atomic_on_overflow(self, backend):
        """Regression: a mid-hierarchy overflow must not corrupt the sketch.

        (0,), (1,), (2,) occupy distinct level-0 cells but share the single
        coarse cell, so the third insert fails only at the coarse level —
        it must leave every level's table untouched.
        """
        config = ProtocolConfig(
            delta=4, dimension=1, k=1, seed=0, occupancy_bits=1,
            random_shift=False, backend=backend,
        )
        sketch = IncrementalSketch(config)
        sketch.insert((0,))
        sketch.insert((1,))
        before = sketch.encode()
        with pytest.raises(CapacityExceeded):
            sketch.insert((2,))
        assert sketch.n_points == 2
        assert sketch.encode() == before


class TestVectorizedGridFallback:
    """Regression: grids too wide for int64 must use the pure key path."""

    def test_huge_grid_falls_back(self):
        grid = ShiftedGridHierarchy((1 << 62) + 1, 1, seed=3, occupancy_bits=4)
        assert grid.max_level == 63
        assert grid._level_keys_vectorized([(5,)], (grid.max_level,)) is None

    def test_huge_grid_keys_are_consistent(self):
        # Near-2^63 shifts overflowed int64 in the vectorized pass before
        # the max_level guard; both points and keys must stay non-negative.
        grid = ShiftedGridHierarchy(
            (1 << 62) + 1, 1, seed=3, occupancy_bits=4, shift=((1 << 63) - 5,)
        )
        keys = grid.level_keys([((1 << 62),), (17,)], (grid.max_level,))
        assert all(key >= 0 for key in keys[grid.max_level])
        assert keys == grid.level_keys(
            [((1 << 62),), (17,)], (grid.max_level,)
        )


class TestSizingValidation:
    """Regression: non-positive cell counts fail fast with ConfigError."""

    def setup_method(self):
        self.config = ProtocolConfig(delta=1024, dimension=2, k=4, seed=5)
        self.grid = ShiftedGridHierarchy(1024, 2, 5)

    @pytest.mark.parametrize("cells", [0, -4, -1])
    def test_level_iblt_config_rejects_non_positive_cells(self, cells):
        with pytest.raises(ConfigError, match="positive cell count"):
            level_iblt_config(self.config, self.grid, 2, cells)

    def test_level_iblt_config_accepts_positive_cells(self):
        assert level_iblt_config(self.config, self.grid, 2, 8).cells == 8

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_iblt_config_rejects_non_positive_cells(self, backend):
        with pytest.raises(ConfigError):
            IBLT(IBLTConfig(cells=0, q=4), backend=backend)
        with pytest.raises(ConfigError):
            IBLT(IBLTConfig(cells=-8, q=4), backend=backend)


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown IBLT backend"):
            get_backend("fpga")
        with pytest.raises(ConfigError, match="unknown IBLT backend"):
            ProtocolConfig(delta=256, dimension=1, k=2, backend="fpga")

    def test_auto_resolves_for_every_shape(self):
        wide = IBLTConfig(cells=16, q=4, key_bits=200)
        assert resolve_backend("auto", wide).name == "pure"
        narrow = IBLTConfig(cells=16, q=4, key_bits=64)
        assert resolve_backend(None, narrow).name in BACKENDS

    @pytest.mark.skipif("numpy" not in BACKENDS, reason="numpy unavailable")
    def test_explicit_numpy_rejects_wide_keys(self):
        wide = IBLTConfig(cells=16, q=4, key_bits=200)
        with pytest.raises(ConfigError, match="does not support"):
            resolve_backend("numpy", wide)
