"""Fixture self-tests for every repro-lint rule.

Each rule gets at least one minimal *bad* fixture proving it fires and a
*corrected* twin proving it stays silent — the linter's own differential
suite.  Fixtures are synthetic package trees written under ``tmp_path``;
scope-sensitive rules get their files placed under the protected paths
(``session/``, ``core/``, ``scale/``, ...).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.iblt.backends.base import Backend
from repro.iblt.backends.pure import PureBackend
from repro.lint import run_lint


def write_tree(root, files: dict[str, str]):
    """Materialise ``{relpath: source}`` as a package tree and return root."""
    root.mkdir(parents=True, exist_ok=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(root).parents:
            if str(parent) != ".":
                init = root / parent / "__init__.py"
                if not init.exists():
                    init.write_text("", encoding="utf-8")
        path.write_text(source, encoding="utf-8")
    return root


def codes_of(report):
    return sorted({finding.code for finding in report.findings})


def lint_files(tmp_path, files, select=None, registry=None):
    root = write_tree(tmp_path / "pkg", files)
    return run_lint(root, select=select, registry=registry)


# --------------------------------------------------------------- RPL001


class TestSansIOPurity:
    def test_fires_on_asyncio_import_in_session(self, tmp_path):
        report = lint_files(
            tmp_path,
            {"session/machine.py": "import asyncio\n"},
            select={"RPL001"},
        )
        assert codes_of(report) == ["RPL001"]
        assert "asyncio" in report.findings[0].message

    def test_fires_on_time_import_in_codec(self, tmp_path):
        report = lint_files(
            tmp_path,
            {"net/codec.py": "from time import monotonic\n"},
            select={"RPL001"},
        )
        assert codes_of(report) == ["RPL001"]

    def test_silent_on_corrected_module(self, tmp_path):
        report = lint_files(
            tmp_path,
            {"session/machine.py": "from collections import deque\n"},
            select={"RPL001"},
        )
        assert report.findings == []

    def test_silent_outside_protected_scope(self, tmp_path):
        # The transport layer is allowed to import asyncio.
        report = lint_files(
            tmp_path,
            {"serve/service.py": "import asyncio\nimport time\n"},
            select={"RPL001"},
        )
        assert report.findings == []


# --------------------------------------------------------------- RPL002


BAD_NUMPY = "import numpy as _np\n"
GOOD_NUMPY = (
    "try:\n"
    "    import numpy as _np\n"
    "except ImportError:\n"
    "    _np = None\n"
)


class TestNumpyOptional:
    def test_fires_on_unguarded_import(self, tmp_path):
        report = lint_files(
            tmp_path, {"emd/extra.py": BAD_NUMPY}, select={"RPL002"}
        )
        assert codes_of(report) == ["RPL002"]
        assert "unguarded" in report.findings[0].message

    def test_fires_on_from_numpy_import(self, tmp_path):
        report = lint_files(
            tmp_path,
            {"emd/extra.py": "from numpy import packbits\n"},
            select={"RPL002"},
        )
        assert codes_of(report) == ["RPL002"]

    def test_fires_when_fallback_sentinel_missing(self, tmp_path):
        source = (
            "try:\n"
            "    import numpy as _np\n"
            "except ImportError:\n"
            "    pass\n"
        )
        report = lint_files(
            tmp_path, {"emd/extra.py": source}, select={"RPL002"}
        )
        assert codes_of(report) == ["RPL002"]
        assert "pure fallback" in report.findings[0].message

    def test_silent_on_guarded_import_with_fallback(self, tmp_path):
        report = lint_files(
            tmp_path, {"emd/extra.py": GOOD_NUMPY}, select={"RPL002"}
        )
        assert report.findings == []


# --------------------------------------------------------------- RPL003


class TestTypedErrors:
    def test_fires_on_bare_value_error(self, tmp_path):
        source = (
            "def f(x):\n"
            "    if x < 0:\n"
            "        raise ValueError('negative')\n"
        )
        report = lint_files(
            tmp_path, {"iblt/check.py": source}, select={"RPL003"}
        )
        assert codes_of(report) == ["RPL003"]

    def test_fires_on_project_exception_outside_hierarchy(self, tmp_path):
        source = (
            "class RogueError(RuntimeError):\n"
            "    pass\n"
            "def f():\n"
            "    raise RogueError('x')\n"
        )
        report = lint_files(
            tmp_path, {"iblt/check.py": source}, select={"RPL003"}
        )
        assert codes_of(report) == ["RPL003"]
        assert "RogueError" in report.findings[0].message

    def test_silent_on_typed_error(self, tmp_path):
        files = {
            "errors.py": (
                "class ReproError(Exception):\n"
                "    pass\n"
                "class ConfigError(ReproError, ValueError):\n"
                "    pass\n"
            ),
            "iblt/check.py": (
                "from pkg.errors import ConfigError\n"
                "def f(x):\n"
                "    if x < 0:\n"
                "        raise ConfigError('negative')\n"
            ),
        }
        report = lint_files(tmp_path, files, select={"RPL003"})
        assert report.findings == []

    def test_silent_on_bare_reraise_and_unresolvable(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception as exc:\n"
            "        raise\n"
            "def h(exc):\n"
            "    raise exc\n"
        )
        report = lint_files(
            tmp_path, {"iblt/check.py": source}, select={"RPL003"}
        )
        assert report.findings == []


# --------------------------------------------------------------- RPL004


class TestDeterminism:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nx = random.random()\n",
            "import random\nrandom.seed(4)\n",
            "import random\nrng = random.SystemRandom()\n",
            "from random import randint\n",
            "import os\nx = os.urandom(8)\n",
            "import secrets\n",
        ],
    )
    def test_fires_on_ambient_entropy(self, tmp_path, snippet):
        report = lint_files(
            tmp_path, {"core/coins.py": snippet}, select={"RPL004"}
        )
        assert "RPL004" in codes_of(report)

    def test_fires_on_clock_read_in_scale(self, tmp_path):
        # scale/ is protocol code for RPL004 even though RPL001 skips it.
        report = lint_files(
            tmp_path,
            {"scale/timing.py": "import time\nt = time.perf_counter()\n"},
            select={"RPL004"},
        )
        assert "RPL004" in codes_of(report)

    def test_silent_on_seeded_public_coins(self, tmp_path):
        source = (
            "import random\n"
            "def draw(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.getrandbits(64)\n"
        )
        report = lint_files(
            tmp_path, {"core/coins.py": source}, select={"RPL004"}
        )
        assert report.findings == []

    def test_silent_outside_protocol_scope(self, tmp_path):
        report = lint_files(
            tmp_path,
            {"workloads/gen.py": "import random\nx = random.random()\n"},
            select={"RPL004"},
        )
        assert report.findings == []


# --------------------------------------------------------------- RPL005


class TestWireMagicUniqueness:
    def test_fires_on_retyped_literal(self, tmp_path):
        files = {
            "core/wire.py": "FRAME_MAGIC = 0xC7\n",
            "core/parse.py": (
                "def check(byte):\n"
                "    return byte == 0xC7\n"
            ),
        }
        report = lint_files(tmp_path, files, select={"RPL005"})
        assert codes_of(report) == ["RPL005"]
        assert "FRAME_MAGIC" in report.findings[0].message

    def test_fires_on_duplicate_definition(self, tmp_path):
        files = {
            "core/wire.py": "FRAME_MAGIC = 0xC7\n",
            "scale/wire.py": "OTHER_MAGIC = 0xC7\n",
        }
        report = lint_files(tmp_path, files, select={"RPL005"})
        assert codes_of(report) == ["RPL005"]
        assert "defined again" in report.findings[0].message

    def test_silent_when_imported_by_name(self, tmp_path):
        files = {
            "core/wire.py": "FRAME_MAGIC = 0xC7\n",
            "core/parse.py": (
                "from pkg.core.wire import FRAME_MAGIC\n"
                "def check(byte):\n"
                "    return byte == FRAME_MAGIC\n"
            ),
        }
        report = lint_files(tmp_path, files, select={"RPL005"})
        assert report.findings == []

    def test_decimal_coincidence_not_flagged(self, tmp_path):
        # 199 == 0xC7 but written in decimal it is an unrelated constant.
        files = {
            "core/wire.py": "FRAME_MAGIC = 0xC7\n",
            "core/sizes.py": "LIMIT = 199\n",
        }
        report = lint_files(tmp_path, files, select={"RPL005"})
        assert report.findings == []


# --------------------------------------------------------------- RPL006


class IncompleteBackend(Backend):
    """Misses every abstract primitive."""

    name = "lint-incomplete"


class WrongSignatureBackend(PureBackend):
    """Renames a contract parameter."""

    name = "lint-wrong-signature"

    def apply(self, item, delta):  # 'item' should be 'key'
        return super().apply(item, delta)


class ExtraRequiredParamBackend(PureBackend):
    name = "lint-extra-param"

    def gather_cells(self, indices, extra):  # extra has no default
        return super().gather_cells(indices)


class CompatibleBackend(PureBackend):
    """Extends the contract compatibly: extra defaulted parameter."""

    name = "lint-compatible"

    def gather_cells(self, indices, validate=False):
        return super().gather_cells(indices)


class TestBackendContract:
    def lint_with(self, tmp_path, registry):
        return lint_files(
            tmp_path,
            {"iblt/backends/base.py": "class Backend:\n    pass\n"},
            select={"RPL006"},
            registry=registry,
        )

    def test_fires_on_unimplemented_abstracts(self, tmp_path):
        report = self.lint_with(tmp_path, {"bad": IncompleteBackend})
        assert "RPL006" in codes_of(report)
        assert any(
            "abstract primitives left unimplemented" in finding.message
            for finding in report.findings
        )

    def test_fires_on_renamed_parameter(self, tmp_path):
        report = self.lint_with(tmp_path, {"bad": WrongSignatureBackend})
        assert any(
            "apply() signature incompatible" in finding.message
            for finding in report.findings
        )

    def test_fires_on_extra_required_parameter(self, tmp_path):
        report = self.lint_with(tmp_path, {"bad": ExtraRequiredParamBackend})
        assert any(
            "gather_cells() signature incompatible" in finding.message
            for finding in report.findings
        )

    def test_silent_on_reference_and_compatible_backends(self, tmp_path):
        report = self.lint_with(
            tmp_path, {"pure": PureBackend, "ok": CompatibleBackend}
        )
        assert report.findings == []

    def test_real_registry_is_clean(self, tmp_path):
        from repro.iblt.backends import registered_backends

        report = self.lint_with(tmp_path, registered_backends())
        assert report.findings == []

    def test_skips_live_inspection_on_foreign_trees(self, tmp_path):
        # No registry injected + fixture root => the rule must not attribute
        # real-registry classes to a tree they are not part of.
        report = lint_files(
            tmp_path, {"iblt/mod.py": "x = 1\n"}, select={"RPL006"}
        )
        assert report.findings == []


# --------------------------------------------------------------- RPL007


class TestExecutorSafety:
    def test_fires_on_global_declaration(self, tmp_path):
        source = (
            "COUNTER = 0\n"
            "def task(args):\n"
            "    global COUNTER\n"
            "    COUNTER += 1\n"
            "    return args\n"
            "def run(executor, tasks):\n"
            "    return executor.map(task, tasks)\n"
        )
        report = lint_files(
            tmp_path, {"scale/engine.py": source}, select={"RPL007"}
        )
        assert "RPL007" in codes_of(report)

    def test_fires_on_mutating_module_global(self, tmp_path):
        source = (
            "RESULTS = []\n"
            "CACHE = {}\n"
            "def task(args):\n"
            "    RESULTS.append(args)\n"
            "    CACHE[args] = 1\n"
            "    return args\n"
            "def run(executor, tasks):\n"
            "    return executor.map(task, tasks)\n"
        )
        report = lint_files(
            tmp_path, {"scale/engine.py": source}, select={"RPL007"}
        )
        messages = [finding.message for finding in report.findings]
        assert any(".append()" in message for message in messages)
        assert any("writes through non-local name 'CACHE'" in m for m in messages)

    def test_fires_on_submitted_lambda_closure_mutation(self, tmp_path):
        source = (
            "def run(executor, tasks):\n"
            "    seen = []\n"
            "    return executor.submit(lambda t: seen.append(t), tasks)\n"
        )
        report = lint_files(
            tmp_path, {"scale/engine.py": source}, select={"RPL007"}
        )
        assert "RPL007" in codes_of(report)

    def test_silent_on_pure_task(self, tmp_path):
        source = (
            "LIMIT = 4\n"
            "def task(args):\n"
            "    config, points = args\n"
            "    out = []\n"
            "    for point in points:\n"
            "        out.append((config, point, LIMIT))\n"
            "    return out\n"
            "def run(executor, tasks):\n"
            "    return executor.map(task, tasks)\n"
        )
        report = lint_files(
            tmp_path, {"scale/engine.py": source}, select={"RPL007"}
        )
        assert report.findings == []

    def test_unsubmitted_function_not_analysed(self, tmp_path):
        source = (
            "RESULTS = []\n"
            "def helper(x):\n"
            "    RESULTS.append(x)\n"  # never submitted to an executor
        )
        report = lint_files(
            tmp_path, {"scale/engine.py": source}, select={"RPL007"}
        )
        assert report.findings == []

    def test_real_engine_tasks_are_safe(self):
        import repro

        from pathlib import Path

        report = run_lint(
            Path(repro.__file__).parent, select={"RPL007"}
        )
        assert report.findings == []


# --------------------------------------------------------------- RPL008


class TestStoreWriteDiscipline:
    def test_fires_on_bare_open_in_store(self, tmp_path):
        source = (
            "def save(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(payload)\n"
        )
        report = lint_files(
            tmp_path, {"store/sidecar.py": source}, select={"RPL008"}
        )
        assert codes_of(report) == ["RPL008"]
        assert "storage backend" in report.findings[0].message

    def test_fires_on_os_file_op_outside_seam(self, tmp_path):
        source = (
            "import os\n"
            "def rotate(a, b):\n"
            "    os.replace(a, b)\n"
            "def drop(path):\n"
            "    os.unlink(path)\n"
        )
        report = lint_files(
            tmp_path, {"store/wal.py": source}, select={"RPL008"}
        )
        assert codes_of(report) == ["RPL008"]
        assert len(report.findings) == 2

    def test_fires_on_shutil_in_store(self, tmp_path):
        source = (
            "import shutil\n"
            "def clone(src, dst):\n"
            "    shutil.copyfile(src, dst)\n"
        )
        report = lint_files(
            tmp_path, {"store/snapshot.py": source}, select={"RPL008"}
        )
        assert codes_of(report) == ["RPL008"]

    def test_fires_on_replace_outside_publish_in_seam(self, tmp_path):
        source = (
            "import os\n"
            "class Backend:\n"
            "    def publish(self, tmp, final):\n"
            "        os.replace(tmp, final)\n"
            "    def sneaky(self, tmp, final):\n"
            "        os.rename(tmp, final)\n"
        )
        report = lint_files(
            tmp_path, {"store/storage.py": source}, select={"RPL008"}
        )
        assert codes_of(report) == ["RPL008"]
        assert len(report.findings) == 1
        assert "publish" in report.findings[0].message
        assert report.findings[0].line == 6

    def test_silent_on_seam_module_discipline(self, tmp_path):
        source = (
            "import os\n"
            "class Backend:\n"
            "    def read(self, path):\n"
            "        with open(path, 'rb') as handle:\n"
            "            return handle.read()\n"
            "    def fsync(self, path):\n"
            "        with open(path, 'rb') as handle:\n"
            "            os.fsync(handle.fileno())\n"
            "    def publish(self, tmp, final):\n"
            "        os.replace(tmp, final)\n"
        )
        report = lint_files(
            tmp_path, {"store/storage.py": source}, select={"RPL008"}
        )
        assert report.findings == []

    def test_silent_outside_store_scope(self, tmp_path):
        source = (
            "import os\n"
            "def rotate(a, b):\n"
            "    os.replace(a, b)\n"
        )
        report = lint_files(
            tmp_path, {"workloads/io.py": source}, select={"RPL008"}
        )
        assert report.findings == []

    def test_real_store_package_is_clean(self):
        from pathlib import Path

        import repro

        report = run_lint(
            Path(repro.__file__).parent, select={"RPL008"}
        )
        assert report.findings == []


# ------------------------------------------------------------- waivers


class TestWaiverEngine:
    def test_inline_waiver_suppresses_finding(self, tmp_path):
        source = (
            "def f():\n"
            "    raise ValueError('x')"
            "  # repro-lint: waive[RPL003] reason=fixture exception\n"
        )
        report = lint_files(
            tmp_path, {"iblt/mod.py": source}, select={"RPL003"}
        )
        assert report.findings == []
        assert report.waivers_used == 1

    def test_standalone_waiver_targets_next_code_line(self, tmp_path):
        source = (
            "def f():\n"
            "    # repro-lint: waive[RPL003] reason=fixture exception\n"
            "    # an unrelated comment between waiver and target is fine\n"
            "    raise ValueError('x')\n"
        )
        report = lint_files(
            tmp_path, {"iblt/mod.py": source}, select={"RPL003"}
        )
        assert report.findings == []
        assert report.waivers_used == 1

    def test_waiver_without_reason_is_a_finding(self, tmp_path):
        source = (
            "def f():\n"
            "    raise ValueError('x')  # repro-lint: waive[RPL003]\n"
        )
        report = lint_files(
            tmp_path, {"iblt/mod.py": source}, select={"RPL003"}
        )
        codes = codes_of(report)
        # The reasonless waiver does not suppress, and is itself reported.
        assert codes == ["RPL003", "RPL900"]
        assert any("no reason" in f.message for f in report.findings)

    def test_empty_reason_is_a_finding(self, tmp_path):
        source = (
            "def f():\n"
            "    raise ValueError('x')  # repro-lint: waive[RPL003] reason=\n"
        )
        report = lint_files(
            tmp_path, {"iblt/mod.py": source}, select={"RPL003"}
        )
        assert "RPL900" in codes_of(report)

    def test_unknown_code_is_a_finding(self, tmp_path):
        source = "x = 1  # repro-lint: waive[RPL999] reason=no such rule\n"
        report = lint_files(tmp_path, {"iblt/mod.py": source})
        assert codes_of(report) == ["RPL900"]
        assert "unknown rule code" in report.findings[0].message

    def test_unparsable_waiver_is_a_finding(self, tmp_path):
        source = "x = 1  # repro-lint: please ignore this line\n"
        report = lint_files(tmp_path, {"iblt/mod.py": source})
        assert codes_of(report) == ["RPL900"]

    def test_stale_waiver_is_a_finding(self, tmp_path):
        source = (
            "def f():\n"
            "    return 1  # repro-lint: waive[RPL003] reason=nothing here\n"
        )
        report = lint_files(
            tmp_path, {"iblt/mod.py": source}, select={"RPL003"}
        )
        assert codes_of(report) == ["RPL901"]
        assert "stale waiver" in report.findings[0].message

    def test_waiver_only_covers_its_own_code(self, tmp_path):
        source = (
            "def f():\n"
            "    raise ValueError('x')"
            "  # repro-lint: waive[RPL001] reason=wrong rule code\n"
        )
        report = lint_files(
            tmp_path, {"iblt/mod.py": source}, select={"RPL001", "RPL003"}
        )
        codes = codes_of(report)
        assert "RPL003" in codes  # finding survives
        assert "RPL901" in codes  # and the mismatched waiver is stale

    def test_deselected_rule_waivers_not_reported_stale(self, tmp_path):
        source = (
            "def f():\n"
            "    raise ValueError('x')"
            "  # repro-lint: waive[RPL003] reason=fixture exception\n"
        )
        # RPL003 never ran, so its waiver must be left alone.
        report = lint_files(
            tmp_path, {"iblt/mod.py": source}, select={"RPL001"}
        )
        assert report.findings == []

    def test_waiver_marker_inside_string_is_ignored(self, tmp_path):
        source = 'TEXT = "# repro-lint: waive[RPL003] reason=not a comment"\n'
        report = lint_files(tmp_path, {"iblt/mod.py": source})
        assert report.findings == []


# ------------------------------------------------------------- engine


class TestEngine:
    def test_unknown_select_code_raises_config_error(self, tmp_path):
        root = write_tree(tmp_path / "pkg", {"mod.py": "x = 1\n"})
        with pytest.raises(ConfigError):
            run_lint(root, select={"RPL777"})

    def test_missing_root_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            run_lint(tmp_path / "nope")

    def test_unparsable_file_is_a_finding_not_a_crash(self, tmp_path):
        report = lint_files(tmp_path, {"iblt/broken.py": "def f(:\n"})
        assert codes_of(report) == ["RPL902"]

    def test_src_style_root_resolves_to_package(self, tmp_path):
        outer = tmp_path / "src"
        write_tree(outer / "repro", {"session/m.py": "import asyncio\n"})
        report = run_lint(outer, select={"RPL001"})
        assert codes_of(report) == ["RPL001"]
        # relpaths are package-relative, so scopes matched under src/.
        assert report.findings[0].path == "session/m.py"
