"""Unit tests for the analytic bound formulas."""

import random

import pytest

from repro.core.bounds import (
    approximation_factor,
    expected_split_pairs,
    lower_bound_bits,
    one_round_bits_estimate,
    predicted_emd_bound,
    target_level,
    universe_bits,
)
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.errors import ConfigError


class TestUniverseAndLowerBound:
    def test_universe_bits(self):
        assert universe_bits(1024, 1) == 10
        assert universe_bits(1024, 3) == 30
        assert universe_bits(1000, 1) == 10  # rounds up

    def test_lower_bound_linear_in_k(self):
        assert lower_bound_bits(8, 1024, 2) == 8 * 20
        assert lower_bound_bits(16, 1024, 2) == 2 * lower_bound_bits(8, 1024, 2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            universe_bits(1, 1)
        with pytest.raises(ConfigError):
            lower_bound_bits(0, 16, 1)


class TestSplitAndTargetLevel:
    def test_split_pairs_halve_per_level(self):
        assert expected_split_pairs(100.0, 0) == 100.0
        assert expected_split_pairs(100.0, 1) == 50.0
        assert expected_split_pairs(100.0, 5) == pytest.approx(3.125)

    def test_validation(self):
        with pytest.raises(ConfigError):
            expected_split_pairs(-1.0, 0)
        with pytest.raises(ConfigError):
            expected_split_pairs(1.0, -1)

    def test_target_level_scaling(self):
        assert target_level(0.0, 4) == 0
        assert target_level(4.0, 4) == 0
        assert target_level(8.0, 4) == 1
        assert target_level(4096.0, 4) == 10

    def test_target_level_monotone_in_emd(self):
        levels = [target_level(float(2**i), 4) for i in range(1, 14)]
        assert levels == sorted(levels)


class TestPredictedBound:
    def test_zero_emd_zero_bound(self):
        assert predicted_emd_bound(0.0, 4, 2) == 0.0

    def test_bound_grows_linearly_in_dimension(self):
        low = approximation_factor(1)
        high = approximation_factor(8)
        assert high / low > 4  # linear growth dominates the +1

    def test_bound_dominates_emd_k(self):
        assert predicted_emd_bound(100.0, 4, 2) >= 100.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            predicted_emd_bound(1.0, 4, 0)
        with pytest.raises(ConfigError):
            approximation_factor(0)


class TestCommunicationEstimate:
    def test_estimate_tracks_measured_payload(self):
        """The analytic formula should be within ~25% of the real sketch."""
        config = ProtocolConfig(delta=4096, dimension=2, k=4, seed=3)
        reconciler = HierarchicalReconciler(config)
        rng = random.Random(3)
        points = [(rng.randrange(4096), rng.randrange(4096)) for _ in range(200)]
        measured = 8 * len(reconciler.encode(points))
        predicted = one_round_bits_estimate(config)
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_estimate_scales_with_levels(self):
        full = one_round_bits_estimate(ProtocolConfig(delta=2**16, dimension=1, k=4))
        short = one_round_bits_estimate(ProtocolConfig(delta=2**8, dimension=1, k=4))
        assert full > short * 1.5

    def test_estimate_above_lower_bound(self):
        """The one-round protocol pays a log-delta factor over the bound."""
        config = ProtocolConfig(delta=2**16, dimension=2, k=8)
        upper = one_round_bits_estimate(config)
        lower = lower_bound_bits(config.k, config.delta, config.dimension)
        assert upper > lower
