"""Transport differential: simulation vs asyncio loopback vs real TCP.

Acceptance contract of the sans-I/O refactor: for every protocol variant,
a simulated-channel run, an in-process asyncio loopback run, and a
loopback-TCP run must produce (a) **equal repaired multisets** and (b)
**equal payload bytes per message**, in the same order with the same
labels.  The transports may only move bytes — never shape them.

The multi-worker leg extends the same contract across processes: a
pre-fork :class:`~repro.serve.pool.WorkerPoolServer` with four workers
must ship byte-identical payloads and repair the same multisets as the
single-process server, whichever worker the kernel picks, and every
worker must answer the handshake with the same config digest.
"""

import asyncio

import pytest

from repro.core.adaptive import reconcile_adaptive
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.core.rateless import reconcile_rateless
from repro.net.channel import LoopbackChannel, SimulatedChannel
from repro.scale.engine import reconcile_sharded
from repro.scale.executors import fork_available
from repro.serve import ReconciliationServer, WorkerPoolServer, sync
from repro.session import make_session, run_async
from repro.workloads.synthetic import perturbed_pair

DELTA = 4096

#: (variant, config kwargs, simulated-channel runner)
VARIANTS = [
    ("one-round", {}, reconcile),
    ("adaptive", {}, reconcile_adaptive),
    ("sharded", {"shards": 2}, reconcile_sharded),
    ("rateless", {}, reconcile_rateless),
]


def _setup(variant_kwargs, seed):
    workload = perturbed_pair(seed, 90, DELTA, 2, 4, 2)
    config = ProtocolConfig(
        delta=DELTA, dimension=2, k=10, seed=seed, **variant_kwargs
    )
    return workload, config


def _message_triples(channel):
    return [
        (m.direction, m.label, m.payload) for m in channel.messages
    ]


@pytest.mark.parametrize("variant,kwargs,runner", VARIANTS,
                         ids=[v for v, _, _ in VARIANTS])
class TestTransportDifferential:
    def test_tcp_equals_simulated(self, variant, kwargs, runner):
        workload, config = _setup(kwargs, seed=11)
        simulated_channel = SimulatedChannel()
        simulated = runner(
            workload.alice, workload.bob, config, channel=simulated_channel
        )

        async def over_tcp():
            tcp_channel = SimulatedChannel()
            async with ReconciliationServer(config, workload.alice) as server:
                host, port = server.address
                result = await sync(
                    host, port, config, workload.bob,
                    variant=variant, channel=tcp_channel, timeout=10,
                )
            return result, tcp_channel

        result, tcp_channel = asyncio.run(over_tcp())
        # (a) equal repaired multisets.
        assert sorted(result.repaired) == sorted(simulated.repaired)
        # (b) equal payload bytes per message, same order/direction/label.
        assert _message_triples(tcp_channel) == _message_triples(
            simulated_channel
        )
        assert result.transcript == simulated.transcript

    def test_loopback_asyncio_equals_simulated(self, variant, kwargs, runner):
        workload, config = _setup(kwargs, seed=12)
        simulated_channel = SimulatedChannel()
        simulated = runner(
            workload.alice, workload.bob, config, channel=simulated_channel
        )

        async def over_loopback():
            channel = LoopbackChannel()
            with make_session(variant, "alice", config, workload.alice) as alice, \
                    make_session(variant, "bob", config, workload.bob) as bob:
                _, result = await asyncio.gather(
                    run_async(alice, channel), run_async(bob, channel)
                )
            return result, channel

        result, loopback_channel = asyncio.run(over_loopback())
        assert sorted(result.repaired) == sorted(simulated.repaired)
        assert _message_triples(loopback_channel) == _message_triples(
            simulated_channel
        )


class TestServerReuse:
    def test_one_server_many_variants_and_clients(self):
        """One server instance serves every variant, sequentially and
        concurrently, with per-session stats for each."""
        workload, config = _setup({"shards": 2}, seed=13)
        expected = {
            variant: runner(workload.alice, workload.bob,
                            ProtocolConfig(delta=DELTA, dimension=2, k=10,
                                           seed=13, **kw))
            for variant, kw, runner in VARIANTS
        }

        async def scenario():
            async with ReconciliationServer(config, workload.alice) as server:
                host, port = server.address
                results = await asyncio.gather(*[
                    sync(host, port, config, workload.bob,
                         variant=variant, timeout=10)
                    for variant, _, _ in VARIANTS
                ])
                return server, dict(zip([v for v, _, _ in VARIANTS], results))

        server, results = asyncio.run(scenario())
        for variant, result in results.items():
            assert sorted(result.repaired) == sorted(
                expected[variant].repaired
            ), variant
        summary = server.summary()
        assert summary["sessions"] == 4
        assert summary["ok"] == 4
        assert {s.variant for s in server.stats} == {
            "one-round", "adaptive", "sharded", "rateless",
        }
        for stats in server.stats:
            assert stats.transcript is not None
            assert stats.duration_s > 0
            assert stats.to_dict()["transcript"]["total_bits"] > 0

    def test_concurrency_bounded_by_semaphore(self):
        """max_sessions=1 still serves every client (queued, not dropped)."""
        workload, config = _setup({}, seed=14)

        async def scenario():
            async with ReconciliationServer(
                config, workload.alice, max_sessions=1
            ) as server:
                host, port = server.address
                results = await asyncio.gather(*[
                    sync(host, port, config, workload.bob, timeout=10)
                    for _ in range(5)
                ])
                return server, results

        server, results = asyncio.run(scenario())
        assert len(results) == 5
        assert server.summary()["ok"] == 5
        first = sorted(results[0].repaired)
        assert all(sorted(r.repaired) == first for r in results)


@pytest.mark.skipif(
    not fork_available(), reason="worker pool requires the fork start method"
)
class TestMultiWorkerDifferential:
    """workers=1 vs workers=4: same repairs, same bytes, same digests."""

    @pytest.mark.parametrize("variant,kwargs,runner", VARIANTS,
                             ids=[v for v, _, _ in VARIANTS])
    def test_pool_equals_single_process(self, variant, kwargs, runner):
        workload, config = _setup(kwargs, seed=15)

        async def one_worker():
            channel = SimulatedChannel()
            async with ReconciliationServer(config, workload.alice) as server:
                result = await sync(
                    *server.address, config, workload.bob,
                    variant=variant, channel=channel, timeout=10,
                )
            return result, channel

        async def four_workers():
            channel = SimulatedChannel()
            async with WorkerPoolServer(
                config, workload.alice, workers=4
            ) as pool:
                result = await sync(
                    *pool.address, config, workload.bob,
                    variant=variant, channel=channel, timeout=10,
                )
            return result, channel

        single, single_channel = asyncio.run(one_worker())
        pooled, pooled_channel = asyncio.run(four_workers())
        assert sorted(pooled.repaired) == sorted(single.repaired)
        assert _message_triples(pooled_channel) == _message_triples(
            single_channel
        )
        assert pooled.transcript == single.transcript

    def test_every_worker_ships_identical_bytes_and_digest(self):
        """Concurrent clients land on several workers; all must receive
        byte-identical payload sequences, and the pool's handshake
        digests must equal the single-process server's for every
        variant (each successful sync re-verifies its digest on the
        wire)."""
        workload, config = _setup({}, seed=16)

        async def scenario():
            async with WorkerPoolServer(
                config, workload.alice, workers=4
            ) as pool:
                single = ReconciliationServer(config, workload.alice)
                for variant, _, _ in VARIANTS:
                    assert pool.digest(variant) == single.digest(variant)
                await single.close()
                channels = [SimulatedChannel() for _ in range(12)]
                results = await asyncio.gather(*[
                    sync(*pool.address, config, workload.bob,
                         variant="one-round", channel=channel, timeout=10)
                    for channel in channels
                ])
                await pool.wait_for_sessions(12)
                return pool.summary(), results, channels

        summary, results, channels = asyncio.run(scenario())
        assert summary["ok"] == 12
        served_by = {r.served_by for r in results}
        assert len(served_by) >= 2, f"all sessions on one worker: {served_by}"
        reference = _message_triples(channels[0])
        for channel in channels[1:]:
            assert _message_triples(channel) == reference
        first = sorted(results[0].repaired)
        assert all(sorted(r.repaired) == first for r in results)

    @pytest.mark.parametrize("offload", ["thread", "process"])
    def test_offload_is_byte_invisible(self, offload):
        """Off-loop session compute may not change a single payload
        byte relative to the inline server, for the offload-sensitive
        variants (adaptive and rateless both route compute through the
        hooks under offload='process')."""
        for variant, kwargs, _ in VARIANTS:
            if variant not in ("adaptive", "rateless"):
                continue
            workload, config = _setup(kwargs, seed=17)

            async def run(offload_spec):
                channel = SimulatedChannel()
                async with ReconciliationServer(
                    config, workload.alice, offload=offload_spec
                ) as server:
                    result = await sync(
                        *server.address, config, workload.bob,
                        variant=variant, channel=channel, timeout=10,
                    )
                return result, channel

            inline_result, inline_channel = asyncio.run(run(None))
            off_result, off_channel = asyncio.run(run(offload))
            assert _message_triples(off_channel) == _message_triples(
                inline_channel
            ), (variant, offload)
            assert sorted(off_result.repaired) == sorted(
                inline_result.repaired
            )


class TestStoreDifferential:
    """Durable store on vs off: the store may not shape a single payload
    byte.  A server answering from a bulk-loaded store, and a server
    answering from a *recovered* store (fresh process over the same
    directory), must both ship payload sequences byte-identical to the
    storeless server, for every variant."""

    @pytest.mark.parametrize("variant,kwargs,runner", VARIANTS,
                             ids=[v for v, _, _ in VARIANTS])
    def test_store_backed_payloads_byte_identical(
        self, variant, kwargs, runner, tmp_path
    ):
        from repro.serve import ServerCore
        from repro.store import DurableSketchStore

        workload, config = _setup(kwargs, seed=19)

        def run_against(make_core):
            async def scenario():
                channel = SimulatedChannel()
                core = make_core()
                if core is None:
                    server = ReconciliationServer(config, workload.alice)
                else:
                    server = ReconciliationServer(core=core)
                async with server:
                    result = await sync(
                        *server.address, config, workload.bob,
                        variant=variant, channel=channel, timeout=10,
                    )
                return result, channel

            return asyncio.run(scenario())

        plain_result, plain_channel = run_against(lambda: None)

        store = DurableSketchStore.open(config, str(tmp_path))
        store.bulk_load(workload.alice)
        live_result, live_channel = run_against(
            lambda: ServerCore(config, workload.alice, store=store)
        )
        assert _message_triples(live_channel) == _message_triples(
            plain_channel
        )
        assert sorted(live_result.repaired) == sorted(plain_result.repaired)

        recovered = DurableSketchStore.open(config, str(tmp_path))
        rec_result, rec_channel = run_against(
            lambda: ServerCore(config, workload.alice, store=recovered)
        )
        assert _message_triples(rec_channel) == _message_triples(
            plain_channel
        )
        assert sorted(rec_result.repaired) == sorted(plain_result.repaired)
        # The recovery diagnostic rides the welcome, not the payloads.
        assert getattr(plain_result, "recovered", None) is None
        assert rec_result.recovered["source"] == "snapshot"
