"""Unit and integration tests for the one-round protocol."""

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler, reconcile
from repro.core.sketch import HierarchySketch
from repro.emd.matching import emd
from repro.errors import ConfigError, ReconciliationFailure, SerializationError
from repro.net.channel import SimulatedChannel


def clamp(value, delta):
    return max(0, min(delta - 1, value))


def perturbed_workload(rng, n, k, delta, dimension, noise):
    """Shared base + noise on Bob's copies + k/2 unique points per side."""
    base = [
        tuple(rng.randrange(delta) for _ in range(dimension)) for _ in range(n)
    ]
    alice = list(base)
    bob = [
        tuple(clamp(c + rng.randrange(-noise, noise + 1), delta) for c in point)
        for point in base
    ]
    for _ in range(k // 2):
        alice.append(tuple(rng.randrange(delta) for _ in range(dimension)))
        bob.append(tuple(rng.randrange(delta) for _ in range(dimension)))
    return alice, bob


class TestConfig:
    def test_defaults_validate(self):
        config = ProtocolConfig(delta=1024, dimension=2, k=4)
        assert config.max_level == 10
        assert config.sketch_levels == tuple(range(11))
        assert config.cells_per_level % config.q == 0

    def test_validation_errors(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=1, dimension=1, k=1)
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=16, dimension=0, k=1)
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=16, dimension=1, k=0)
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=16, dimension=1, k=1, q=7)
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=16, dimension=1, k=1, diff_margin=0.5)
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=16, dimension=1, k=1, metric="cosine")

    def test_explicit_levels_validated(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=16, dimension=1, k=1, levels=(0, 99))
        with pytest.raises(ConfigError):
            ProtocolConfig(delta=16, dimension=1, k=1, levels=(3, 1))
        config = ProtocolConfig(delta=16, dimension=1, k=1, levels=(0, 2, 4))
        assert config.sketch_levels == (0, 2, 4)

    def test_cells_scale_with_k(self):
        small = ProtocolConfig(delta=16, dimension=1, k=2).cells_per_level
        large = ProtocolConfig(delta=16, dimension=1, k=64).cells_per_level
        assert large > small * 8


class TestSketchWire:
    def test_roundtrip(self):
        config = ProtocolConfig(delta=256, dimension=2, k=3, seed=5)
        reconciler = HierarchicalReconciler(config)
        rng = random.Random(0)
        points = [(rng.randrange(256), rng.randrange(256)) for _ in range(40)]
        payload = reconciler.encode(points)
        sketch = HierarchySketch.from_bytes(payload, config, reconciler.grid)
        assert sketch.n_points == 40
        assert [s.level for s in sketch.levels] == list(config.sketch_levels)

    def test_bad_magic_rejected(self):
        config = ProtocolConfig(delta=256, dimension=2, k=3, seed=5)
        reconciler = HierarchicalReconciler(config)
        payload = bytearray(reconciler.encode([(1, 1)]))
        payload[0] ^= 0xFF
        with pytest.raises(SerializationError):
            HierarchySketch.from_bytes(bytes(payload), config, reconciler.grid)

    def test_truncated_rejected(self):
        config = ProtocolConfig(delta=256, dimension=2, k=3, seed=5)
        reconciler = HierarchicalReconciler(config)
        payload = reconciler.encode([(1, 1)])
        with pytest.raises(SerializationError):
            HierarchySketch.from_bytes(payload[: len(payload) // 2], config, reconciler.grid)


class TestExactRegime:
    """With no noise the protocol degenerates to exact set reconciliation."""

    def test_identical_sets(self):
        config = ProtocolConfig(delta=512, dimension=2, k=2, seed=1)
        rng = random.Random(1)
        points = [(rng.randrange(512), rng.randrange(512)) for _ in range(100)]
        result = reconcile(points, list(points), config)
        assert result.level == 0
        assert sorted(result.repaired) == sorted(points)

    def test_pure_insertions_recovered_exactly(self):
        config = ProtocolConfig(delta=512, dimension=2, k=4, seed=2)
        rng = random.Random(2)
        shared = [(rng.randrange(512), rng.randrange(512)) for _ in range(80)]
        alice_only = [(500, 1), (2, 499)]
        bob_only = [(250, 250), (10, 10)]
        result = reconcile(shared + alice_only, shared + bob_only, config)
        assert result.level == 0
        assert sorted(result.repaired) == sorted(shared + alice_only)

    def test_exact_flag(self):
        config = ProtocolConfig(delta=64, dimension=1, k=2, seed=3)
        result = reconcile([(1,), (60,)], [(1,), (50,)], config)
        assert result.exact
        assert sorted(result.repaired) == [(1,), (60,)]

    def test_duplicate_points_handled(self):
        config = ProtocolConfig(delta=64, dimension=1, k=2, seed=4)
        alice = [(5,), (5,), (5,), (40,)]
        bob = [(5,), (40,), (40,)]
        result = reconcile(alice, bob, config)
        assert sorted(result.repaired) == sorted(alice)


class TestNoisyRegime:
    def test_repaired_size_invariant(self):
        config = ProtocolConfig(delta=4096, dimension=2, k=4, seed=5)
        rng = random.Random(5)
        alice, bob = perturbed_workload(rng, 150, 4, 4096, 2, noise=3)
        result = reconcile(alice, bob, config)
        assert len(result.repaired) == len(alice)

    def test_emd_improves(self):
        config = ProtocolConfig(delta=4096, dimension=2, k=4, seed=6)
        rng = random.Random(6)
        alice, bob = perturbed_workload(rng, 150, 4, 4096, 2, noise=3)
        result = reconcile(alice, bob, config)
        assert emd(alice, result.repaired) < emd(alice, bob)

    def test_noise_only_stays_cheap(self):
        """Noise without true differences should decode at a fine level and
        barely touch the set."""
        config = ProtocolConfig(delta=2**16, dimension=2, k=4, seed=7)
        rng = random.Random(7)
        alice, bob = perturbed_workload(rng, 200, 0, 2**16, 2, noise=2)
        result = reconcile(alice, bob, config)
        # The decode level should be far below the top of a 16-level grid.
        assert result.level <= 8
        assert len(result.repaired) == len(alice)

    def test_probe_modes_agree(self):
        config = ProtocolConfig(delta=4096, dimension=2, k=4, seed=8)
        rng = random.Random(8)
        alice, bob = perturbed_workload(rng, 120, 4, 4096, 2, noise=2)
        reconciler = HierarchicalReconciler(config)
        payload = reconciler.encode(alice)
        binary = reconciler.decode_and_repair(payload, bob, probe="binary")
        linear = reconciler.decode_and_repair(payload, bob, probe="linear")
        assert binary.level == linear.level
        assert sorted(binary.repaired) == sorted(linear.repaired)

    def test_binary_probe_is_cheaper(self):
        config = ProtocolConfig(delta=2**18, dimension=2, k=4, seed=9)
        rng = random.Random(9)
        alice, bob = perturbed_workload(rng, 150, 4, 2**18, 2, noise=4)
        reconciler = HierarchicalReconciler(config)
        payload = reconciler.encode(alice)
        binary = reconciler.decode_and_repair(payload, bob, probe="binary")
        linear = reconciler.decode_and_repair(payload, bob, probe="linear")
        assert len(binary.levels_probed) < len(linear.levels_probed)

    def test_one_round_and_one_message(self):
        config = ProtocolConfig(delta=1024, dimension=2, k=3, seed=10)
        rng = random.Random(10)
        alice, bob = perturbed_workload(rng, 80, 2, 1024, 2, noise=2)
        channel = SimulatedChannel()
        result = reconcile(alice, bob, config, channel=channel)
        assert result.transcript.rounds == 1
        assert result.transcript.bob_to_alice_bits == 0
        assert result.transcript.total_bits == result.transcript.alice_to_bob_bits

    def test_strategy_validated(self):
        config = ProtocolConfig(delta=64, dimension=1, k=2, seed=11)
        with pytest.raises(ConfigError):
            reconcile([(1,)], [(2,)], config, strategy="nonsense")


class TestFailureModes:
    def test_hopeless_difference_raises(self):
        """Two unrelated sets with tiny k: every level overflows."""
        config = ProtocolConfig(
            delta=2**16, dimension=2, k=1, seed=12, diff_margin=1.0,
            levels=tuple(range(4)),  # deny the protocol its coarse levels
        )
        rng = random.Random(12)
        alice = [(rng.randrange(2**16), rng.randrange(2**16)) for _ in range(300)]
        bob = [(rng.randrange(2**16), rng.randrange(2**16)) for _ in range(300)]
        with pytest.raises(ReconciliationFailure):
            reconcile(alice, bob, config)

    def test_unknown_probe_mode(self):
        config = ProtocolConfig(delta=64, dimension=1, k=2, seed=13)
        reconciler = HierarchicalReconciler(config)
        payload = reconciler.encode([(1,)])
        with pytest.raises(ReconciliationFailure):
            reconciler.decode_and_repair(payload, [(2,)], probe="quantum")

    def test_corrupted_payload_fails_or_degrades_gracefully(self):
        """A flipped byte corrupts one level's cells; the checksums make
        that level undecodable, and the protocol either repairs from
        another (clean) level or raises — it must never return a
        wrong-sized set."""
        config = ProtocolConfig(delta=64, dimension=1, k=2, seed=14)
        reconciler = HierarchicalReconciler(config)
        alice = [(1,), (5,)]
        bob = [(1,), (9,)]
        raised = 0
        for position_fraction in (0.3, 0.5, 0.7, 0.9):
            payload = bytearray(reconciler.encode(alice))
            payload[int(len(payload) * position_fraction)] ^= 0xFF
            try:
                result = reconciler.decode_and_repair(bytes(payload), bob)
            except (SerializationError, ReconciliationFailure):
                raised += 1
            else:
                assert len(result.repaired) == len(alice)

    def test_truncation_raises(self):
        config = ProtocolConfig(delta=64, dimension=1, k=2, seed=14)
        reconciler = HierarchicalReconciler(config)
        payload = reconciler.encode([(1,), (5,)])
        with pytest.raises(SerializationError):
            reconciler.decode_and_repair(payload[:-4], [(1,), (9,)])


class TestGuaranteeStatistics:
    def test_emd_within_predicted_bound(self):
        """The paper's O(d)-approximation, checked over several seeds."""
        from repro.core.bounds import predicted_emd_bound
        from repro.emd.partial import emd_k

        delta, dimension, k, n = 4096, 2, 4, 100
        hits = 0
        trials = 5
        for seed in range(trials):
            config = ProtocolConfig(delta=delta, dimension=dimension, k=k, seed=seed)
            rng = random.Random(100 + seed)
            alice, bob = perturbed_workload(rng, n, k, delta, dimension, noise=4)
            result = reconcile(alice, bob, config)
            achieved = emd(alice, result.repaired)
            baseline = emd_k(alice, bob, k)
            bound = predicted_emd_bound(max(baseline, 1.0), k, dimension,
                                        config.diff_margin)
            if achieved <= bound:
                hits += 1
        assert hits >= trials - 1  # the guarantee holds in expectation
