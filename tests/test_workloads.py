"""Unit tests for the workload generators."""

import random

import pytest

from repro.core.grid import ShiftedGridHierarchy
from repro.errors import ConfigError
from repro.workloads import (
    WorkloadPair,
    boundary_pair,
    clustered_pair,
    clustered_points,
    geo_pair,
    perturbed_pair,
    sensor_pair,
    uniform_points,
)
from repro.workloads.synthetic import deduplicate


class TestWorkloadPair:
    def test_validation_dimension(self):
        with pytest.raises(ConfigError):
            WorkloadPair("x", [(1, 2)], [(1,)], 16, 2, 0, 0.0)

    def test_validation_range(self):
        with pytest.raises(ConfigError):
            WorkloadPair("x", [(99,)], [(1,)], 16, 1, 0, 0.0)

    def test_describe(self):
        pair = perturbed_pair(0, 10, 64, 2, true_k=1, noise=1)
        text = pair.describe()
        assert "n=11/11" in text
        assert "true_k=1" in text


class TestPerturbedPair:
    def test_sizes_match(self):
        pair = perturbed_pair(1, 100, 1024, 2, true_k=5, noise=2)
        assert len(pair.alice) == len(pair.bob) == 105

    def test_deterministic_per_seed(self):
        a = perturbed_pair(2, 50, 1024, 2, true_k=2, noise=2)
        b = perturbed_pair(2, 50, 1024, 2, true_k=2, noise=2)
        assert a.alice == b.alice
        assert a.bob == b.bob

    def test_seed_changes_data(self):
        a = perturbed_pair(3, 50, 1024, 2, true_k=2, noise=2)
        b = perturbed_pair(4, 50, 1024, 2, true_k=2, noise=2)
        assert a.alice != b.alice

    def test_zero_noise_shares_base(self):
        pair = perturbed_pair(5, 50, 1024, 2, true_k=0, noise=0)
        assert sorted(pair.alice) == sorted(pair.bob)

    def test_noise_bounded_uniform(self):
        pair = perturbed_pair(6, 80, 1024, 2, true_k=0, noise=3)
        for a, b in zip(pair.alice, pair.bob):
            assert all(abs(x - y) <= 3 for x, y in zip(a, b))

    def test_gaussian_model(self):
        pair = perturbed_pair(
            7, 80, 1024, 2, true_k=0, noise=2.0, noise_model="gaussian"
        )
        moved = sum(1 for a, b in zip(pair.alice, pair.bob) if a != b)
        assert moved > 40  # most points perturbed

    def test_bad_noise_model(self):
        with pytest.raises(ConfigError):
            perturbed_pair(8, 10, 64, 1, 0, 1, noise_model="laplace")

    def test_bad_base(self):
        with pytest.raises(ConfigError):
            perturbed_pair(8, 10, 64, 1, 0, 1, base="spiral")

    def test_all_coordinates_in_grid(self):
        pair = perturbed_pair(9, 100, 256, 3, true_k=10, noise=50)
        for point in pair.alice + pair.bob:
            assert all(0 <= c < 256 for c in point)


class TestClusteredWorkloads:
    def test_clustered_points_concentrate(self):
        rng = random.Random(10)
        points = clustered_points(rng, 300, 2**14, 2, clusters=3, spread=0.005)
        # Mean pairwise spread should be far below uniform expectation.
        sample = points[:60]
        mean_dist = sum(
            abs(a[0] - b[0]) + abs(a[1] - b[1])
            for a in sample for b in sample
        ) / (len(sample) ** 2)
        assert mean_dist < 2**14  # uniform would be ~ 2/3 * 2 * delta/3 ~ 10900

    def test_clustered_pair_shape(self):
        pair = clustered_pair(11, 120, 2**12, 2, true_k=4, noise=2)
        assert pair.name == "perturbed-clustered"
        assert len(pair.alice) == 124

    def test_cluster_validation(self):
        rng = random.Random(0)
        with pytest.raises(ConfigError):
            clustered_points(rng, 10, 64, 2, clusters=0)


class TestSensorPair:
    def test_shape(self):
        pair = sensor_pair(12, 100, 2**12, 2, sensor_noise=2.0, missed=3, ghosts=2)
        assert len(pair.alice) == len(pair.bob) == 105
        assert pair.true_k == 5

    def test_zero_noise_objects_agree(self):
        pair = sensor_pair(13, 50, 2**12, 2, sensor_noise=0.0, missed=0, ghosts=0)
        assert sorted(pair.alice) == sorted(pair.bob)

    def test_validation(self):
        with pytest.raises(ConfigError):
            sensor_pair(14, -1, 64, 1, 1.0, 0, 0)
        with pytest.raises(ConfigError):
            sensor_pair(14, 10, 64, 1, -1.0, 0, 0)


class TestGeoPair:
    def test_shape_and_dimension(self):
        pair = geo_pair(15, 200, 2**16, true_k=5, noise=3.0)
        assert pair.dimension == 2
        assert len(pair.alice) == 205

    def test_zipf_concentration(self):
        """The largest city should hold a disproportionate share."""
        pair = geo_pair(16, 400, 2**16, true_k=0, noise=0.0, cities=8)
        grid = ShiftedGridHierarchy(2**16, 2, seed=0)
        level = 11  # ~city-sized cells
        buckets = grid.bucket_points(pair.alice, level)
        largest = max(len(b) for b in buckets.values())
        assert largest > 400 / 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            geo_pair(17, 10, 64, 0, 0.0, cities=0)
        with pytest.raises(ConfigError):
            geo_pair(17, 10, 64, 0, 0.0, zipf_exponent=0)


class TestBoundaryPair:
    def test_points_on_boundaries(self):
        pair = boundary_pair(18, 50, 2**12, 2, true_k=0, cell_width=64)
        for point in pair.alice:
            assert all(c % 64 == 0 or c == 2**12 - 1 for c in point)

    def test_noise_is_tiny(self):
        pair = boundary_pair(19, 50, 2**12, 2, true_k=0, cell_width=64)
        for a, b in zip(pair.alice, pair.bob):
            assert all(abs(x - y) <= 1 for x, y in zip(a, b))

    def test_unshifted_grid_splits_many_pairs(self):
        """The adversarial property: a zero-shift grid separates ~half of
        the noisy pairs even though the noise is ±1."""
        pair = boundary_pair(20, 200, 2**12, 2, true_k=0, cell_width=64)
        level = 6  # cell side 64
        unshifted = ShiftedGridHierarchy(2**12, 2, shift=(0, 0))
        splits = sum(
            1
            for a, b in zip(pair.alice, pair.bob)
            if unshifted.cell(a, level) != unshifted.cell(b, level)
        )
        assert splits > 50  # far more than noise/cell_side * n = ~3

    def test_validation(self):
        with pytest.raises(ConfigError):
            boundary_pair(21, 10, 64, 1, 0, cell_width=3)
        with pytest.raises(ConfigError):
            boundary_pair(21, 10, 64, 1, 0, cell_width=64)


class TestDeduplicate:
    def test_removes_duplicates(self):
        rng = random.Random(22)
        points = [(1, 1), (1, 1), (2, 2)]
        result = deduplicate(points, rng, 64)
        assert len(set(result)) == 3

    def test_preserves_distinct(self):
        rng = random.Random(23)
        points = [(1, 1), (2, 2)]
        assert deduplicate(points, rng, 64) == points
