"""Golden end-to-end transcripts: frozen wire bytes and repair outputs.

Each fixture under ``tests/golden/`` pins one complete protocol run —
config, input point sets, every message's exact bytes, and the repaired
set.  Any backend or protocol change that silently alters wire bytes or
repair output fails these tests loudly; a deliberate wire change must
regenerate the fixtures (and say so in review):

    PYTHONPATH=src python tests/test_golden_transcripts.py --regenerate

Fixtures are generated with the pure reference backend; the tests replay
them on every available backend, which also pins backend bit-compatibility
at the protocol level.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

import pytest

from repro.core.adaptive import AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.core.incremental import IncrementalSketch
from repro.core.protocol import HierarchicalReconciler
from repro.core.rateless import reconcile_rateless
from repro.iblt.backends import available_backends
from repro.net.channel import SimulatedChannel

GOLDEN_DIR = Path(__file__).parent / "golden"
BACKENDS = available_backends()


def _perturbed_points(seed, n, delta, dimension, moved, drop):
    """Small deterministic noisy-replica pair (self-contained on purpose)."""
    rng = random.Random(seed)
    alice = [
        tuple(rng.randrange(delta) for _ in range(dimension)) for _ in range(n)
    ]
    bob = []
    for index, point in enumerate(alice):
        if index < drop:
            continue
        if index < drop + moved:
            point = tuple(
                min(delta - 1, max(0, c + rng.choice([-2, -1, 1, 2])))
                for c in point
            )
        bob.append(point)
    return alice, bob


def _scenarios():
    """The frozen runs: (name, protocol, config kwargs, alice, bob)."""
    small_alice, small_bob = [(10,), (33,), (200,)], [(11,), (200,)]
    d2_alice, d2_bob = _perturbed_points(1, 60, 1024, 2, moved=4, drop=2)
    dup_alice = [(5, 5)] * 3 + [(100, 200)] * 2 + [(900, 10)]
    dup_bob = [(5, 5)] * 3 + [(100, 200)] + [(901, 10)]
    big_alice, big_bob = _perturbed_points(9, 250, 4096, 2, moved=6, drop=3)
    inc_alice, inc_bob = _perturbed_points(4, 40, 512, 1, moved=3, drop=1)
    # Sized so the default rateless schedule needs >= 2 increments: the
    # symmetric difference at level 0 exceeds segment 0's peel capacity.
    rl_alice, rl_bob = _perturbed_points(2, 120, 2048, 2, moved=18, drop=4)
    return [
        ("one_round_d1_tiny", "one-round",
         dict(delta=256, dimension=1, k=2, seed=7), small_alice, small_bob),
        ("one_round_d2_noisy", "one-round",
         dict(delta=1024, dimension=2, k=8, seed=42), d2_alice, d2_bob),
        ("one_round_identical", "one-round",
         dict(delta=1024, dimension=2, k=4, seed=13), d2_alice, list(d2_alice)),
        ("one_round_multiset", "one-round",
         dict(delta=1024, dimension=2, k=4, seed=5), dup_alice, dup_bob),
        ("adaptive_two_round", "adaptive",
         dict(delta=4096, dimension=2, k=12, seed=3), big_alice, big_bob),
        ("incremental_encode", "incremental",
         dict(delta=512, dimension=1, k=6, seed=21), inc_alice, inc_bob),
        ("rateless_streaming", "rateless",
         dict(delta=2048, dimension=2, k=10, seed=17), rl_alice, rl_bob),
    ]


def _run(protocol, config, alice, bob):
    """Execute one scenario; returns (messages dict, outcome dict)."""
    if protocol == "adaptive":
        reconciler = AdaptiveReconciler(config)
        request = reconciler.bob_request(bob)
        response = reconciler.alice_respond(request, alice)
        result = reconciler.bob_finish(response, bob)
        messages = {"request": request.hex(), "response": response.hex()}
    elif protocol == "rateless":
        channel = SimulatedChannel()
        result = reconcile_rateless(alice, bob, config, channel=channel)
        messages = {
            f"{index:02d}_{message.label}": message.payload.hex()
            for index, message in enumerate(channel.messages)
        }
        channel.close()
    else:
        reconciler = HierarchicalReconciler(config)
        if protocol == "incremental":
            sketch = IncrementalSketch(config)
            sketch.insert_all(alice)
            # Exercise the maintenance path too: remove and re-add a point.
            sketch.remove(alice[0])
            sketch.insert(alice[0])
            payload = sketch.encode()
            assert payload == reconciler.encode(alice)
        else:
            payload = reconciler.encode(alice)
        result = reconciler.decode_and_repair(payload, bob)
        messages = {"sketch": payload.hex()}
    outcome = {
        "level": result.level,
        "alice_surplus": result.alice_surplus,
        "bob_surplus": result.bob_surplus,
        "repaired": sorted([list(p) for p in result.repaired]),
    }
    return messages, outcome


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, protocol, kwargs, alice, bob in _scenarios():
        config = ProtocolConfig(backend="pure", **kwargs)
        messages, outcome = _run(protocol, config, alice, bob)
        fixture = {
            "name": name,
            "protocol": protocol,
            "config": kwargs,
            "alice": [list(p) for p in alice],
            "bob": [list(p) for p in bob],
            "messages": messages,
            "outcome": outcome,
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(fixture, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")


def _load_fixtures():
    return [
        json.loads(path.read_text()) for path in sorted(GOLDEN_DIR.glob("*.json"))
    ]


_FIXTURES = _load_fixtures()
_MISSING = (
    f"no golden fixtures in {GOLDEN_DIR}; run "
    "PYTHONPATH=src python tests/test_golden_transcripts.py --regenerate"
)


@pytest.mark.parametrize(
    "fixture",
    _FIXTURES or [None],
    ids=lambda fixture: fixture["name"] if fixture else "missing",
)
@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_transcript(fixture, backend):
    assert fixture is not None, _MISSING
    config = ProtocolConfig(backend=backend, **fixture["config"])
    alice = [tuple(p) for p in fixture["alice"]]
    bob = [tuple(p) for p in fixture["bob"]]
    messages, outcome = _run(fixture["protocol"], config, alice, bob)
    assert messages == fixture["messages"], (
        f"wire bytes changed for {fixture['name']} on backend {backend!r}; "
        "if intentional, regenerate the golden fixtures"
    )
    assert outcome == fixture["outcome"]


def test_fixture_count_covers_protocols():
    fixtures = _load_fixtures()
    assert fixtures, _MISSING
    assert 4 <= len(fixtures) <= 8
    assert {fixture["protocol"] for fixture in fixtures} == {
        "one-round", "adaptive", "incremental", "rateless"
    }


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
