"""Property-based tests for the bit IO layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.bits import BitReader, BitWriter, zigzag_decode, zigzag_encode

uints = st.integers(min_value=0, max_value=2**80)
sints = st.integers(min_value=-(2**80), max_value=2**80)


@given(sints)
def test_zigzag_roundtrip(value):
    assert zigzag_decode(zigzag_encode(value)) == value


@given(st.integers(min_value=0, max_value=2**80 - 1))
def test_zigzag_decode_is_injective_inverse(value):
    assert zigzag_encode(zigzag_decode(value)) == value


@given(st.lists(uints, max_size=50))
def test_varint_stream_roundtrip(values):
    writer = BitWriter()
    for value in values:
        writer.write_varint(value)
    reader = BitReader(writer.getvalue())
    assert [reader.read_varint() for _ in values] == values
    reader.expect_end()


@given(st.lists(sints, max_size=50))
def test_svarint_stream_roundtrip(values):
    writer = BitWriter()
    for value in values:
        writer.write_svarint(value)
    reader = BitReader(writer.getvalue())
    assert [reader.read_svarint() for _ in values] == values


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=120), st.data()),
        max_size=30,
    )
)
def test_mixed_width_uint_roundtrip(fields):
    # Draw a value that fits each random width, write all, read all back.
    widths_values = []
    writer = BitWriter()
    for width, data in fields:
        value = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        widths_values.append((width, value))
        writer.write_uint(value, width)
    reader = BitReader(writer.getvalue())
    for width, value in widths_values:
        assert reader.read_uint(width) == value


@given(st.binary(max_size=200))
def test_bytes_roundtrip(data):
    writer = BitWriter()
    writer.write_bytes(data)
    reader = BitReader(writer.getvalue())
    assert reader.read_bytes() == data


@given(st.lists(st.integers(min_value=0, max_value=1), max_size=64))
@settings(max_examples=50)
def test_bit_stream_roundtrip(bits):
    writer = BitWriter()
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue())
    assert [reader.read_bit() for _ in bits] == bits


@given(st.lists(uints, max_size=20))
def test_bit_length_is_byte_aligned_payload(values):
    writer = BitWriter()
    for value in values:
        writer.write_varint(value)
    payload = writer.getvalue()
    assert len(payload) == writer.byte_length
    assert len(payload) * 8 - writer.bit_length < 8
