"""Property-based tests for the GF(p) polynomial substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.factor import roots_of_split_polynomial
from repro.gf.field import PrimeField
from repro.gf.interp import interpolate_rational
from repro.gf.poly import Poly

F = PrimeField(10_007)

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=10_006), min_size=0, max_size=12
)
elements = st.integers(min_value=0, max_value=10_006)


def P(coeffs):
    return Poly.make(F, coeffs)


@given(coeff_lists, coeff_lists)
def test_addition_commutes(a, b):
    assert P(a) + P(b) == P(b) + P(a)


@given(coeff_lists, coeff_lists, coeff_lists)
@settings(max_examples=50)
def test_multiplication_distributes(a, b, c):
    pa, pb, pc = P(a), P(b), P(c)
    assert pa * (pb + pc) == pa * pb + pa * pc


@given(coeff_lists, coeff_lists)
@settings(max_examples=50)
def test_divmod_identity(a, b):
    pa, pb = P(a), P(b)
    if pb.is_zero:
        return
    quotient, remainder = pa.divmod(pb)
    assert quotient * pb + remainder == pa
    assert remainder.degree < pb.degree


@given(coeff_lists, elements)
def test_evaluation_is_ring_homomorphism(a, point):
    pa = P(a)
    pb = P([3, 1])
    assert (pa * pb)(point) == F.mul(pa(point), pb(point))
    assert (pa + pb)(point) == F.add(pa(point), pb(point))


@given(st.sets(elements, min_size=0, max_size=10))
@settings(max_examples=40)
def test_from_roots_factors_back(roots):
    poly = Poly.from_roots(F, sorted(roots))
    assert roots_of_split_polynomial(poly) == sorted(roots)


@given(st.sets(elements, min_size=1, max_size=8), st.sets(elements, min_size=1, max_size=8))
@settings(max_examples=30)
def test_gcd_contains_shared_roots(a_roots, b_roots):
    shared = a_roots & b_roots
    gcd = Poly.from_roots(F, sorted(a_roots)).gcd(
        Poly.from_roots(F, sorted(b_roots))
    )
    # gcd must vanish exactly on the shared roots.
    for root in shared:
        assert gcd(root) == 0
    assert gcd.degree == len(shared)


@given(
    st.sets(st.integers(min_value=0, max_value=4_000), min_size=0, max_size=6),
    st.sets(st.integers(min_value=4_001, max_value=8_000), min_size=0, max_size=6),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_cpi_rational_recovery(alice_only, bob_only, seed):
    """The full CPI pipeline as a property: recover both difference sides."""
    rng = random.Random(seed)
    shared = {8_500 + i for i in range(10)}
    alice = sorted(shared | alice_only)
    bob = sorted(shared | bob_only)
    chi_a = Poly.from_roots(F, alice)
    chi_b = Poly.from_roots(F, bob)
    d_num, d_den = len(alice_only), len(bob_only)
    points = []
    while len(points) < d_num + d_den + 1:
        candidate = rng.randrange(10_007)
        if chi_b(candidate) != 0 and candidate not in points:
            points.append(candidate)
    values = [F.div(chi_a(z), chi_b(z)) for z in points]
    rational = interpolate_rational(F, points, values, d_num, d_den)
    assert roots_of_split_polynomial(rational.numerator) == sorted(alice_only)
    assert roots_of_split_polynomial(rational.denominator) == sorted(bob_only)
