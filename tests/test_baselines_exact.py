"""Unit tests for the exact reconciliation baselines (IBF and CPI)."""

import random

import pytest

from repro.baselines.cpi import CPIReconciler
from repro.baselines.exact_ibf import ExactIBF
from repro.errors import ConfigError
from repro.net.channel import SimulatedChannel
from repro.workloads.synthetic import perturbed_pair, uniform_points


def distinct_pair(seed, n, delta, dimension, diff):
    """Two sets sharing n points, with `diff` unique points per side."""
    rng = random.Random(seed)
    pool = set()
    while len(pool) < n + 2 * diff:
        pool.add(tuple(rng.randrange(delta) for _ in range(dimension)))
    pool = list(pool)
    shared = pool[:n]
    alice = shared + pool[n:n + diff]
    bob = shared + pool[n + diff:n + 2 * diff]
    return alice, bob


class TestExactIBF:
    def test_identical_sets(self):
        alice, bob = distinct_pair(0, 100, 2**16, 2, 0)
        result = ExactIBF(2**16, 2, seed=1).run(alice, list(alice))
        assert sorted(result.repaired) == sorted(alice)

    def test_small_difference_exact(self):
        alice, bob = distinct_pair(1, 200, 2**16, 2, 5)
        result = ExactIBF(2**16, 2, seed=1).run(alice, bob)
        assert sorted(result.repaired) == sorted(alice)
        assert result.info["difference"] == 10

    def test_bits_scale_with_difference_not_n(self):
        small_diff_bits = []
        for n in (100, 400):
            alice, bob = distinct_pair(2, n, 2**16, 2, 5)
            small_diff_bits.append(
                ExactIBF(2**16, 2, seed=2).run(alice, bob).total_bits
            )
        # Same difference, 4x the set size: bits should not grow 2x.
        assert small_diff_bits[1] < small_diff_bits[0] * 2

    def test_noise_blows_up_cost(self):
        """The motivating failure: under noise the difference is Theta(n)."""
        clean = perturbed_pair(3, 200, 2**16, 2, true_k=4, noise=0)
        noisy = perturbed_pair(3, 200, 2**16, 2, true_k=4, noise=2)
        clean_bits = ExactIBF(2**16, 2, seed=3).run(clean.alice, clean.bob).total_bits
        noisy_bits = ExactIBF(2**16, 2, seed=3).run(noisy.alice, noisy.bob).total_bits
        assert noisy_bits > 5 * clean_bits

    def test_duplicate_points_rejected(self):
        baseline = ExactIBF(2**10, 2, seed=4)
        with pytest.raises(ConfigError):
            baseline.run([(1, 1), (1, 1)], [(2, 2)])

    def test_unequal_sizes_supported(self):
        alice, bob = distinct_pair(5, 50, 2**12, 2, 0)
        extra = [(9, 9), (10, 10), (11, 11)]
        result = ExactIBF(2**12, 2, seed=5).run(alice + extra, bob)
        assert sorted(result.repaired) == sorted(alice + extra)

    def test_rounds_recorded(self):
        alice, bob = distinct_pair(6, 50, 2**12, 2, 2)
        channel = SimulatedChannel()
        ExactIBF(2**12, 2, seed=6).run(alice, bob, channel=channel)
        assert channel.rounds >= 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExactIBF(1, 1)
        with pytest.raises(ConfigError):
            ExactIBF(16, 1, headroom=0.5)
        with pytest.raises(ConfigError):
            ExactIBF(16, 1, max_retries=-1)


class TestCPI:
    def test_identical_sets(self):
        alice, _ = distinct_pair(7, 60, 2**12, 2, 0)
        result = CPIReconciler(2**12, 2, seed=7).run(alice, list(alice))
        assert sorted(result.repaired) == sorted(alice)

    def test_small_difference_exact(self):
        alice, bob = distinct_pair(8, 80, 2**12, 2, 4)
        result = CPIReconciler(2**12, 2, seed=8).run(alice, bob)
        assert sorted(result.repaired) == sorted(alice)
        assert result.info["difference"] == 8

    def test_one_sided_difference(self):
        alice, bob = distinct_pair(9, 60, 2**12, 2, 0)
        alice = alice + [(1, 2), (3, 4), (5, 6)]
        result = CPIReconciler(2**12, 2, seed=9).run(alice, bob)
        assert sorted(result.repaired) == sorted(alice)

    def test_unequal_sizes(self):
        alice, bob = distinct_pair(10, 40, 2**12, 2, 3)
        bob = bob[:-2]  # Bob two short
        result = CPIReconciler(2**12, 2, seed=10).run(alice, bob)
        assert sorted(result.repaired) == sorted(alice)

    def test_bits_near_optimal(self):
        """CPI's selling point: ~61 bits per difference plus overhead."""
        alice, bob = distinct_pair(11, 150, 2**12, 2, 6)
        result = CPIReconciler(2**12, 2, seed=11).run(alice, bob)
        evals_bits = result.transcript.alice_to_bob_bits
        # 12 differences -> bound ~18 with headroom; each eval is 61 bits.
        assert evals_bits < 61 * 50

    def test_universe_restriction(self):
        with pytest.raises(ConfigError):
            CPIReconciler(2**16, 4)  # 64 packed bits > 60

    def test_duplicate_points_rejected(self):
        with pytest.raises(ConfigError):
            CPIReconciler(2**10, 2).run([(1, 1), (1, 1)], [(2, 2)])

    def test_validation(self):
        with pytest.raises(ConfigError):
            CPIReconciler(16, 1, headroom=0.9)
        with pytest.raises(ConfigError):
            CPIReconciler(16, 1, verify_points=-1)

    def test_larger_difference_with_retries(self):
        alice, bob = distinct_pair(12, 100, 2**12, 2, 12)
        result = CPIReconciler(2**12, 2, seed=12).run(alice, bob)
        assert sorted(result.repaired) == sorted(alice)


class TestCrossBaselineAgreement:
    def test_ibf_and_cpi_agree(self):
        alice, bob = distinct_pair(13, 120, 2**12, 2, 5)
        ibf = ExactIBF(2**12, 2, seed=13).run(alice, bob)
        cpi = CPIReconciler(2**12, 2, seed=13).run(alice, bob)
        assert sorted(ibf.repaired) == sorted(cpi.repaired) == sorted(alice)
