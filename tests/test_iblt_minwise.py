"""Unit tests for the min-wise difference estimator."""

import random

import pytest

from repro.errors import ConfigError, SerializationError
from repro.iblt.minwise import MinwiseEstimator


def build_pair(n_shared, n_alice, n_bob, seed=0, sketch_size=256):
    rng = random.Random(seed)
    shared = [rng.getrandbits(60) for _ in range(n_shared)]
    alice = MinwiseEstimator(sketch_size, seed=9)
    bob = MinwiseEstimator(sketch_size, seed=9)
    alice.insert_all(shared + [rng.getrandbits(60) for _ in range(n_alice)])
    bob.insert_all(shared + [rng.getrandbits(60) for _ in range(n_bob)])
    return alice, bob


class TestSketchMechanics:
    def test_keeps_only_s_minima(self):
        estimator = MinwiseEstimator(sketch_size=16, seed=1)
        estimator.insert_all(range(1000))
        assert len(estimator.minima()) == 16

    def test_minima_are_smallest(self):
        estimator = MinwiseEstimator(sketch_size=8, seed=2)
        values = list(range(500))
        estimator.insert_all(values)
        from repro.iblt.hashing import hash_with_salt

        all_hashes = sorted(hash_with_salt(v, 2 ^ 0x31415) for v in values)
        # The kept minima must be the 8 smallest hash values.
        assert estimator.minima() == sorted(estimator.minima())
        assert max(estimator.minima()) <= all_hashes[len(values) - 1]

    def test_count_tracks_insertions(self):
        estimator = MinwiseEstimator(seed=3)
        estimator.insert_all(range(50))
        assert estimator.count == 50

    def test_validation(self):
        with pytest.raises(ConfigError):
            MinwiseEstimator(sketch_size=4)


class TestEstimation:
    def test_identical_sets(self):
        alice, bob = build_pair(400, 0, 0)
        assert alice.estimate_difference(bob) == 0

    def test_disjoint_sets(self):
        alice, bob = build_pair(0, 300, 300)
        estimate = alice.estimate_difference(bob)
        assert 600 / 2 <= estimate <= 600 * 2

    def test_moderate_difference(self):
        estimates = []
        for seed in range(6):
            alice, bob = build_pair(300, 100, 100, seed=seed)
            estimates.append(alice.estimate_difference(bob))
        mean = sum(estimates) / len(estimates)
        assert 200 / 2 <= mean <= 200 * 2

    def test_small_relative_difference_degrades(self):
        """The documented weakness: tiny differences vanish below the
        sketch's resolution (this is what strata fixes)."""
        alice, bob = build_pair(5000, 2, 2, sketch_size=64)
        estimate = alice.estimate_difference(bob)
        assert estimate < 500  # wildly unsure, but bounded

    def test_empty_sets(self):
        alice = MinwiseEstimator(seed=5)
        bob = MinwiseEstimator(seed=5)
        assert alice.estimate_difference(bob) == 0

    def test_config_mismatch(self):
        with pytest.raises(ConfigError):
            MinwiseEstimator(seed=1).estimate_difference(MinwiseEstimator(seed=2))


class TestWire:
    def test_roundtrip(self):
        alice, bob = build_pair(200, 10, 10)
        restored = MinwiseEstimator.from_bytes(alice.to_bytes(), 256, 9)
        assert restored.estimate_difference(bob) == alice.estimate_difference(bob)

    def test_serialized_bits(self):
        alice, _ = build_pair(100, 0, 0)
        assert (alice.serialized_bits() + 7) // 8 == len(alice.to_bytes())

    def test_oversized_sketch_rejected(self):
        alice, _ = build_pair(400, 0, 0, sketch_size=64)
        payload = alice.to_bytes()
        with pytest.raises(SerializationError):
            MinwiseEstimator.from_bytes(payload, 32, 9)
