"""Run the library's docstring examples as tests.

Public API docstrings carry runnable examples; this keeps them honest.
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro",
    "repro.analysis.tables",
    "repro.core.broadcast",
    "repro.core.incremental",
    "repro.core.protocol",
    "repro.emd.matching",
    "repro.emd.metrics",
    "repro.emd.onedim",
    "repro.gf.field",
    "repro.net.bits",
    "repro.scale.engine",
    "repro.scale.incremental",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0  # listed modules must actually carry examples
