"""Unit tests for the repair planner and edit application."""

import random

import pytest

from repro.core.grid import ShiftedGridHierarchy
from repro.core.repair import (
    REPAIR_STRATEGIES,
    RepairPlan,
    apply_repair,
    plan_repair,
)
from repro.errors import ConfigError, ReconciliationFailure


def make_grid(delta=256, dimension=2, seed=9):
    return ShiftedGridHierarchy(delta, dimension, seed)


class TestPlanRepair:
    def test_empty_difference_empty_plan(self):
        grid = make_grid()
        plan = plan_repair([(1, 1)], [], [], grid, 3)
        assert plan.additions == []
        assert plan.removals == []

    def test_alice_surplus_becomes_centres(self):
        grid = make_grid()
        level = 4
        alice_point = (100, 100)
        cell = grid.cell(alice_point, level)
        key = grid.pack_key(cell, 0, level)
        plan = plan_repair([(200, 200)], [key], [], grid, level)
        assert plan.additions == [grid.center(cell, level)]
        assert plan.removals == []

    def test_bob_surplus_removes_his_points(self):
        grid = make_grid()
        level = 4
        bob_points = [(50, 50), (51, 50), (200, 200)]
        cell = grid.cell((50, 50), level)
        bucket = grid.bucket_points(bob_points, level)[cell]
        # Bob has len(bucket) points there; Alice has one fewer.
        key = grid.pack_key(cell, len(bucket) - 1, level)
        plan = plan_repair(bob_points, [], [key], grid, level)
        assert len(plan.removals) == 1
        assert plan.removals[0] in bucket

    def test_occurrence_strategy_removes_top_ranked(self):
        grid = make_grid()
        level = 6
        cell_points = [(10, 10), (10, 40), (40, 10)]
        # Keep only points genuinely co-located at this level.
        cell = grid.cell(cell_points[0], level)
        co_located = [p for p in cell_points if grid.cell(p, level) == cell]
        if len(co_located) >= 2:
            key = grid.pack_key(cell, len(co_located) - 1, level)
            plan = plan_repair(co_located, [], [key], grid, level)
            assert plan.removals == [sorted(co_located)[-1]]

    def test_unknown_strategy_rejected(self):
        grid = make_grid()
        with pytest.raises(ConfigError):
            plan_repair([], [], [], grid, 1, strategy="nonsense")

    def test_phantom_cell_raises(self):
        grid = make_grid()
        level = 3
        cell = grid.cell((10, 10), level)
        key = grid.pack_key(cell, 0, level)
        with pytest.raises(ReconciliationFailure):
            plan_repair([(200, 200)], [], [key], grid, level)

    def test_phantom_occurrence_raises(self):
        grid = make_grid()
        level = 3
        bob_points = [(10, 10)]
        cell = grid.cell((10, 10), level)
        key = grid.pack_key(cell, 5, level)  # rank 5 in a 1-point cell
        with pytest.raises(ReconciliationFailure):
            plan_repair(bob_points, [], [key], grid, level)

    @pytest.mark.parametrize("strategy", REPAIR_STRATEGIES)
    def test_strategies_remove_correct_counts(self, strategy):
        grid = make_grid(delta=64)
        level = 6
        rng = random.Random(1)
        bob_points = [(rng.randrange(64), rng.randrange(64)) for _ in range(30)]
        buckets = grid.bucket_points(bob_points, level)
        cell, bucket = max(buckets.items(), key=lambda item: len(item[1]))
        surplus = min(2, len(bucket))
        keys = [
            grid.pack_key(cell, len(bucket) - 1 - i, level) for i in range(surplus)
        ]
        plan = plan_repair(bob_points, [], keys, grid, level, strategy)
        assert len(plan.removals) == surplus
        for victim in plan.removals:
            assert victim in bucket


class TestApplyRepair:
    def test_apply_addition_and_removal(self):
        plan = RepairPlan(level=2, additions=[(9, 9)], removals=[(1, 1)])
        repaired = apply_repair([(1, 1), (2, 2)], plan)
        assert sorted(repaired) == [(2, 2), (9, 9)]

    def test_multiset_removal(self):
        plan = RepairPlan(level=1, additions=[], removals=[(5, 5)])
        repaired = apply_repair([(5, 5), (5, 5)], plan)
        assert repaired == [(5, 5)]

    def test_missing_removal_raises(self):
        plan = RepairPlan(level=1, additions=[], removals=[(7, 7)])
        with pytest.raises(ReconciliationFailure):
            apply_repair([(1, 1)], plan)

    def test_original_not_mutated(self):
        original = [(1, 1), (2, 2)]
        plan = RepairPlan(level=0, additions=[(3, 3)], removals=[(1, 1)])
        apply_repair(original, plan)
        assert original == [(1, 1), (2, 2)]

    def test_size_arithmetic(self):
        plan = RepairPlan(
            level=0, additions=[(8, 8), (9, 9)], removals=[(1, 1)]
        )
        repaired = apply_repair([(1, 1), (2, 2), (3, 3)], plan)
        assert len(repaired) == 3 - 1 + 2
