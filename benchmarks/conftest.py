"""Shared fixtures for the benchmark suite.

Every experiment prints its table and also writes it under
``benchmarks/results/`` so the reproduced evaluation survives pytest's
output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """The directory benchmark tables are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, capsys):
    """Return a callable that persists and prints one experiment's output."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to {path}]")

    return _emit
