"""Shared fixtures for the benchmark suite.

Every experiment prints its table and also writes it under
``benchmarks/results/`` so the reproduced evaluation survives pytest's
output capture.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.net.transcript import Transcript

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _jsonify(obj):
    """Serialise benchmark-native objects (measured transcripts) cleanly.

    Benchmarks drop whole :class:`~repro.net.transcript.Transcript`
    objects into their payloads; this hook renders them via
    ``Transcript.to_dict()`` instead of every benchmark plucking fields
    by hand.
    """
    if isinstance(obj, Transcript):
        return obj.to_dict()
    raise TypeError(
        f"benchmark JSON payloads must be JSON scalars or Transcript, "
        f"got {type(obj).__name__}"
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """The directory benchmark tables are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, capsys):
    """Return a callable that persists and prints one experiment's output."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to {path}]")

    return _emit


@pytest.fixture()
def emit_json(results_dir, capsys):
    """Persist one experiment's machine-readable record as ``<name>.json``.

    The JSON siblings of the rendered tables are what CI jobs and future
    perf-trajectory tooling consume (see ``BENCH_3.json``); keep the
    payloads plain dicts/lists of JSON scalars.
    """

    def _emit(name: str, payload) -> pathlib.Path:
        path = results_dir / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True, default=_jsonify)
            + "\n"
        )
        with capsys.disabled():
            print(f"[json saved to {path}]")
        return path

    return _emit
