"""Shared fixtures for the benchmark suite.

Every experiment prints its table and also writes it under
``benchmarks/results/`` so the reproduced evaluation survives pytest's
output capture.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """The directory benchmark tables are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, capsys):
    """Return a callable that persists and prints one experiment's output."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to {path}]")

    return _emit


@pytest.fixture()
def emit_json(results_dir, capsys):
    """Persist one experiment's machine-readable record as ``<name>.json``.

    The JSON siblings of the rendered tables are what CI jobs and future
    perf-trajectory tooling consume (see ``BENCH_3.json``); keep the
    payloads plain dicts/lists of JSON scalars.
    """

    def _emit(name: str, payload) -> pathlib.Path:
        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        with capsys.disabled():
            print(f"[json saved to {path}]")
        return path

    return _emit
