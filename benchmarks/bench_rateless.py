"""B6 — Rateless streaming vs one-round and adaptive: bytes and throughput.

Three measurements:

1. **Bytes vs true difference** — clean (noise-free) replica pairs with
   ``d`` genuinely different points, ``d`` swept geometrically.  The
   one-round sketch ships every grid level sized for ``k``; adaptive pays
   an estimation round plus conservatively sized windows; rateless streams
   fixed-schedule increments until Bob's resumable peel succeeds, so its
   bytes track ``d`` itself.
2. **Bytes vs set size** — ``d`` held fixed while ``n`` grows 16x.  The
   rateless stream stops after the same number of increments regardless
   of ``n``: bytes depend on the difference, not the sets.
3. **Sessions/sec over loopback TCP** — the bench_serve harness shape
   (one server, semaphore-gated async Bobs) for adaptive vs rateless.
   A small-diff rateless sync is one tiny increment and one ack, no
   estimator round, so it wins on throughput as well as bytes.

What to expect: at small ``d`` the rateless stream undercuts adaptive on
both bytes and sessions/sec (the smoke test enforces this — it is the
variant's reason to exist); as ``d`` grows its bytes rise geometrically
with the schedule while staying within a constant factor of the final
table size.  The JSON record (``b6_rateless.json`` /
``b6_rateless_smoke.json``) is the artifact CI consumes; the full run is
copied to ``BENCH_6.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import time

from repro.analysis.tables import Table
from repro.core.adaptive import AdaptiveConfig, AdaptiveReconciler, reconcile_adaptive
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.core.rateless import RatelessConfig, RatelessReconciler, reconcile_rateless
from repro.iblt.backends import available_backends
from repro.serve import ReconciliationServer, sync
from repro.workloads.synthetic import perturbed_pair

DELTA = 2**16
SEED = 0
BACKEND = "numpy" if "numpy" in available_backends() else "pure"

DIFF_SIZES = (2, 8, 32, 128)
SET_SIZES = (100, 400, 1600)
SET_SWEEP_DIFF = 8
WORKLOAD_N = 400
THROUGHPUT_SYNCS = 64
THROUGHPUT_CONCURRENCY = 8

RUNNERS = {
    "one-round": reconcile,
    "adaptive": reconcile_adaptive,
    "rateless": reconcile_rateless,
}


def _workload(d, n=WORKLOAD_N, seed=SEED):
    """Clean replicas: exactly ``d`` moved points, zero noise, so the true
    difference is ``d`` and level-0 reconciliation is a ``~2d``-key decode."""
    return perturbed_pair(seed, n, DELTA, 2, d, 0)


def _config(d):
    return ProtocolConfig(
        delta=DELTA, dimension=2, k=max(8, 2 * d), seed=SEED, backend=BACKEND
    )


# ----------------------------------------------------------- bytes sweeps


def _bytes_row(variant, runner, workload, config):
    result = runner(workload.alice, workload.bob, config)
    assert sorted(result.repaired) == sorted(workload.alice), variant
    transcript = result.transcript
    return {
        "variant": variant,
        "bytes": transcript.total_bytes,
        "rounds": transcript.rounds,
        "messages": len(transcript.message_labels),
    }


def sweep_diff_sizes(diff_sizes=DIFF_SIZES, variants=tuple(RUNNERS)):
    """Bytes on the wire per variant as the true difference grows."""
    rows = []
    for d in diff_sizes:
        workload = _workload(d)
        config = _config(d)
        for variant in variants:
            row = _bytes_row(variant, RUNNERS[variant], workload, config)
            row.update({"d": d, "n": WORKLOAD_N})
            rows.append(row)
    return rows


def sweep_set_sizes(set_sizes=SET_SIZES, d=SET_SWEEP_DIFF):
    """Rateless bytes as the set size grows 16x at a fixed difference."""
    rows = []
    for n in set_sizes:
        workload = _workload(d, n=n)
        config = _config(d)
        row = _bytes_row("rateless", reconcile_rateless, workload, config)
        row.update({"d": d, "n": n})
        rows.append(row)
    return rows


# ------------------------------------------------------ sessions/sec (TCP)


def _client_reconciler(variant, config):
    if variant == "adaptive":
        return AdaptiveReconciler(config, AdaptiveConfig())
    if variant == "rateless":
        return RatelessReconciler(config, RatelessConfig())
    return None


async def _throughput(variants, d, syncs, concurrency):
    workload = _workload(d)
    config = _config(d)
    rows = []
    async with ReconciliationServer(
        config, workload.alice, max_sessions=concurrency
    ) as server:
        host, port = server.address
        for variant in variants:
            await sync(host, port, config, workload.bob,
                       variant=variant, timeout=60)  # warm caches
            reconciler = _client_reconciler(variant, config)
            gate = asyncio.Semaphore(concurrency)

            async def one_sync():
                async with gate:
                    return await sync(
                        host, port, config, workload.bob, variant=variant,
                        timeout=60, reconciler=reconciler,
                    )

            started = time.perf_counter()
            results = await asyncio.gather(*[one_sync() for _ in range(syncs)])
            wall = time.perf_counter() - started
            assert all(
                sorted(r.repaired) == sorted(workload.alice) for r in results
            )
            rows.append({
                "variant": variant,
                "d": d,
                "syncs": syncs,
                "concurrency": concurrency,
                "wall_s": round(wall, 4),
                "sessions_per_sec": round(syncs / wall, 2),
            })
    return rows


def sweep_throughput(
    variants=("adaptive", "rateless"),
    d=SET_SWEEP_DIFF,
    syncs=THROUGHPUT_SYNCS,
    concurrency=THROUGHPUT_CONCURRENCY,
):
    return asyncio.run(_throughput(variants, d, syncs, concurrency))


# -------------------------------------------------------------- rendering


def experiment(
    diff_sizes=DIFF_SIZES,
    set_sizes=SET_SIZES,
    syncs=THROUGHPUT_SYNCS,
    concurrency=THROUGHPUT_CONCURRENCY,
):
    """Run all three measurements; returns (payload, rendered text)."""
    diff_rows = sweep_diff_sizes(diff_sizes)
    size_rows = sweep_set_sizes(set_sizes)
    throughput_rows = sweep_throughput(
        d=min(SET_SWEEP_DIFF, max(diff_sizes)),
        syncs=syncs, concurrency=concurrency,
    )

    diff_table = Table(
        ["d", "variant", "bytes", "rounds", "messages"],
        title=(
            f"B6a: bytes on the wire vs true difference "
            f"(n={WORKLOAD_N}, delta=2^16, backend={BACKEND})"
        ),
    )
    for row in diff_rows:
        diff_table.add_row([
            row["d"], row["variant"], row["bytes"],
            row["rounds"], row["messages"],
        ])

    size_table = Table(
        ["n", "d", "bytes", "messages"],
        title=f"B6b: rateless bytes vs set size (fixed d={SET_SWEEP_DIFF})",
    )
    for row in size_rows:
        size_table.add_row([row["n"], row["d"], row["bytes"], row["messages"]])

    tput_table = Table(
        ["variant", "d", "syncs", "concurrency", "sessions/s"],
        title="B6c: loopback-TCP throughput, adaptive vs rateless",
    )
    for row in throughput_rows:
        tput_table.add_row([
            row["variant"], row["d"], row["syncs"],
            row["concurrency"], f"{row['sessions_per_sec']:.1f}",
        ])

    payload = {
        "experiment": "b6_rateless",
        "backend": BACKEND,
        "workload": {
            "n": WORKLOAD_N, "delta": DELTA, "dimension": 2,
            "noise": 0, "seed": SEED,
        },
        "rateless_config": {
            "level": RatelessConfig().level,
            "initial_cells": RatelessConfig().initial_cells,
            "growth": RatelessConfig().growth,
            "max_increments": RatelessConfig().max_increments,
        },
        "bytes_vs_diff": diff_rows,
        "bytes_vs_set_size": size_rows,
        "throughput": throughput_rows,
    }
    text = "\n\n".join(
        [diff_table.render(), size_table.render(), tput_table.render()]
    )
    return payload, text


def _by_variant(rows, d):
    return {
        row["variant"]: row for row in rows if row["d"] == d
    }


def _check_contract(payload, small_d):
    """The acceptance contract: rateless bytes track the difference and
    beat adaptive on both metrics at small diffs."""
    diff_rows = payload["bytes_vs_diff"]
    small = _by_variant(diff_rows, small_d)
    assert small["rateless"]["bytes"] < small["adaptive"]["bytes"], (
        "rateless must undercut adaptive's bytes at small differences"
    )
    rateless_bytes = [
        row["bytes"] for row in diff_rows if row["variant"] == "rateless"
    ]
    assert rateless_bytes[0] < rateless_bytes[-1], (
        "rateless bytes must grow with the true difference"
    )
    assert all(
        earlier <= later
        for earlier, later in zip(rateless_bytes, rateless_bytes[1:])
    ), "rateless bytes must be monotone in the difference size"
    size_bytes = [row["bytes"] for row in payload["bytes_vs_set_size"]]
    assert max(size_bytes) <= 1.5 * min(size_bytes), (
        "rateless bytes must not track the set size"
    )
    throughput = {row["variant"]: row for row in payload["throughput"]}
    if {"adaptive", "rateless"} <= set(throughput):
        assert (
            throughput["rateless"]["sessions_per_sec"]
            > throughput["adaptive"]["sessions_per_sec"]
        ), "small-diff rateless syncs must beat adaptive on sessions/sec"


def test_rateless_bench(benchmark, emit, emit_json):
    """The recorded run: full sweeps plus the TCP throughput comparison."""
    holder = {}

    def run():
        holder["payload"], holder["text"] = experiment()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b6_rateless", holder["text"])
    emit_json("b6_rateless", holder["payload"])
    _check_contract(holder["payload"], small_d=DIFF_SIZES[0])


def test_rateless_smoke(emit, emit_json):
    """CI smoke: tiny sweeps, same contract — fails the build if rateless
    ever loses to adaptive on bytes or throughput at small diffs."""
    # d=32 needs several increments while d=2 fits in one, so the
    # bytes-grow-with-difference assertion has room to bite.
    payload, text = experiment(
        diff_sizes=(2, 32), set_sizes=(100, 400), syncs=12, concurrency=4
    )
    emit("b6_rateless_smoke", text)
    emit_json("b6_rateless_smoke", payload)
    _check_contract(payload, small_d=2)


if __name__ == "__main__":
    print(experiment()[1])
