"""A4 — Ablation: strata vs min-wise difference estimation (table).

Claim under test: the Difference Digest's design choice (also inherited by
this library's adaptive protocol and exact-IBF baseline).  Min-wise sketches
estimate the *relative* difference well and collapse on small absolute
differences over large sets; strata estimators stay within a small factor
everywhere, at a wire cost independent of the set size.
"""

from __future__ import annotations

import random

from benchmarks._harness import run_once
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.iblt.minwise import MinwiseEstimator
from repro.iblt.strata import StrataConfig, StrataEstimator

CASES = [
    # (shared, diff per side)
    (5000, 2),
    (5000, 20),
    (5000, 200),
    (500, 200),
]
TRIALS = 5


def build_keys(rng, shared, diff):
    base = [rng.getrandbits(60) for _ in range(shared)]
    alice = base + [rng.getrandbits(60) for _ in range(diff)]
    bob = base + [rng.getrandbits(60) for _ in range(diff)]
    return alice, bob


def experiment() -> str:
    table = Table(
        ["shared", "true diff", "strata est", "minwise est",
         "strata kbit", "minwise kbit"],
        title=f"A4: strata vs min-wise difference estimation "
              f"({TRIALS} trials each)",
    )
    for shared, diff in CASES:
        strata_estimates, minwise_estimates = [], []
        strata_bits = minwise_bits = 0
        for trial in range(TRIALS):
            rng = random.Random(100 * shared + diff + trial)
            alice_keys, bob_keys = build_keys(rng, shared, diff)
            strata_config = StrataConfig(seed=trial)
            strata_a = StrataEstimator(strata_config)
            strata_b = StrataEstimator(strata_config)
            strata_a.insert_all(alice_keys)
            strata_b.insert_all(bob_keys)
            strata_estimates.append(strata_a.estimate_difference(strata_b))
            strata_bits = strata_a.serialized_bits()

            minwise_a = MinwiseEstimator(256, seed=trial)
            minwise_b = MinwiseEstimator(256, seed=trial)
            minwise_a.insert_all(alice_keys)
            minwise_b.insert_all(bob_keys)
            minwise_estimates.append(minwise_a.estimate_difference(minwise_b))
            minwise_bits = minwise_a.serialized_bits()
        table.add_row([
            shared, 2 * diff,
            summarize([float(e) for e in strata_estimates]).format(0),
            summarize([float(e) for e in minwise_estimates]).format(0),
            f"{strata_bits / 1000:.1f}",
            f"{minwise_bits / 1000:.1f}",
        ])
    return table.render()


def test_ablation_estimators(benchmark, emit):
    emit("a4_ablation_estimators", run_once(benchmark, experiment))
