"""E4 — Robustness to the noise magnitude (figure).

Claim under test: the defining contrast of robust reconciliation.

* exact IBF's communication jumps from tiny (noise 0: only true differences)
  to ``Θ(n)`` the moment noise is nonzero, then stays there;
* the robust protocol's communication is *flat across the entire sweep* —
  noise only moves the decode level, not the sketch sizes — and its repaired
  EMD degrades gracefully (proportionally to the noise itself).
"""

from __future__ import annotations

from benchmarks._harness import kbits, run_once
from repro.analysis.tables import Table
from repro.baselines.exact_ibf import ExactIBF
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.workloads.synthetic import perturbed_pair

NOISES = (0, 1, 4, 16, 64, 256)
DELTA = 2**20
N = 500
TRUE_K = 4
SEED = 0


def experiment() -> str:
    table = Table(
        ["noise ±", "robust (kbit)", "robust level", "robust EMD",
         "exact-ibf (kbit)", "ibf 'differences'"],
        title=f"E4: noise sweep  (n={N}, true_k={TRUE_K}, delta=2^20, d=2)",
    )
    config = ProtocolConfig(delta=DELTA, dimension=2, k=2 * TRUE_K, seed=SEED)
    for noise in NOISES:
        workload = perturbed_pair(SEED, N, DELTA, 2, TRUE_K, noise)
        robust = reconcile(workload.alice, workload.bob, config)
        robust_emd = emd(workload.alice, robust.repaired, backend="scipy")
        ibf = ExactIBF(DELTA, 2, seed=SEED).run(workload.alice, workload.bob)
        table.add_row([
            noise,
            kbits(robust.transcript.total_bits),
            robust.level,
            f"{robust_emd:.0f}",
            kbits(ibf.total_bits),
            ibf.info["difference"],
        ])
    return table.render()


def test_noise_sweep(benchmark, emit):
    emit("e4_noise_sweep", run_once(benchmark, experiment))
