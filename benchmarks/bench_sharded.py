"""B2 — Sharded engine: encode/decode throughput and bits vs shard count.

Claims under test:

1. On a 1e5-point noise-free synthetic workload, the sharded engine with 4
   shards produces a repaired multiset **equal** to the unsharded
   protocol's (noise-free differences repair at level 0, where the
   protocol's output is fully determined) while being **>= 2x faster**
   wall-clock on encode+decode — on every executor, including the process
   pool.  The speedup is architectural, not parallelism (CI boxes may have
   one core): per-shard key passes stay in numpy arrays end-to-end, probed
   levels reuse one pass per shard, repair planning touches only decoded
   surplus cells, and the v2 columnar wire codec replaces ~3 Python calls
   per IBLT cell with two ``packbits``/``unpackbits`` kernels.
2. Total wire bits grow only mildly with shard count (per-shard sketches
   are sized to ``ceil(k / S)``).

Engines are constructed and warmed before timing (pool spawn and numpy
first-call costs are one-time serving costs, not per-reconciliation work).
"""

from __future__ import annotations

import time

from repro.analysis.tables import Table
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.iblt.backends import available_backends
from repro.scale import ShardedReconciler
from repro.workloads.synthetic import perturbed_pair

DELTA = 2**20
SEED = 0
HAVE_NUMPY = "numpy" in available_backends()
BACKEND = "numpy" if HAVE_NUMPY else "pure"

#: (n, true_k) regimes; k = 2 * true_k.  The 1e6 row keeps true_k moderate
#: so the *unsharded* baseline's O(removals x n) repair stays runnable.
REGIMES = ((100_000, 256), (1_000_000, 64))


def _workload(n: int, true_k: int):
    return perturbed_pair(SEED, n, DELTA, 2, true_k, 0, noise_model="none")


def _warm(engine, encode, decode):
    tiny = _workload(256, 4)
    decode(engine, encode(engine, tiny.alice), tiny.bob)


def _measure(engine, workload, encode, decode, rounds: int = 1):
    best_encode = best_decode = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        payload = encode(engine, workload.alice)
        mid = time.perf_counter()
        result = decode(engine, payload, workload.bob)
        end = time.perf_counter()
        best_encode = min(best_encode, mid - start)
        best_decode = min(best_decode, end - mid)
    return best_encode, best_decode, len(payload) * 8, sorted(result.repaired)


def _unsharded(n: int, true_k: int, workload):
    config = ProtocolConfig(
        delta=DELTA, dimension=2, k=2 * true_k, seed=SEED, backend=BACKEND
    )
    engine = HierarchicalReconciler(config)
    encode = lambda e, pts: e.encode(pts)  # noqa: E731
    decode = lambda e, payload, pts: e.decode_and_repair(payload, pts)  # noqa: E731
    _warm(engine, encode, decode)
    return _measure(engine, workload, encode, decode)


def _sharded(n: int, true_k: int, workload, shards: int, executor: str):
    config = ProtocolConfig(
        delta=DELTA, dimension=2, k=2 * true_k, seed=SEED, backend=BACKEND,
        shards=shards, workers=2 if executor != "serial" else None,
        executor=executor,
    )
    encode = lambda e, pts: e.encode(pts)  # noqa: E731
    decode = lambda e, payload, pts: e.decode_and_repair(payload, pts)  # noqa: E731
    with ShardedReconciler(config) as engine:
        _warm(engine, encode, decode)
        return _measure(engine, workload, encode, decode)


def experiment(regimes=REGIMES) -> str:
    table = Table(
        [
            "n", "engine", "executor", "encode (s)", "decode (s)",
            "total (s)", "speedup", "wire (kbit)", "equal",
        ],
        title=(
            "B2: sharded engine vs unsharded one-round "
            f"(delta=2^20, d=2, noise-free, backend={BACKEND})"
        ),
    )
    for n, true_k in regimes:
        workload = _workload(n, true_k)
        enc_u, dec_u, bits_u, repaired_u = _unsharded(n, true_k, workload)
        base_total = enc_u + dec_u
        table.add_row([
            n, "unsharded", "-", f"{enc_u:.3f}", f"{dec_u:.3f}",
            f"{base_total:.3f}", "1.0x", f"{bits_u / 1000:.0f}", "-",
        ])
        shard_plans = [(2, "serial"), (4, "serial"), (8, "serial"),
                       (4, "thread"), (4, "process")]
        for shards, executor in shard_plans:
            enc_s, dec_s, bits_s, repaired_s = _sharded(
                n, true_k, workload, shards, executor
            )
            total = enc_s + dec_s
            table.add_row([
                n, f"sharded-{shards}", executor, f"{enc_s:.3f}",
                f"{dec_s:.3f}", f"{total:.3f}",
                f"{base_total / total:.1f}x", f"{bits_s / 1000:.0f}",
                str(repaired_s == repaired_u),
            ])
    return table.render()


def test_sharded_table(benchmark, emit):
    result_holder = {}

    def run():
        result_holder["text"] = experiment()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b2_sharded", result_holder["text"])


def test_sharded_speedup_floor(emit):
    """The acceptance bar: 4 shards + process executor on 1e5 points must
    repair to the exact unsharded multiset >= 2x faster."""
    n, true_k = 100_000, 256
    workload = _workload(n, true_k)
    enc_u, dec_u, _, repaired_u = _unsharded(n, true_k, workload)
    enc_s, dec_s, _, repaired_s = _sharded(n, true_k, workload, 4, "process")
    speedup = (enc_u + dec_u) / (enc_s + dec_s)
    lines = [
        "B2 acceptance: sharded (4 shards, process executor) vs unsharded",
        f"workload: n={n}, true_k={true_k}, delta=2^20, d=2, noise-free, "
        f"backend={BACKEND}",
        f"unsharded: encode {enc_u:.3f}s decode {dec_u:.3f}s "
        f"total {enc_u + dec_u:.3f}s",
        f"sharded  : encode {enc_s:.3f}s decode {dec_s:.3f}s "
        f"total {enc_s + dec_s:.3f}s",
        f"speedup  : {speedup:.2f}x",
        f"repaired multiset equal: {repaired_s == repaired_u}",
    ]
    emit("b2_sharded_acceptance", "\n".join(lines))
    assert repaired_s == repaired_u, "sharded repair diverged from unsharded"
    assert speedup >= 2.0, f"sharded only {speedup:.2f}x faster"


def test_sharded_smoke(emit):
    """CI smoke: the full measurement pipeline at tiny n (seconds, not
    minutes); records an artifact so the job uploads real output."""
    text = experiment(regimes=((2_000, 16),))
    emit("b2_sharded_smoke", text)


if __name__ == "__main__":
    print(experiment())
