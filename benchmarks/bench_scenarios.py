"""T1 — The scenario suite (table).

Claim under test: across qualitatively different data distributions —
uniform, clustered, sensor fusion, geospatial — the robust protocols ship a
small fraction of what exact reconciliation does under noise, at bounded
EMD cost; the fixed-grid strawman is erratic (its one scale is wrong for at
least one scenario).
"""

from __future__ import annotations

from benchmarks._harness import run_once
from repro.analysis.methods import default_methods, measure_emd
from repro.analysis.tables import Table
from repro.workloads.geo import geo_pair
from repro.workloads.sensors import sensor_pair
from repro.workloads.synthetic import clustered_pair, perturbed_pair

DELTA = 2**20
N = 2000
SEED = 0
METHODS = ("robust", "robust-adaptive", "exact-ibf", "fixed-grid",
           "full-transfer")


def scenarios():
    return [
        ("uniform", perturbed_pair(SEED, N, DELTA, 2, true_k=8, noise=4)),
        ("clustered", clustered_pair(SEED, N, DELTA, 2, true_k=8, noise=4)),
        ("sensor", sensor_pair(SEED, N, DELTA, 2, sensor_noise=4.0,
                               missed=5, ghosts=3)),
        ("geo", geo_pair(SEED, N, DELTA, true_k=8, noise=4.0)),
        # Noise-free control: here exact protocols shine (CPI most of all —
        # ~61 bits per difference) and robust pays its level tax for nothing.
        ("clean", perturbed_pair(SEED, N, DELTA, 2, true_k=8, noise=0)),
    ]


def experiment() -> str:
    table = Table(
        ["scenario", "method", "kbit", "rounds", "EMD~"],
        title=f"T1: scenario suite  (n={N}, delta=2^20, d=2, k=16)",
    )
    for name, workload in scenarios():
        methods = default_methods(workload, k=16, seed=SEED)
        method_list = METHODS + ("cpi",) if name == "clean" else METHODS
        for method in method_list:
            if method not in methods:
                continue
            run = methods[method]()
            if run.failed:
                table.add_row([name, method, "-", "-", "fail"])
                continue
            quality = measure_emd(workload, run.repaired)
            table.add_row([
                name, method, f"{run.bits / 1000:.1f}", run.rounds,
                f"{quality:.0f}",
            ])
    return table.render()


def test_scenarios(benchmark, emit):
    emit("t1_scenarios", run_once(benchmark, experiment))
