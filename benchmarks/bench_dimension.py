"""E5 — Approximation quality vs dimension (figure).

Claim under test: the protocol's approximation factor is ``O(d)`` — the gap
between the split probability (``||.||_1 / 2^ℓ``) and the cell diameter
(``d · 2^ℓ``).  The measured ratio ``EMD(S_A, S'_B) / EMD_k`` should grow
at most linearly with ``d`` and sit far below the analysed constant.
"""

from __future__ import annotations

from benchmarks._harness import kbits, run_once
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.core.bounds import approximation_factor
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.emd.partial import emd_k
from repro.workloads.synthetic import perturbed_pair

DIMENSIONS = (1, 2, 3, 4, 6, 8)
DELTA = 2**12
N = 250
TRUE_K = 4
NOISE = 3
SEEDS = (0, 1, 2)


def experiment() -> str:
    table = Table(
        ["d", "bits (kbit)", "ratio EMD/EMD_k", "analysed bound"],
        title=f"E5: approximation ratio vs dimension  (n={N}, "
              f"true_k={TRUE_K}, noise=±{NOISE}, delta=2^12, {len(SEEDS)} seeds)",
    )
    for dimension in DIMENSIONS:
        ratios, bits = [], []
        for seed in SEEDS:
            workload = perturbed_pair(
                seed, N, DELTA, dimension, TRUE_K, NOISE
            )
            config = ProtocolConfig(
                delta=DELTA, dimension=dimension, k=2 * TRUE_K, seed=seed
            )
            result = reconcile(workload.alice, workload.bob, config)
            after = emd(workload.alice, result.repaired, backend="scipy")
            floor = emd_k(workload.alice, workload.bob, 2 * TRUE_K,
                          backend="scipy")
            bits.append(result.transcript.total_bits)
            if floor > 0:
                ratios.append(after / floor)
        table.add_row([
            dimension,
            kbits(sum(bits) / len(bits)),
            summarize(ratios).format(2) if ratios else "-",
            f"{approximation_factor(dimension):.0f}",
        ])
    return table.render()


def test_dimension(benchmark, emit):
    emit("e5_dimension", run_once(benchmark, experiment))
