"""T2 — One-round vs two-round adaptive (table).

Claim under test: the one-round protocol pays a ``log Δ`` level tax; the
adaptive variant replaces it with a fixed estimator cost plus one sized
window.  Adaptive should lose slightly at small ``k`` / small ``Δ``
(estimators dominate) and win by multiples at large ``k`` / large ``Δ`` —
approaching the lower bound's scaling.
"""

from __future__ import annotations

from benchmarks._harness import kbits, run_once
from repro.analysis.tables import Table
from repro.core.adaptive import reconcile_adaptive
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.workloads.synthetic import perturbed_pair

CASES = [
    # (delta_log2, k)
    (12, 4), (12, 32),
    (20, 4), (20, 32), (20, 128),
]
N = 1500
NOISE = 4
SEED = 0


def experiment() -> str:
    table = Table(
        ["delta", "k", "one-round (kbit)", "adaptive (kbit)",
         "estimators (kbit)", "window (kbit)", "saving"],
        title=f"T2: one-round vs adaptive  (n={N}, noise=±{NOISE}, d=2)",
    )
    for delta_log2, k in CASES:
        delta = 2**delta_log2
        workload = perturbed_pair(SEED, N, delta, 2, true_k=min(k, 16),
                                  noise=NOISE)
        config = ProtocolConfig(delta=delta, dimension=2, k=k, seed=SEED)
        one_round = reconcile(workload.alice, workload.bob, config)
        adaptive = reconcile_adaptive(workload.alice, workload.bob, config)
        saving = (
            one_round.transcript.total_bits / adaptive.transcript.total_bits
        )
        table.add_row([
            f"2^{delta_log2}", k,
            kbits(one_round.transcript.total_bits),
            kbits(adaptive.transcript.total_bits),
            kbits(adaptive.transcript.bob_to_alice_bits),
            kbits(adaptive.transcript.alice_to_bob_bits),
            f"{saving:.1f}x",
        ])
    return table.render()


def test_adaptive(benchmark, emit):
    emit("t2_adaptive", run_once(benchmark, experiment))
