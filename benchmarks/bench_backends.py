"""B1 — IBLT backend comparison: pure-Python reference vs numpy vectorized.

Claim under test: batch cell updates over contiguous uint64 arrays make
sketch construction — the protocol's dominant cost — at least 5× faster
than the per-key pure-Python reference at n >= 1e5 keys, while remaining
bit-identical on the wire (the differential test suite holds the identity;
this experiment holds the speed).

Two granularities:

* raw ``IBLT.insert_many`` over one table (the backend hot loop in
  isolation), and
* full hierarchy sketch construction (``HierarchicalReconciler.encode``)
  plus subtract+decode, where the grid's shared key pass dilutes the gap.
"""

from __future__ import annotations

import random
import time

from repro.analysis.tables import Table
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.iblt.backends import available_backends
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells
from repro.workloads.synthetic import perturbed_pair

SIZES = (10_000, 100_000)
DELTA = 2**20
TRUE_K = 8
SEED = 0

HAVE_NUMPY = "numpy" in available_backends()


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _insert_many_seconds(backend: str, keys, cells: int) -> float:
    config = IBLTConfig(cells=cells, q=4, key_bits=64, seed=SEED)
    table = IBLT(config, backend=backend)
    return _timed(lambda: table.insert_many(keys))


def _encode_seconds(backend: str, points) -> tuple[float, bytes]:
    config = ProtocolConfig(
        delta=DELTA, dimension=2, k=2 * TRUE_K, seed=SEED, backend=backend
    )
    reconciler = HierarchicalReconciler(config)
    holder = {}
    seconds = _timed(lambda: holder.setdefault("payload", reconciler.encode(points)))
    return seconds, holder["payload"]


def experiment() -> str:
    table = Table(
        ["n", "operation", "pure (s)", "numpy (s)", "speedup"],
        title="B1: IBLT backend comparison (delta=2^20, d=2, q=4)",
    )
    rng = random.Random(SEED)
    for n in SIZES:
        keys = [rng.getrandbits(64) for _ in range(n)]
        cells = recommended_cells(max(64, n // 50))
        pure_s = _insert_many_seconds("pure", keys, cells)
        numpy_s = _insert_many_seconds("numpy", keys, cells) if HAVE_NUMPY else float("nan")
        table.add_row([
            n, "insert_many", f"{pure_s:.3f}", f"{numpy_s:.3f}",
            f"{pure_s / numpy_s:.1f}x" if HAVE_NUMPY else "n/a",
        ])

        workload = perturbed_pair(SEED, n, DELTA, 2, TRUE_K, 4)
        pure_s, pure_payload = _encode_seconds("pure", workload.alice)
        if HAVE_NUMPY:
            numpy_s, numpy_payload = _encode_seconds("numpy", workload.alice)
            assert numpy_payload == pure_payload, "backends diverged on the wire"
        else:
            numpy_s = float("nan")
        table.add_row([
            n, "encode", f"{pure_s:.3f}", f"{numpy_s:.3f}",
            f"{pure_s / numpy_s:.1f}x" if HAVE_NUMPY else "n/a",
        ])
    return table.render()


def test_backend_table(benchmark, emit):
    result_holder = {}

    def run():
        result_holder["text"] = experiment()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b1_backends", result_holder["text"])


def test_backend_speedup_floor():
    """The acceptance bar: numpy >= 5x pure on 1e5-key sketch construction."""
    if not HAVE_NUMPY:
        import pytest

        pytest.skip("numpy backend unavailable")
    rng = random.Random(SEED)
    n = 100_000
    keys = [rng.getrandbits(64) for _ in range(n)]
    cells = recommended_cells(n // 50)
    pure_s = _insert_many_seconds("pure", keys, cells)
    numpy_s = _insert_many_seconds("numpy", keys, cells)
    assert pure_s / numpy_s >= 5.0, (
        f"numpy backend only {pure_s / numpy_s:.1f}x faster "
        f"(pure {pure_s:.3f}s, numpy {numpy_s:.3f}s)"
    )


def test_decode_agrees_across_backends(benchmark):
    """Subtract+decode timing on both backends, with identical results."""
    workload = perturbed_pair(SEED, 20_000, DELTA, 2, TRUE_K, 4)
    outcomes = {}
    for backend in ["pure"] + (["numpy"] if HAVE_NUMPY else []):
        config = ProtocolConfig(
            delta=DELTA, dimension=2, k=2 * TRUE_K, seed=SEED, backend=backend
        )
        reconciler = HierarchicalReconciler(config)
        payload = reconciler.encode(workload.alice)
        result = reconciler.decode_and_repair(payload, workload.bob)
        outcomes[backend] = (result.level, sorted(result.repaired))
    if HAVE_NUMPY:
        assert outcomes["pure"] == outcomes["numpy"]

    config = ProtocolConfig(delta=DELTA, dimension=2, k=2 * TRUE_K, seed=SEED)
    reconciler = HierarchicalReconciler(config)
    payload = reconciler.encode(workload.alice)
    benchmark.pedantic(
        lambda: reconciler.decode_and_repair(payload, workload.bob),
        rounds=3, iterations=1, warmup_rounds=0,
    )


if __name__ == "__main__":
    print(experiment())
