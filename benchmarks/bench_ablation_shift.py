"""A1 — Ablation: the random grid offset (table).

Claim under test: the random shift is load-bearing.  On boundary-aligned
data with ±1 noise, a deterministic (zero-shift) grid splits ~half of the
noisy pairs at *every* level, so the unshifted protocol must decode far
coarser (or ship far more); the shifted protocol's split probability is
``noise / cell_side`` and it behaves exactly as on benign data.  The
fixed-grid baseline (which is unshifted by construction) collapses on the
same workload.
"""

from __future__ import annotations

from benchmarks._harness import kbits, run_once
from repro.analysis.tables import Table
from repro.baselines.fixed_grid import FixedGridQuantize
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.errors import ReconciliationFailure
from repro.workloads.adversarial import boundary_pair

DELTA = 2**12
N = 400
TRUE_K = 4
CELL_WIDTH = 64
SEED = 0


def experiment() -> str:
    workload = boundary_pair(SEED, N, DELTA, 2, TRUE_K, CELL_WIDTH)
    table = Table(
        ["variant", "kbit", "decode level", "EMD after"],
        title=f"A1: random-shift ablation on boundary-aligned data  "
              f"(n={N}, noise=±1 on cell boundaries of width {CELL_WIDTH})",
    )
    for label, random_shift in (("shifted (paper)", True), ("unshifted", False)):
        config = ProtocolConfig(
            delta=DELTA, dimension=2, k=2 * TRUE_K, seed=SEED,
            random_shift=random_shift,
        )
        try:
            result = reconcile(workload.alice, workload.bob, config)
            after = emd(workload.alice, result.repaired, backend="scipy")
            table.add_row([
                label, kbits(result.transcript.total_bits), result.level,
                f"{after:.0f}",
            ])
        except ReconciliationFailure:
            table.add_row([label, "-", "-", "fail"])

    for level, label in ((6, "fixed-grid @64"), (8, "fixed-grid @256")):
        baseline = FixedGridQuantize(DELTA, 2, level=level, seed=SEED)
        try:
            result = baseline.run(workload.alice, workload.bob)
            after = emd(workload.alice, result.repaired, backend="scipy")
            table.add_row([
                label, kbits(result.total_bits),
                result.info["level"], f"{after:.0f}",
            ])
        except ReconciliationFailure:
            table.add_row([label, "-", level, "fail"])
    return table.render()


def test_ablation_shift(benchmark, emit):
    emit("a1_ablation_shift", run_once(benchmark, experiment))
