"""B8 — Resilience: what resumption saves and what shedding bounds.

Two measurements:

1. **Resumption payoff** — a rateless sync is cut by a deterministic
   chaos-proxy disconnect after ``cut`` increments; the resilient client
   reconnects with its resume token and the server streams only the
   remaining increments.  Recorded per cut point: the bytes the resumed
   connection actually shipped vs a from-scratch run of the same stream,
   and their ratio.  The later the cut, the less a retry costs — the
   rateless promise (bytes proportional to the difference) extended
   across connection failures.
2. **Overload shedding** — a 1-slot server is hit by a burst of resilient
   clients, once with the shedding watermark enabled (``max_pending=0``,
   arrivals beyond the slot get a typed ``RETRY_LATER`` with a
   retry-after hint) and once with the pre-resilience unbounded queue.
   Recorded: per-client completion latency (p50/p95), how many arrivals
   were shed, and that every client eventually succeeded in both modes.

What to expect: resumed bytes strictly below from-scratch bytes at every
cut point, with the ratio falling as the cut moves later; under overload
every shed is typed (no client ever hangs or fails), and the burst
completes with a bounded p95 because refused clients back off instead of
piling onto the accept queue.  The JSON record (``b8_resilience.json`` /
``b8_resilience_smoke.json``) is the artifact CI consumes; the full run
is copied to ``BENCH_8.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import time

from repro.analysis.tables import Table
from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig, reconcile_rateless
from repro.net.channel import Direction
from repro.net.faults import ChaosProxy, FaultPlan
from repro.serve import ReconciliationServer, RetryPolicy, resilient_sync
from repro.session.rateless import RatelessResumeState
from repro.workloads.synthetic import perturbed_pair

DELTA = 2**16
SEED = 0
#: Small initial segment so the stream spans many increments: every cut
#: point in the sweep lands mid-stream.
RATELESS = RatelessConfig(initial_cells=8)

CUT_POINTS = (1, 2, 4)
BURST_CLIENTS = 16


def _workload():
    """Clean replicas (no noise): exactly 24 moved points, so every
    variant repairs Bob to exactly Alice's multiset."""
    return perturbed_pair(SEED, 200, DELTA, 2, 24, 0)


def _config():
    return ProtocolConfig(delta=DELTA, dimension=2, k=8, seed=SEED)


def _policy(seed=0):
    return RetryPolicy(
        attempts=10, base_delay=0.005, max_delay=0.05, seed=seed
    )


# ------------------------------------------------------- resumption payoff


async def _resume_run(config, workload, cut):
    plan = FaultPlan(disconnect=(Direction.ALICE_TO_BOB, cut))
    resume = RatelessResumeState()
    async with ReconciliationServer(
        config, workload.alice, rateless=RATELESS, timeout=5.0
    ) as server:
        async with ChaosProxy(*server.address, plan) as proxy:
            result = await resilient_sync(
                *proxy.address, config, workload.bob,
                variant="rateless", rateless=RATELESS,
                policy=_policy(), resume=resume, timeout=5,
            )
        await server.wait_for_sessions(2)
        (ok_stats,) = [s for s in server.stats if s.ok]
        return result, ok_stats, server.summary()


def sweep_resumption(cut_points=CUT_POINTS):
    """Bytes shipped by the resumed connection vs a from-scratch stream."""
    config = _config()
    workload = _workload()
    clean = reconcile_rateless(workload.alice, workload.bob, config, RATELESS)
    scratch_bytes = clean.transcript.alice_to_bob_bytes
    rows = []
    for cut in cut_points:
        result, ok_stats, summary = asyncio.run(
            _resume_run(config, workload, cut)
        )
        assert sorted(result.repaired) == sorted(clean.repaired), cut
        assert summary["resumed"] == 1, cut
        resumed_bytes = ok_stats.transcript.alice_to_bob_bytes
        rows.append({
            "cut_after_increments": cut,
            "resumed_from": ok_stats.resumed_from,
            "scratch_bytes": scratch_bytes,
            "resumed_bytes": resumed_bytes,
            "ratio": round(resumed_bytes / scratch_bytes, 4),
        })
    return rows


# ------------------------------------------------------- overload shedding


async def _burst(config, workload, clients, max_pending):
    latencies = []

    async def one_client(i):
        started = time.perf_counter()
        result = await resilient_sync(
            *server.address, config, workload.bob,
            policy=_policy(seed=i), timeout=10,
        )
        latencies.append(time.perf_counter() - started)
        return result

    async with ReconciliationServer(
        config, workload.alice, max_sessions=1, max_pending=max_pending,
        retry_after_hint=0.01,
    ) as server:
        results = await asyncio.gather(*[
            one_client(i) for i in range(clients)
        ])
        while server.summary()["ok"] < clients:
            await asyncio.sleep(0.005)
        summary = server.summary()
    expected = sorted(workload.alice)
    assert all(sorted(r.repaired) == expected for r in results)
    return latencies, summary


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[int(q * (len(ordered) - 1))]


def sweep_shedding(clients=BURST_CLIENTS):
    """One burst against a 1-slot server, shed vs queued admission."""
    config = _config()
    workload = _workload()
    rows = []
    for mode, max_pending in (("shed", 0), ("queue", None)):
        latencies, summary = asyncio.run(
            _burst(config, workload, clients, max_pending)
        )
        rows.append({
            "mode": mode,
            "clients": clients,
            "ok": summary["ok"],
            "shed": summary["shed"],
            "p50_ms": round(_percentile(latencies, 0.50) * 1000, 2),
            "p95_ms": round(_percentile(latencies, 0.95) * 1000, 2),
        })
    return rows


# -------------------------------------------------------------- rendering


def experiment(cut_points=CUT_POINTS, clients=BURST_CLIENTS):
    """Run both measurements; returns (payload, rendered text)."""
    resume_rows = sweep_resumption(cut_points)
    shed_rows = sweep_shedding(clients)

    resume_table = Table(
        ["cut", "resumed_from", "scratch_bytes", "resumed_bytes", "ratio"],
        title=(
            "B8a: bytes shipped by a resumed rateless stream vs from-scratch "
            f"(initial_cells={RATELESS.initial_cells})"
        ),
    )
    for row in resume_rows:
        resume_table.add_row([
            row["cut_after_increments"], row["resumed_from"],
            row["scratch_bytes"], row["resumed_bytes"], f"{row['ratio']:.3f}",
        ])

    shed_table = Table(
        ["mode", "clients", "ok", "shed", "p50 ms", "p95 ms"],
        title="B8b: burst against a 1-slot server, shed vs queued admission",
    )
    for row in shed_rows:
        shed_table.add_row([
            row["mode"], row["clients"], row["ok"], row["shed"],
            row["p50_ms"], row["p95_ms"],
        ])

    payload = {
        "experiment": "b8_resilience",
        "workload": {
            "n": 200, "delta": DELTA, "dimension": 2, "true_k": 24,
            "noise": 0, "seed": SEED,
        },
        "rateless_config": {
            "initial_cells": RATELESS.initial_cells,
            "growth": RATELESS.growth,
            "max_increments": RATELESS.max_increments,
        },
        "resumption": resume_rows,
        "shedding": shed_rows,
    }
    return payload, "\n\n".join([resume_table.render(), shed_table.render()])


def _check_contract(payload):
    """The acceptance contract of the resilience PR."""
    for row in payload["resumption"]:
        assert row["resumed_bytes"] < row["scratch_bytes"], (
            "a resumed stream must ship strictly fewer bytes than a "
            f"from-scratch run (cut={row['cut_after_increments']})"
        )
    ratios = [row["ratio"] for row in payload["resumption"]]
    assert all(
        earlier >= later for earlier, later in zip(ratios, ratios[1:])
    ), "the later the cut, the cheaper the retry"
    shed = {row["mode"]: row for row in payload["shedding"]}
    assert shed["shed"]["ok"] == shed["shed"]["clients"], (
        "every resilient client must succeed despite shedding"
    )
    assert shed["shed"]["shed"] > 0, (
        "a 1-slot server under a burst must shed at least one arrival"
    )
    assert shed["queue"]["shed"] == 0, (
        "the unbounded-queue mode must never shed"
    )


def test_resilience_bench(benchmark, emit, emit_json):
    """The recorded run: full cut sweep plus the shed-vs-queue burst."""
    holder = {}

    def run():
        holder["payload"], holder["text"] = experiment()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b8_resilience", holder["text"])
    emit_json("b8_resilience", holder["payload"])
    _check_contract(holder["payload"])


def test_resilience_smoke(emit, emit_json):
    """CI smoke: one mid-stream cut and a small burst, same contract."""
    payload, text = experiment(cut_points=(2,), clients=6)
    emit("b8_resilience_smoke", text)
    emit_json("b8_resilience_smoke", payload)
    _check_contract(payload)


if __name__ == "__main__":
    print(experiment()[1])
