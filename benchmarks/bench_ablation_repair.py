"""A3 — Ablation: repair victim-selection strategy (table).

Claim under test: which of Bob's in-cell points the repair deletes is a
free choice; the deterministic occurrence-rank rule (paper-faithful) and
the centroid heuristic (keep cluster cores) should differ only marginally
on benign data, with centroid slightly ahead on dense clusters where the
sorted-order victim can be a cluster-core point.
"""

from __future__ import annotations

from benchmarks._harness import run_once
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.workloads.synthetic import clustered_pair, perturbed_pair

DELTA = 2**16
N = 400
TRUE_K = 6
NOISE = 4
SEEDS = tuple(range(6))


def experiment() -> str:
    table = Table(
        ["workload", "strategy", "EMD after (mean)"],
        title=f"A3: repair strategy ablation  (n={N}, true_k={TRUE_K}, "
              f"noise=±{NOISE}, {len(SEEDS)} seeds)",
    )
    workload_makers = {
        "uniform": lambda seed: perturbed_pair(
            seed, N, DELTA, 2, TRUE_K, NOISE
        ),
        "clustered": lambda seed: clustered_pair(
            seed, N, DELTA, 2, TRUE_K, NOISE, clusters=5
        ),
        # Tight clusters: decode-level cells hold many points, so the
        # victim-selection strategies genuinely diverge.
        "dense": lambda seed: clustered_pair(
            seed, N, DELTA, 2, TRUE_K, NOISE, clusters=3, spread=0.002
        ),
    }
    for name, make in workload_makers.items():
        for strategy in ("occurrence", "centroid"):
            emds = []
            for seed in SEEDS:
                workload = make(seed)
                config = ProtocolConfig(
                    delta=DELTA, dimension=2, k=2 * TRUE_K, seed=seed
                )
                result = reconcile(
                    workload.alice, workload.bob, config, strategy=strategy
                )
                emds.append(
                    emd(workload.alice, result.repaired, backend="scipy")
                )
            table.add_row([name, strategy, summarize(emds).format(0)])
    return table.render()


def test_ablation_repair(benchmark, emit):
    emit("a3_ablation_repair", run_once(benchmark, experiment))
