"""B10 — Durability: cold-start time-to-serving and the WAL/snapshot trade.

Three measurements over a real store directory:

1. **Cold start** — time-to-serving for a server restarting over an
   ``n``-point store: open the published snapshot and ``encode()``,
   versus the storeless path (rebuild the sharded sketch from the raw
   point list with ``insert_all`` and encode).  Recorded: both wall
   times, the snapshot size, and their ratio — the payoff durability
   buys on top of crash-safety.
2. **WAL replay rate** — replay seconds, replayed MB/s and deltas/s
   for ``batches`` un-snapshotted WAL records, plus the per-batch
   append overhead the WAL-before-ack contract costs a live insert.
   Replay is timed on a dedicated store whose snapshot is tiny, so the
   open is replay-dominated — subtracting two multi-second snapshot
   loads at n=1e6 would bury the replay in their noise.  (Delta apply
   is O(cells touched), independent of the base sketch size, so the
   rate transfers to the big store.)
3. **Snapshot-vs-replay crossover** — recovery time as the WAL grows,
   against the one-off cost of publishing a snapshot.  The recorded
   crossover (``snapshot_ms / replay_ms_per_batch``) is the batch count
   beyond which rotating the snapshot is cheaper than replaying on the
   next boot — the number ``DurableSketchStore.snapshot_every_bytes``
   is tuned by.

Every phase cross-checks bit-identity: the recovered sketch's encode
must equal the from-scratch encode of the same points.  The JSON record
(``b10_store.json`` / ``b10_store_smoke.json``) is the artifact CI
consumes; the full run (n=1e6) is mirrored to ``BENCH_10.json`` at the
repo root.
"""

from __future__ import annotations

import pathlib
import random
import tempfile
import time

from benchmarks._harness import schema2_payload
from repro.analysis.tables import Table
from repro.core.config import ProtocolConfig
from repro.scale.incremental import ShardedIncrementalSketch
from repro.store import DurableSketchStore
from repro.store.store import WAL_NAME
from repro.workloads.synthetic import uniform_points

DELTA = 2**16
SEED = 0
SHARDS = 4

#: Recorded-run scale: the paper-regime n the serve benchmarks use.
FULL_N = 1_000_000
FULL_BATCHES = 32
BATCH_POINTS = 1_000


def _config() -> ProtocolConfig:
    return ProtocolConfig(
        delta=DELTA, dimension=2, k=8, seed=SEED, shards=SHARDS
    )


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def experiment(n=FULL_N, batches=FULL_BATCHES, batch_points=BATCH_POINTS):
    """Run all three phases in one temp store; returns (payload, text)."""
    config = _config()
    points = uniform_points(random.Random(SEED), n, DELTA, 2)
    live = uniform_points(random.Random(SEED + 1), batches * batch_points,
                          DELTA, 2)
    with tempfile.TemporaryDirectory(prefix="b10-store-") as directory:
        store = DurableSketchStore.open(config, directory)
        _, bulk_s = _timed(lambda: store.bulk_load(points))
        snapshot_bytes = len(store.storage.read("snapshot.bin"))

        # Phase 1: cold start, snapshot only.
        (snap_store, open_snap_s) = _timed(
            lambda: DurableSketchStore.open(config, directory)
        )
        _, encode_snap_s = _timed(snap_store.encode)

        def from_scratch():
            sketch = ShardedIncrementalSketch(config)
            sketch.insert_all(points)
            return sketch.encode()

        scratch_encoded, scratch_s = _timed(from_scratch)
        assert snap_store.encode() == scratch_encoded
        serving_store_s = open_snap_s + encode_snap_s

        # Phase 2: WAL growth + recovery correctness on the big store.
        batch_seconds = []
        for index in range(batches):
            batch = live[index * batch_points:(index + 1) * batch_points]
            _, seconds = _timed(lambda b=batch: store.insert_batch(b))
            batch_seconds.append(seconds)
        wal_bytes = len(store.storage.read(WAL_NAME))

        wal_store = DurableSketchStore.open(config, directory)
        recovery = wal_store.recovery
        assert recovery.replayed_records == batches
        assert recovery.n_points == n + len(live)

        def scratch_with_live():
            sketch = ShardedIncrementalSketch(config)
            sketch.insert_all(points + live)
            return sketch.encode()

        assert wal_store.encode() == scratch_with_live()

        # Phase 2b: replay rate, timed where replay dominates — a store
        # with a token-sized snapshot carrying the same WAL records.
        with tempfile.TemporaryDirectory(prefix="b10-wal-") as wal_dir:
            tiny = DurableSketchStore.open(
                config, wal_dir, snapshot_every_bytes=1 << 62
            )
            tiny.bulk_load(live[:batch_points])
            _, open_tiny_s = _timed(
                lambda: DurableSketchStore.open(config, wal_dir)
            )
            for index in range(batches):
                tiny.insert_batch(
                    live[index * batch_points:(index + 1) * batch_points]
                )
            tiny_wal_bytes = len(tiny.storage.read(WAL_NAME))
            (tiny_recovered, open_tiny_wal_s) = _timed(
                lambda: DurableSketchStore.open(config, wal_dir)
            )
            assert tiny_recovered.recovery.replayed_records == batches
            replayed_deltas = tiny_recovered.recovery.replayed_deltas
            replay_s = max(open_tiny_wal_s - open_tiny_s, 1e-9)

        # Phase 3: snapshot cost -> crossover estimate.
        _, snapshot_s = _timed(store.snapshot)
        (rotated, open_rotated_s) = _timed(
            lambda: DurableSketchStore.open(config, directory)
        )
        assert rotated.recovery.replayed_records == 0
        replay_per_batch_s = replay_s / batches
        crossover_batches = snapshot_s / max(replay_per_batch_s, 1e-9)

    rows = [
        {
            "phase": "cold-start", "n": n,
            "open_ms": round(open_snap_s * 1000, 1),
            "encode_ms": round(encode_snap_s * 1000, 1),
            "serving_ms": round(serving_store_s * 1000, 1),
            "scratch_ms": round(scratch_s * 1000, 1),
            "speedup": round(scratch_s / serving_store_s, 2),
            "snapshot_bytes": snapshot_bytes,
        },
        {
            "phase": "wal-replay", "records": batches,
            "wal_bytes": wal_bytes,
            "replay_ms": round(replay_s * 1000, 1),
            "replay_mb_per_s": round(tiny_wal_bytes / replay_s / 1e6, 3),
            "replayed_deltas": replayed_deltas,
            "deltas_per_s": round(replayed_deltas / replay_s),
            "append_ms_per_batch": round(
                sum(batch_seconds) / len(batch_seconds) * 1000, 2
            ),
        },
        {
            "phase": "crossover",
            "snapshot_ms": round(snapshot_s * 1000, 1),
            "open_after_rotate_ms": round(open_rotated_s * 1000, 1),
            "replay_ms_per_batch": round(replay_per_batch_s * 1000, 2),
            "crossover_batches": round(crossover_batches, 1),
        },
    ]

    table = Table(
        ["phase", "headline", "detail"],
        title=(
            f"B10: durable-store cold start at n={n} "
            f"(+{batches} WAL batches of {batch_points})"
        ),
    )
    table.add_row([
        "cold-start",
        f"serving in {rows[0]['serving_ms']} ms",
        f"vs {rows[0]['scratch_ms']} ms from scratch "
        f"({rows[0]['speedup']}x; snapshot {snapshot_bytes} B)",
    ])
    table.add_row([
        "wal-replay",
        f"{rows[1]['replay_mb_per_s']} MB/s",
        f"{batches} records / {wal_bytes} B in {rows[1]['replay_ms']} ms; "
        f"append {rows[1]['append_ms_per_batch']} ms/batch",
    ])
    table.add_row([
        "crossover",
        f"snapshot pays off past {rows[2]['crossover_batches']} batches",
        f"snapshot {rows[2]['snapshot_ms']} ms vs replay "
        f"{rows[2]['replay_ms_per_batch']} ms/batch",
    ])

    payload = schema2_payload(
        "b10_store",
        rows=rows,
        workload={
            "n": n, "delta": DELTA, "dimension": 2, "seed": SEED,
            "shards": SHARDS, "batches": batches,
            "batch_points": batch_points,
        },
    )
    return payload, table.render()


def _check_contract(payload):
    rows = {row["phase"]: row for row in payload["rows"]}
    assert rows["cold-start"]["serving_ms"] > 0
    assert rows["wal-replay"]["replay_mb_per_s"] > 0
    assert rows["crossover"]["crossover_batches"] > 0


def test_store_bench(benchmark, emit, emit_json):
    """The recorded B10 run: cold start at n=1e6 (BENCH_10.json)."""
    holder = {}

    def run():
        holder["payload"], holder["text"] = experiment()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b10_store", holder["text"])
    emit_json("b10_store", holder["payload"])
    _check_contract(holder["payload"])
    # At the recorded scale the snapshot must beat the rebuild — that is
    # the time-to-serving claim the README makes.
    rows = {row["phase"]: row for row in holder["payload"]["rows"]}
    assert rows["cold-start"]["speedup"] > 1.0
    root_copy = pathlib.Path(__file__).resolve().parent.parent / "BENCH_10.json"
    root_copy.write_text(
        (pathlib.Path(__file__).resolve().parent / "results" /
         "b10_store.json").read_text()
    )


def test_store_smoke(emit, emit_json):
    """CI smoke: the full three-phase pipeline at tiny scale."""
    payload, text = experiment(n=20_000, batches=8, batch_points=250)
    emit("b10_store_smoke", text)
    emit_json("b10_store_smoke", payload)
    _check_contract(payload)


if __name__ == "__main__":
    print(experiment()[1])
