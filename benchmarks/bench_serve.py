"""B4/B9 — Serve layer: sessions/sec, latency, and multi-core scaling.

B4 measures the single-process serve layer end-to-end over loopback TCP:
one in-process :class:`~repro.serve.ReconciliationServer` (Alice), a
fleet of async clients (Bobs) issuing complete syncs — handshake,
session, repair — at bounded concurrency.  Reports sessions/sec plus
p50/p95 per-sync latency at concurrency 1 / 8 / 32, for the one-round
and adaptive variants.

What to expect from B4: the server caches Alice's deterministic payload
per variant, so a one-round session costs it little CPU and throughput
is dominated by the Bob-side decode (which this in-process harness also
runs on the same loop); adaptive sessions pay Alice-side estimator and
window work per request and run ~6x slower.  Everything shares one
event loop, so sessions/sec moves only mildly with concurrency while
p95 latency grows ~linearly with it (queueing) — the signature of a
CPU-bound asyncio service.

B9 is the answer to that signature: a worker sweep over the pre-fork
:class:`~repro.serve.WorkerPoolServer` (workers = 1 / 2 / 4) driven by
a *multi-process* client fleet, so neither side of the loopback is
pinned to one core.  On a >= 4-core machine sessions/sec scales
near-linearly with workers for the server-bound adaptive variant; on
fewer cores the sweep still runs (the pool is correct anywhere fork
is) but the speedup columns only document contention.  An env-gated
soak (``REPRO_SOAK=1``) pushes >= 1e5 complete syncs through a 4-worker
pool from thousands of concurrent clients and asserts zero failures.

All records are schema 2 (see ``_harness.schema2_payload``): a
``schema`` field, machine ``cpu_count``, per-row worker counts, and
latency percentiles by linear interpolation.  The JSON artifacts
(``b4_serve*.json``, ``b9_serve_workers*.json``) are what CI and
perf-trajectory tooling consume; ``b9_serve_workers.json`` is copied
to ``BENCH_9.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import statistics
import time

from benchmarks._harness import percentile, schema2_payload
from repro.analysis.tables import Table
from repro.core.adaptive import AdaptiveConfig, AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.iblt.backends import available_backends
from repro.scale.executors import fork_available
from repro.serve import ReconciliationServer, WorkerPoolServer, sync
from repro.workloads.synthetic import perturbed_pair

import pytest

DELTA = 2**16
SEED = 0
BACKEND = "numpy" if "numpy" in available_backends() else "pure"

CONCURRENCY_LEVELS = (1, 8, 32)
#: Complete syncs measured per concurrency level (after warmup).
SYNCS_PER_LEVEL = 96
WORKLOAD_N = 400
TRUE_K = 8

#: B9 defaults: the worker sweep and its client fleet.
WORKER_LEVELS = (1, 2, 4)
SWEEP_CONCURRENCY = 32
SWEEP_SYNCS = 96
FLEET_PROCS = 4

#: B9 soak (REPRO_SOAK=1): >= 1e5 syncs from thousands of clients.
SOAK_SYNCS = 100_000
SOAK_CLIENTS = 2048
SOAK_PROCS = 8
SOAK_N = 80
SOAK_DELTA = 2**12


def _workload(n=WORKLOAD_N, delta=DELTA, diff=TRUE_K):
    return perturbed_pair(SEED, n, delta, 2, diff, 2)


def _config(delta=DELTA, k=2 * TRUE_K):
    return ProtocolConfig(
        delta=delta, dimension=2, k=k, seed=SEED, backend=BACKEND
    )


def _client_reconciler(variant, config):
    """One Bob-side engine reused across a level's syncs (grid build paid
    once — the same amortisation a real repeatedly-syncing client does)."""
    if variant == "one-round":
        return HierarchicalReconciler(config)
    if variant == "adaptive":
        return AdaptiveReconciler(config, AdaptiveConfig())
    return None


def _latency_row(variant, workers, concurrency, syncs, wall, latencies):
    """One schema-2 row: provenance columns + interpolated percentiles."""
    return {
        "variant": variant,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "concurrency": concurrency,
        "syncs": syncs,
        "wall_s": round(wall, 4),
        "sessions_per_sec": round(syncs / wall, 2),
        "p50_ms": round(1000 * percentile(latencies, 0.50), 2),
        "p95_ms": round(1000 * percentile(latencies, 0.95), 2),
        "mean_ms": round(1000 * statistics.mean(latencies), 2),
    }


async def _measure_level(
    server, config, bob_points, variant, concurrency, syncs, workers=1
):
    """Run ``syncs`` complete syncs at bounded concurrency; time each."""
    host, port = server.address
    gate = asyncio.Semaphore(concurrency)
    latencies = []
    reconciler = _client_reconciler(variant, config)

    async def one_sync():
        async with gate:
            started = time.perf_counter()
            result = await sync(
                host, port, config, bob_points, variant=variant, timeout=60,
                reconciler=reconciler,
            )
            latencies.append(time.perf_counter() - started)
            return result

    wall_start = time.perf_counter()
    results = await asyncio.gather(*[one_sync() for _ in range(syncs)])
    wall = time.perf_counter() - wall_start
    sizes = {len(r.repaired) for r in results}
    assert len(sizes) == 1, f"inconsistent repairs across syncs: {sizes}"
    return _latency_row(variant, workers, concurrency, syncs, wall, latencies)


async def _run(concurrency_levels, syncs, variants, n):
    workload = _workload(n)
    config = _config()
    rows = []
    async with ReconciliationServer(
        config, workload.alice, max_sessions=max(concurrency_levels)
    ) as server:
        # Warm every variant once (grid construction, numpy first-call).
        for variant in variants:
            await sync(*server.address, config, workload.bob,
                       variant=variant, timeout=60)
        for variant in variants:
            for concurrency in concurrency_levels:
                rows.append(await _measure_level(
                    server, config, workload.bob, variant, concurrency, syncs
                ))
    return rows


def experiment(
    concurrency_levels=CONCURRENCY_LEVELS,
    syncs=SYNCS_PER_LEVEL,
    variants=("one-round", "adaptive"),
    n=WORKLOAD_N,
):
    """Run the B4 benchmark; returns (rows, rendered table)."""
    rows = asyncio.run(_run(concurrency_levels, syncs, variants, n))
    table = Table(
        [
            "variant", "concurrency", "syncs", "sessions/s",
            "p50 (ms)", "p95 (ms)", "mean (ms)",
        ],
        title=(
            f"B4: asyncio serve layer over loopback TCP "
            f"(n={n}, delta=2^16, k={2 * TRUE_K}, backend={BACKEND})"
        ),
    )
    for row in rows:
        table.add_row([
            row["variant"], row["concurrency"], row["syncs"],
            f"{row['sessions_per_sec']:.1f}", f"{row['p50_ms']:.1f}",
            f"{row['p95_ms']:.1f}", f"{row['mean_ms']:.1f}",
        ])
    return rows, table.render()


def _payload(rows, levels, n):
    return schema2_payload(
        "b4_serve",
        rows=rows,
        transport="loopback-tcp",
        backend=BACKEND,
        workload={
            "n": n, "delta": DELTA, "dimension": 2,
            "true_k": TRUE_K, "k": 2 * TRUE_K, "seed": SEED,
        },
        concurrency_levels=list(levels),
    )


# --------------------------------------------------------------------------
# B9: the worker sweep and the soak.
# --------------------------------------------------------------------------


def _fleet_client(address, config, bob_points, variant, syncs, concurrency,
                  timeout, conn):
    """One client process of the fleet: ``syncs`` complete syncs at its
    own bounded concurrency on a private event loop, latencies shipped
    back over ``conn``.  Runs in a forked child, so the workload and
    config arrive by copy-on-write inheritance, not pickling."""

    async def run():
        reconciler = _client_reconciler(variant, config)
        gate = asyncio.Semaphore(concurrency)
        latencies = []

        async def one_sync():
            async with gate:
                started = time.perf_counter()
                await sync(
                    *address, config, bob_points, variant=variant,
                    timeout=timeout, reconciler=reconciler,
                )
                latencies.append(time.perf_counter() - started)

        await asyncio.gather(*[one_sync() for _ in range(syncs)])
        return latencies

    try:
        latencies = asyncio.run(run())
        conn.send(("ok", latencies))
    except BaseException as exc:  # ship the failure, don't hang the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        raise
    finally:
        conn.close()


async def _fleet_measure(
    address, config, bob_points, variant, total_syncs, concurrency,
    procs, timeout=120.0,
):
    """Drive ``total_syncs`` syncs from ``procs`` forked client processes
    (so Bob-side decode stops being a single-core ceiling) and return
    (latencies, wall_seconds).  Polls result pipes without blocking the
    loop — the pool parent must keep draining worker stats meanwhile."""
    ctx = multiprocessing.get_context("fork")
    share, remainder = divmod(total_syncs, procs)
    per_proc = [share + (1 if i < remainder else 0) for i in range(procs)]
    per_concurrency = max(1, concurrency // procs)
    pipes, children = [], []
    wall_start = time.perf_counter()
    for count in per_proc:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_fleet_client,
            args=(address, config, bob_points, variant, count,
                  per_concurrency, timeout, child_conn),
        )
        process.start()
        child_conn.close()
        pipes.append(parent_conn)
        children.append(process)
    outcomes = [None] * procs
    while any(o is None for o in outcomes):
        for index, parent_conn in enumerate(pipes):
            if outcomes[index] is None and parent_conn.poll():
                outcomes[index] = parent_conn.recv()
        dead = [
            i for i, (o, p) in enumerate(zip(outcomes, children))
            if o is None and not p.is_alive()
        ]
        if dead:
            raise AssertionError(
                f"fleet client(s) {dead} died without reporting"
            )
        await asyncio.sleep(0.02)
    wall = time.perf_counter() - wall_start
    for parent_conn, process in zip(pipes, children):
        parent_conn.close()
        process.join()
    failures = [o[1] for o in outcomes if o[0] != "ok"]
    assert not failures, f"fleet client failures: {failures}"
    latencies = [value for _, lats in outcomes for value in lats]
    return latencies, wall


async def _run_worker_sweep(
    worker_levels, concurrency, syncs, variants, n, procs,
):
    workload = _workload(n)
    config = _config()
    rows = []
    mode = None
    for workers in worker_levels:
        if workers == 1:
            server = ReconciliationServer(
                config, workload.alice, max_sessions=concurrency
            )
        else:
            server = WorkerPoolServer(
                config, workload.alice, workers=workers,
                max_sessions=concurrency,
            )
            mode = server.mode
        async with server:
            for variant in variants:
                # Warm: grid construction and caches on both sides.
                await sync(*server.address, config, workload.bob,
                           variant=variant, timeout=120)
                latencies, wall = await _fleet_measure(
                    server.address, config, workload.bob, variant,
                    syncs, concurrency, procs,
                )
                rows.append(_latency_row(
                    variant, workers, concurrency, len(latencies), wall,
                    latencies,
                ))
    return rows, mode


def _speedups(rows, worker_levels):
    """sessions/s of each worker level relative to workers=1, per variant."""
    base = {
        row["variant"]: row["sessions_per_sec"]
        for row in rows if row["workers"] == 1
    }
    return {
        variant: {
            str(workers): round(
                next(
                    r["sessions_per_sec"] for r in rows
                    if r["variant"] == variant and r["workers"] == workers
                ) / base[variant],
                2,
            )
            for workers in worker_levels
        }
        for variant in base
    }


def experiment_workers(
    worker_levels=WORKER_LEVELS,
    concurrency=SWEEP_CONCURRENCY,
    syncs=SWEEP_SYNCS,
    variants=("one-round", "adaptive"),
    n=WORKLOAD_N,
    procs=FLEET_PROCS,
):
    """Run the B9 worker sweep; returns (rows, speedups, mode, table)."""
    rows, mode = asyncio.run(_run_worker_sweep(
        worker_levels, concurrency, syncs, variants, n, procs
    ))
    speedups = _speedups(rows, worker_levels)
    table = Table(
        [
            "variant", "workers", "concurrency", "sessions/s", "speedup",
            "p50 (ms)", "p95 (ms)",
        ],
        title=(
            f"B9: pre-fork worker sweep over loopback TCP "
            f"(n={n}, c={concurrency}, fleet={procs} client procs, "
            f"cpus={os.cpu_count()}, mode={mode or 'single-process'})"
        ),
    )
    for row in rows:
        table.add_row([
            row["variant"], row["workers"], row["concurrency"],
            f"{row['sessions_per_sec']:.1f}",
            f"{speedups[row['variant']][str(row['workers'])]:.2f}x",
            f"{row['p50_ms']:.1f}", f"{row['p95_ms']:.1f}",
        ])
    return rows, speedups, mode, table.render()


def _workers_payload(rows, speedups, mode, *, soak=None, concurrency, n,
                     procs):
    return schema2_payload(
        "b9_serve_workers",
        rows=rows,
        transport="loopback-tcp",
        backend=BACKEND,
        pool_mode=mode,
        fleet_procs=procs,
        workload={
            "n": n, "delta": DELTA, "dimension": 2,
            "true_k": TRUE_K, "k": 2 * TRUE_K, "seed": SEED,
        },
        concurrency=concurrency,
        speedup_vs_one_worker=speedups,
        soak=soak,
    )


async def _run_soak(total_syncs, clients, procs, workers):
    """The endurance leg: a 4-worker pool absorbing ``clients``
    concurrent loopback connections until ``total_syncs`` complete
    syncs have landed, every one of them correct or typed — zero
    unexplained failures tolerated."""
    workload = _workload(SOAK_N, SOAK_DELTA, 4)
    config = _config(SOAK_DELTA, 8)
    async with WorkerPoolServer(
        config, workload.alice, workers=workers,
        max_sessions=max(64, clients // max(1, workers)),
        session_deadline=600.0, timeout=600.0,
    ) as pool:
        await sync(*pool.address, config, workload.bob, timeout=120)
        latencies, wall = await _fleet_measure(
            pool.address, config, workload.bob, "one-round",
            total_syncs, clients, procs, timeout=600.0,
        )
        await pool.wait_for_sessions(total_syncs + 1)
        summary = pool.summary()
    row = _latency_row(
        "one-round", workers, clients, len(latencies), wall, latencies
    )
    return row, summary


def soak(total_syncs=SOAK_SYNCS, clients=SOAK_CLIENTS, procs=SOAK_PROCS,
         workers=4):
    """Run the soak; returns its schema-2 row plus the pool's summary."""
    row, summary = asyncio.run(
        _run_soak(total_syncs, clients, procs, workers)
    )
    assert summary["failed"] == 0, f"soak saw failures: {summary}"
    assert summary["ok"] >= total_syncs
    assert summary["restarts"] == 0, "soak must not crash workers"
    return {
        "syncs": total_syncs,
        "concurrent_clients": clients,
        "fleet_procs": procs,
        "row": row,
        "server_summary": {
            key: summary[key]
            for key in ("sessions", "ok", "failed", "shed", "restarts")
        },
    }


# --------------------------------------------------------------------------
# Recorded runs.
# --------------------------------------------------------------------------


def test_serve_bench(benchmark, emit, emit_json):
    """The B4 recorded run: sessions/sec + latency at concurrency 1/8/32."""
    holder = {}

    def run():
        holder["rows"], holder["text"] = experiment()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b4_serve", holder["text"])
    emit_json("b4_serve",
              _payload(holder["rows"], CONCURRENCY_LEVELS, WORKLOAD_N))
    measured = {row["concurrency"] for row in holder["rows"]}
    assert set(CONCURRENCY_LEVELS) <= measured
    for row in holder["rows"]:
        assert row["sessions_per_sec"] > 0
        assert row["p50_ms"] <= row["p95_ms"]


def test_serve_smoke(emit, emit_json):
    """CI smoke: the full pipeline at tiny scale (seconds, not minutes)."""
    levels = (1, 4)
    smoke_n = 120
    rows, text = experiment(
        concurrency_levels=levels, syncs=8, variants=("one-round",), n=smoke_n
    )
    emit("b4_serve_smoke", text)
    emit_json("b4_serve_smoke", _payload(rows, levels, smoke_n))
    assert all(row["sessions_per_sec"] > 0 for row in rows)


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="worker pool requires the fork start method"
)


@needs_fork
def test_serve_workers_bench(benchmark, emit, emit_json):
    """The B9 recorded run: worker sweep, optional soak (REPRO_SOAK=1).

    The scaling acceptance (workers=4 >= 2.5x one-round / >= 2x adaptive
    at c=32) only binds on a machine with >= 4 cores; with fewer cores
    the sweep is recorded for the row data but the speedup assert would
    measure the scheduler, not the pool.
    """
    holder = {}

    def run():
        (holder["rows"], holder["speedups"], holder["mode"],
         holder["text"]) = experiment_workers()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    soak_record = soak() if os.environ.get("REPRO_SOAK") == "1" else None
    emit("b9_serve_workers", holder["text"])
    emit_json("b9_serve_workers", _workers_payload(
        holder["rows"], holder["speedups"], holder["mode"],
        soak=soak_record, concurrency=SWEEP_CONCURRENCY, n=WORKLOAD_N,
        procs=FLEET_PROCS,
    ))
    for row in holder["rows"]:
        assert row["sessions_per_sec"] > 0
    if (os.cpu_count() or 1) >= 4:
        assert holder["speedups"]["one-round"]["4"] >= 2.5
        assert holder["speedups"]["adaptive"]["4"] >= 2.0


@needs_fork
def test_serve_workers_smoke(emit, emit_json):
    """CI smoke for the pool: 4 real workers over TCP must beat one.

    Gated on cpu count — asserting a parallel speedup on a 1-core
    runner measures contention, not the pool.  Uses the adaptive
    variant (server-bound: Alice pays estimator work per request) so
    the server, not the client fleet, is the scaling bottleneck.
    """
    smoke_n = 120
    rows, mode = asyncio.run(_run_worker_sweep(
        (1, 4), 16, 32, ("adaptive",), smoke_n, FLEET_PROCS,
    ))
    speedups = _speedups(rows, (1, 4))
    payload = _workers_payload(
        rows, speedups, mode, concurrency=16, n=smoke_n, procs=FLEET_PROCS,
    )
    emit_json("b9_serve_workers_smoke", payload)
    assert all(row["sessions_per_sec"] > 0 for row in rows)
    if (os.cpu_count() or 1) >= 4:
        assert speedups["adaptive"]["4"] >= 1.5, (
            f"4 workers only {speedups['adaptive']['4']}x on "
            f"{os.cpu_count()} cpus: {rows}"
        )


if __name__ == "__main__":
    print(experiment()[1])
    if fork_available():
        print(experiment_workers()[3])
