"""B4 — Asyncio reconciliation service: sessions/sec and sync latency.

Measures the serve layer end-to-end over loopback TCP: one in-process
:class:`~repro.serve.ReconciliationServer` (Alice), a fleet of async
clients (Bobs) issuing complete syncs — handshake, session, repair — at
bounded concurrency.  Reports sessions/sec plus p50/p95 per-sync latency
at concurrency 1 / 8 / 32, for the one-round and adaptive variants.

What to expect: the server caches Alice's deterministic payload per
variant, so a one-round session costs it little CPU and throughput is
dominated by the Bob-side decode (which this in-process harness also
runs on the same loop); adaptive sessions pay Alice-side estimator and
window work per request and run ~6x slower.  Everything shares one
event loop, so sessions/sec moves only mildly with concurrency while
p95 latency grows ~linearly with it (queueing) — the signature of a
CPU-bound asyncio service; scale-out across cores is a process-per-port
deployment's job.

The JSON record (``b4_serve.json`` / ``b4_serve_smoke.json``) is the
machine-readable artifact CI and perf-trajectory tooling consume.
"""

from __future__ import annotations

import asyncio
import math
import statistics
import time

from repro.analysis.tables import Table
from repro.core.adaptive import AdaptiveConfig, AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.iblt.backends import available_backends
from repro.serve import ReconciliationServer, sync
from repro.workloads.synthetic import perturbed_pair

DELTA = 2**16
SEED = 0
BACKEND = "numpy" if "numpy" in available_backends() else "pure"

CONCURRENCY_LEVELS = (1, 8, 32)
#: Complete syncs measured per concurrency level (after warmup).
SYNCS_PER_LEVEL = 96
WORKLOAD_N = 400
TRUE_K = 8


def _workload(n=WORKLOAD_N):
    return perturbed_pair(SEED, n, DELTA, 2, TRUE_K, 2)


def _config():
    return ProtocolConfig(
        delta=DELTA, dimension=2, k=2 * TRUE_K, seed=SEED, backend=BACKEND
    )


def _client_reconciler(variant, config):
    """One Bob-side engine reused across a level's syncs (grid build paid
    once — the same amortisation a real repeatedly-syncing client does)."""
    if variant == "one-round":
        return HierarchicalReconciler(config)
    if variant == "adaptive":
        return AdaptiveReconciler(config, AdaptiveConfig())
    return None


async def _measure_level(
    server, config, bob_points, variant, concurrency, syncs
):
    """Run ``syncs`` complete syncs at bounded concurrency; time each."""
    host, port = server.address
    gate = asyncio.Semaphore(concurrency)
    latencies = []
    reconciler = _client_reconciler(variant, config)

    async def one_sync():
        async with gate:
            started = time.perf_counter()
            result = await sync(
                host, port, config, bob_points, variant=variant, timeout=60,
                reconciler=reconciler,
            )
            latencies.append(time.perf_counter() - started)
            return result

    wall_start = time.perf_counter()
    results = await asyncio.gather(*[one_sync() for _ in range(syncs)])
    wall = time.perf_counter() - wall_start
    sizes = {len(r.repaired) for r in results}
    assert len(sizes) == 1, f"inconsistent repairs across syncs: {sizes}"
    latencies.sort()

    def quantile(q: float) -> float:
        # Ceil-based index so the label matches the quantile at any
        # sample count (int(n*q)-1 under-reports on small n).
        return latencies[min(len(latencies) - 1, math.ceil(q * len(latencies)) - 1)]

    return {
        "variant": variant,
        "concurrency": concurrency,
        "syncs": syncs,
        "wall_s": round(wall, 4),
        "sessions_per_sec": round(syncs / wall, 2),
        "p50_ms": round(1000 * quantile(0.50), 2),
        "p95_ms": round(1000 * quantile(0.95), 2),
        "mean_ms": round(1000 * statistics.mean(latencies), 2),
    }


async def _run(concurrency_levels, syncs, variants, n):
    workload = _workload(n)
    config = _config()
    rows = []
    async with ReconciliationServer(
        config, workload.alice, max_sessions=max(concurrency_levels)
    ) as server:
        # Warm every variant once (grid construction, numpy first-call).
        for variant in variants:
            await sync(*server.address, config, workload.bob,
                       variant=variant, timeout=60)
        for variant in variants:
            for concurrency in concurrency_levels:
                rows.append(await _measure_level(
                    server, config, workload.bob, variant, concurrency, syncs
                ))
    return rows


def experiment(
    concurrency_levels=CONCURRENCY_LEVELS,
    syncs=SYNCS_PER_LEVEL,
    variants=("one-round", "adaptive"),
    n=WORKLOAD_N,
):
    """Run the benchmark; returns (rows, rendered table)."""
    rows = asyncio.run(_run(concurrency_levels, syncs, variants, n))
    table = Table(
        [
            "variant", "concurrency", "syncs", "sessions/s",
            "p50 (ms)", "p95 (ms)", "mean (ms)",
        ],
        title=(
            f"B4: asyncio serve layer over loopback TCP "
            f"(n={n}, delta=2^16, k={2 * TRUE_K}, backend={BACKEND})"
        ),
    )
    for row in rows:
        table.add_row([
            row["variant"], row["concurrency"], row["syncs"],
            f"{row['sessions_per_sec']:.1f}", f"{row['p50_ms']:.1f}",
            f"{row['p95_ms']:.1f}", f"{row['mean_ms']:.1f}",
        ])
    return rows, table.render()


def _payload(rows, levels, n):
    return {
        "experiment": "b4_serve",
        "transport": "loopback-tcp",
        "backend": BACKEND,
        "workload": {
            "n": n, "delta": DELTA, "dimension": 2,
            "true_k": TRUE_K, "k": 2 * TRUE_K, "seed": SEED,
        },
        "concurrency_levels": list(levels),
        "rows": rows,
    }


def test_serve_bench(benchmark, emit, emit_json):
    """The recorded run: sessions/sec + latency at concurrency 1/8/32."""
    holder = {}

    def run():
        holder["rows"], holder["text"] = experiment()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b4_serve", holder["text"])
    emit_json("b4_serve",
              _payload(holder["rows"], CONCURRENCY_LEVELS, WORKLOAD_N))
    measured = {row["concurrency"] for row in holder["rows"]}
    assert set(CONCURRENCY_LEVELS) <= measured
    for row in holder["rows"]:
        assert row["sessions_per_sec"] > 0
        assert row["p50_ms"] <= row["p95_ms"]


def test_serve_smoke(emit, emit_json):
    """CI smoke: the full pipeline at tiny scale (seconds, not minutes)."""
    levels = (1, 4)
    smoke_n = 120
    rows, text = experiment(
        concurrency_levels=levels, syncs=8, variants=("one-round",), n=smoke_n
    )
    emit("b4_serve_smoke", text)
    emit_json("b4_serve_smoke", _payload(rows, levels, smoke_n))
    assert all(row["sessions_per_sec"] > 0 for row in rows)


if __name__ == "__main__":
    print(experiment()[1])
