"""B5 — vectorized vs scalar wire codec (the perf-regression harness).

Claim under test: the shared wire codec (PR 5, :mod:`repro.net.codec`)
serialises and parses sketch payloads at array speed — ≥10x the scalar
``BitWriter``/``BitReader`` reference (serialize+deserialize) on the
numpy backend at difference sizes ≥ 2e4 — while producing **bit-identical**
bytes (asserted on every measured payload).

Two entry points:

``test_wire_codec_smoke``
    Small, CI-sized run.  **Fails if the vectorized codec is slower than
    the scalar path on the numpy backend** — the regression tripwire the
    CI ``bench-wire-smoke`` job relies on.  Writes
    ``benchmarks/results/b5_wire_smoke.json``.

``test_wire_codec_full``
    The recorded baseline: serialize / deserialize MB/s and per-payload
    latency per backend at difference sizes 2e4 and 5e4, a dense
    one-round hierarchy-sketch payload, and a re-run of the serve
    benchmark (sessions/sec + p95, against the recorded PR-4 baseline).
    Writes ``benchmarks/results/BENCH_5.json`` and mirrors it to the repo
    root so future PRs have a perf trajectory to diff against:

        PYTHONPATH=src python -m pytest benchmarks/bench_wire.py -k full
"""

from __future__ import annotations

import json
import pathlib
import random
import time

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.core.sketch import HierarchySketch, build_level_sketches
from repro.iblt.backends import available_backends
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells
from repro.net import codec
from repro.workloads.synthetic import perturbed_pair

Q = 4
FULL_SIZES = (20_000, 50_000)
SMOKE_SIZE = 2_000
SKETCH_N = 20_000
TIMING_ROUNDS = 3  # best-of-N, same discipline for both codec paths

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
PR4_SERVE_BASELINE = RESULTS_DIR / "b4_serve.json"


def _timed(producer):
    """Best-of-``TIMING_ROUNDS`` wall time (identical discipline for both
    codec paths, so the recorded speedups are apples-to-apples)."""
    best = float("inf")
    result = None
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        result = producer()
        best = min(best, time.perf_counter() - start)
    return result, best


def _timed_both(producer, canon=None):
    """(result, vector_s, scalar_s); asserts both paths agree bitwise.

    ``canon`` maps a result to comparable bytes (outside the timers) when
    the result is not already a byte string.
    """
    fast, fast_s = _timed(producer)
    saved = codec.FORCE_SCALAR
    codec.FORCE_SCALAR = True
    try:
        reference, reference_s = _timed(producer)
    finally:
        codec.FORCE_SCALAR = saved
    if canon is not None:
        fast_bytes, reference_bytes = canon(fast), canon(reference)
    else:
        fast_bytes, reference_bytes = fast, reference
    assert fast_bytes == reference_bytes, (
        "vectorized codec diverged from the reference"
    )
    return fast, fast_s, reference_s


def _diff_table(diff_size: int, backend: str, seed: int = 0) -> IBLT:
    """A subtracted table holding a two-sided difference of ``diff_size``
    (the payload shape the protocols actually ship per decode level)."""
    rng = random.Random(seed)
    config = IBLTConfig(
        cells=recommended_cells(diff_size, q=Q), q=Q, seed=seed
    )
    alice = IBLT(config, backend=backend)
    bob = IBLT(config, backend=backend)
    alice.insert_many([rng.getrandbits(60) for _ in range(diff_size // 2)])
    bob.insert_many(
        [rng.getrandbits(60) for _ in range(diff_size - diff_size // 2)]
    )
    return alice.subtract(bob)


def _measure_table(diff_size: int, backend: str) -> dict:
    table = _diff_table(diff_size, backend)
    payload, write_vec_s, write_ref_s = _timed_both(table.to_bytes)

    def parse():
        return IBLT.from_bytes(payload, table.config, backend=backend)

    _, read_vec_s, read_ref_s = _timed_both(
        parse, canon=lambda parsed: parsed.to_bytes()
    )
    mb = len(payload) / 1e6
    return {
        "payload": "subtracted-table",
        "backend": backend,
        "diff_size": diff_size,
        "cells": table.config.cells,
        "payload_bytes": len(payload),
        "write_vector_ms": round(1000 * write_vec_s, 3),
        "write_scalar_ms": round(1000 * write_ref_s, 3),
        "read_vector_ms": round(1000 * read_vec_s, 3),
        "read_scalar_ms": round(1000 * read_ref_s, 3),
        "write_vector_mb_s": round(mb / write_vec_s, 1),
        "read_vector_mb_s": round(mb / read_vec_s, 1),
        "write_speedup": round(write_ref_s / write_vec_s, 2),
        "read_speedup": round(read_ref_s / read_vec_s, 2),
        "roundtrip_speedup": round(
            (write_ref_s + read_ref_s) / (write_vec_s + read_vec_s), 2
        ),
    }


def _measure_sketch(backend: str) -> dict:
    """The one-round hierarchy sketch: dense per-cell counts (multi-group
    varints), many levels — the serve layer's Alice-side payload."""
    workload = perturbed_pair(0, SKETCH_N, 2**16, 2, 16, 3.0)
    config = ProtocolConfig(
        delta=2**16, dimension=2, k=32, seed=0, backend=backend
    )
    reconciler = HierarchicalReconciler(config)
    sketch = HierarchySketch(
        n_points=len(workload.alice),
        levels=build_level_sketches(config, reconciler.grid, workload.alice),
    )
    payload, write_vec_s, write_ref_s = _timed_both(sketch.to_bytes)

    def parse():
        return HierarchySketch.from_bytes(payload, config, reconciler.grid)

    _, read_vec_s, read_ref_s = _timed_both(
        parse, canon=lambda parsed: parsed.to_bytes()
    )
    mb = len(payload) / 1e6
    return {
        "payload": "hierarchy-sketch",
        "backend": backend,
        "n_points": SKETCH_N,
        "levels": len(sketch.levels),
        "payload_bytes": len(payload),
        "write_vector_ms": round(1000 * write_vec_s, 3),
        "write_scalar_ms": round(1000 * write_ref_s, 3),
        "read_vector_ms": round(1000 * read_vec_s, 3),
        "read_scalar_ms": round(1000 * read_ref_s, 3),
        "write_vector_mb_s": round(mb / write_vec_s, 1),
        "read_vector_mb_s": round(mb / read_vec_s, 1),
        "write_speedup": round(write_ref_s / write_vec_s, 2),
        "read_speedup": round(read_ref_s / read_vec_s, 2),
        "roundtrip_speedup": round(
            (write_ref_s + read_ref_s) / (write_vec_s + read_vec_s), 2
        ),
    }


def _render(runs: list[dict]) -> str:
    header = (
        f"{'payload':>17} {'backend':>8} {'size':>7} {'bytes':>9} "
        f"{'wr vec (ms)':>11} {'wr MB/s':>8} {'rd vec (ms)':>11} "
        f"{'rd MB/s':>8} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for run in runs:
        size = run.get("diff_size", run.get("n_points", 0))
        lines.append(
            f"{run['payload']:>17} {run['backend']:>8} {size:>7} "
            f"{run['payload_bytes']:>9} {run['write_vector_ms']:>11.2f} "
            f"{run['write_vector_mb_s']:>8.1f} {run['read_vector_ms']:>11.2f} "
            f"{run['read_vector_mb_s']:>8.1f} {run['roundtrip_speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def test_wire_codec_smoke(benchmark, emit, emit_json):
    """CI tripwire: the vectorized codec must not be slower than the scalar
    reference on the numpy backend at the smoke size (bytes asserted
    identical everywhere)."""
    backends = available_backends()

    def run():
        return [_measure_table(SMOKE_SIZE, backend) for backend in backends]

    runs = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b5_wire_smoke", "B5 smoke: vectorized vs scalar wire codec\n"
         + _render(runs))
    emit_json(
        "b5_wire_smoke",
        {"experiment": "b5_smoke", "smoke_size": SMOKE_SIZE, "runs": runs},
    )
    if "numpy" in backends:
        vector = next(run for run in runs if run["backend"] == "numpy")
        assert vector["roundtrip_speedup"] >= 1.0, (
            f"perf regression: vectorized codec "
            f"({vector['roundtrip_speedup']:.2f}x) slower than the scalar "
            f"reference on the numpy backend at diff={SMOKE_SIZE}"
        )


def test_wire_codec_full(benchmark, emit, emit_json, results_dir):
    """The recorded PR-5 baseline (BENCH_5.json): wire codec + serve."""
    from bench_serve import CONCURRENCY_LEVELS, WORKLOAD_N, experiment

    backends = available_backends()

    def run():
        table_runs = [
            _measure_table(size, backend)
            for backend in backends
            for size in FULL_SIZES
        ]
        sketch_runs = [_measure_sketch(backend) for backend in backends]
        serve_rows, serve_text = experiment()
        return table_runs, sketch_runs, serve_rows, serve_text

    table_runs, sketch_runs, serve_rows, serve_text = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    baseline = None
    if PR4_SERVE_BASELINE.exists():
        baseline = json.loads(PR4_SERVE_BASELINE.read_text()).get("rows")
    payload = {
        "bench": "BENCH_5",
        "experiment": (
            "wire codec (vectorized vs scalar serialize/deserialize) "
            "+ serve throughput after the codec/serve-pipeline work"
        ),
        "sizes": list(FULL_SIZES),
        "wire": {"tables": table_runs, "sketches": sketch_runs},
        "serve": {
            "workload_n": WORKLOAD_N,
            "concurrency_levels": list(CONCURRENCY_LEVELS),
            "rows": serve_rows,
            "baseline_pr4_rows": baseline,
        },
    }
    emit(
        "b5_wire",
        "B5: vectorized vs scalar wire codec\n"
        + _render(table_runs + sketch_runs)
        + "\n\n" + serve_text,
    )
    emit_json("BENCH_5", payload)
    # Mirror the baseline to the repo root (the perf-trajectory anchor).
    root_copy = pathlib.Path(__file__).resolve().parent.parent / "BENCH_5.json"
    root_copy.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    if "numpy" in backends:
        at_5e4 = next(
            run for run in table_runs
            if run["backend"] == "numpy" and run["diff_size"] == 50_000
        )
        assert at_5e4["roundtrip_speedup"] >= 10.0, (
            f"acceptance: serialize+deserialize must be >=10x the scalar "
            f"reference on the numpy backend at diff=5e4; measured "
            f"{at_5e4['roundtrip_speedup']:.1f}x"
        )


if __name__ == "__main__":  # pragma: no cover - manual convenience runner
    pytest.main([__file__, "-k", "full", "-q"])
