"""E7 — Encode/decode running time vs n (figure).

Claim under test: Alice's encoding is ``O(n log Δ)`` hash work (linear in
n at fixed geometry) and Bob's decode is dominated by his own key pass
(the peeling itself is ``O(k)``).  pytest-benchmark times the n=4000
kernel; the table reports a manual sweep.
"""

from __future__ import annotations

import time

from repro.analysis.tables import Table
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.workloads.synthetic import perturbed_pair

SIZES = (1000, 2000, 4000, 8000, 16000, 32000)
DELTA = 2**20
TRUE_K = 8
NOISE = 4
SEED = 0


def build(n: int):
    workload = perturbed_pair(SEED, n, DELTA, 2, TRUE_K, NOISE)
    config = ProtocolConfig(delta=DELTA, dimension=2, k=2 * TRUE_K, seed=SEED)
    return workload, HierarchicalReconciler(config)


def experiment() -> tuple[str, list[dict]]:
    table = Table(
        ["n", "encode (s)", "decode (s)", "encode us/point"],
        title=f"E7: runtime vs n  (delta=2^20, d=2, k={2 * TRUE_K})",
    )
    records: list[dict] = []
    for n in SIZES:
        workload, reconciler = build(n)
        start = time.perf_counter()
        payload = reconciler.encode(workload.alice)
        encode_s = time.perf_counter() - start
        start = time.perf_counter()
        reconciler.decode_and_repair(payload, workload.bob)
        decode_s = time.perf_counter() - start
        table.add_row([
            n, f"{encode_s:.2f}", f"{decode_s:.2f}",
            f"{1e6 * encode_s / n:.0f}",
        ])
        records.append(
            {
                "n": n,
                "encode_s": encode_s,
                "decode_s": decode_s,
                "encode_us_per_point": 1e6 * encode_s / n,
            }
        )
    return table.render(), records


def test_runtime_table(benchmark, emit, emit_json):
    """Manual sweep table; the timed kernel below gives the stable number."""
    result_holder = {}

    def run():
        text, records = experiment()
        result_holder["text"] = text
        result_holder["records"] = records

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("e7_runtime", result_holder["text"])
    emit_json(
        "e7_runtime",
        {
            "experiment": "e7",
            "delta_log2": 20,
            "dimension": 2,
            "k": 2 * TRUE_K,
            "rows": result_holder["records"],
        },
    )


def test_encode_kernel(benchmark):
    """pytest-benchmark timing of one representative encode (n=4000)."""
    workload, reconciler = build(4000)
    benchmark.pedantic(
        lambda: reconciler.encode(workload.alice),
        rounds=3, iterations=1, warmup_rounds=0,
    )


def test_decode_kernel(benchmark):
    """pytest-benchmark timing of one representative decode (n=4000)."""
    workload, reconciler = build(4000)
    payload = reconciler.encode(workload.alice)
    benchmark.pedantic(
        lambda: reconciler.decode_and_repair(payload, workload.bob),
        rounds=3, iterations=1, warmup_rounds=0,
    )
