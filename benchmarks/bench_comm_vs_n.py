"""E1 — Communication vs set size n (figure).

Claim under test: with coordinate noise present, the robust protocol's
communication is flat in ``n`` (it depends only on ``k`` and ``log Δ``),
while exact reconciliation (IBF) grows linearly — every noisy duplicate is
a "difference" — and full transfer grows linearly by definition.  The
crossovers are where the robust protocol starts winning.

Paper mapping: the headline communication figure of the evaluation
(reconstructed; see EXPERIMENTS.md).
"""

from __future__ import annotations

from benchmarks._harness import aggregate_bits, run_once
from repro.analysis.methods import default_methods
from repro.analysis.tables import Table
from repro.workloads.synthetic import perturbed_pair

SIZES = (250, 500, 1000, 2000, 4000, 8000)
SEEDS = (0, 1)
DELTA = 2**20
TRUE_K = 8
NOISE = 4
METHODS = ("robust", "robust-adaptive", "exact-ibf", "full-transfer")


def experiment() -> str:
    table = Table(
        ["n"] + [f"{m} (kbit)" for m in METHODS],
        title=f"E1: communication vs n  (k={TRUE_K}, noise=±{NOISE}, "
              f"delta=2^20, d=2, {len(SEEDS)} seeds)",
    )
    for n in SIZES:
        row = [n]
        for method in METHODS:
            runs = []
            for seed in SEEDS:
                workload = perturbed_pair(
                    seed, n, DELTA, 2, true_k=TRUE_K, noise=NOISE
                )
                runs.append(default_methods(workload, k=2 * TRUE_K, seed=seed)[method]())
            row.append(aggregate_bits(runs))
        table.add_row(row)
    return table.render()


def test_comm_vs_n(benchmark, emit):
    text = run_once(benchmark, experiment)
    emit("e1_comm_vs_n", text)
