"""T3 — Measured communication vs the Ω(k log |U|) lower bound (table).

Claim under test: the paper's lower bound says any protocol achieving the
``EMD_k`` guarantee must spend ``Ω(k log |U|)`` bits.  The one-round
protocol is a ``log Δ`` factor above it (it ships every level); the
adaptive variant closes most of that gap.  The ratio column is the
constant-factor overhead a deployment actually pays.
"""

from __future__ import annotations

from benchmarks._harness import kbits, run_once
from repro.analysis.tables import Table
from repro.core.adaptive import reconcile_adaptive
from repro.core.bounds import lower_bound_bits
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.workloads.synthetic import perturbed_pair

BUDGETS = (2, 8, 32, 128)
DELTA = 2**20
N = 1000
NOISE = 4
SEED = 0


def experiment() -> str:
    table = Table(
        ["k", "lower bound (kbit)", "one-round (kbit)", "ratio",
         "adaptive (kbit)", "ratio "],
        title=f"T3: distance to the lower bound  (n={N}, delta=2^20, d=2)",
    )
    for k in BUDGETS:
        workload = perturbed_pair(SEED, N, DELTA, 2, true_k=min(k, 16),
                                  noise=NOISE)
        config = ProtocolConfig(delta=DELTA, dimension=2, k=k, seed=SEED)
        one_round = reconcile(workload.alice, workload.bob, config)
        adaptive = reconcile_adaptive(workload.alice, workload.bob, config)
        bound = lower_bound_bits(k, DELTA, 2)
        table.add_row([
            k,
            kbits(bound),
            kbits(one_round.transcript.total_bits),
            f"{one_round.transcript.total_bits / bound:.1f}x",
            kbits(adaptive.transcript.total_bits),
            f"{adaptive.transcript.total_bits / bound:.1f}x",
        ])
    return table.render()


def test_lower_bound(benchmark, emit):
    emit("t3_lower_bound", run_once(benchmark, experiment))
