"""E6 — IBLT peeling threshold (figure).

Claim under test: peeling succeeds with high probability while the load
(keys per cell) is below the q-dependent threshold and collapses sharply
above it — the property every sketch-sizing rule in the library leans on.
Expected thresholds: ~0.818 (q=3), ~0.772 (q=4), ~0.701 (q=5).
"""

from __future__ import annotations

import random

from benchmarks._harness import run_once
from repro.analysis.tables import Table
from repro.iblt.decode import decode
from repro.iblt.table import IBLT, IBLTConfig, PEELING_THRESHOLDS

CELLS = 240
LOADS = (0.40, 0.55, 0.65, 0.72, 0.78, 0.84, 0.95, 1.10)
TRIALS = 60
QS = (3, 4, 5)


def experiment() -> tuple[str, list[dict]]:
    table = Table(
        ["load (keys/cell)"] + [f"q={q} success" for q in QS],
        title=f"E6: peeling success rate vs load  ({CELLS} cells, "
              f"{TRIALS} trials; thresholds "
              + ", ".join(f"q={q}:{PEELING_THRESHOLDS[q]}" for q in QS) + ")",
    )
    records: list[dict] = []
    for load in LOADS:
        row = [f"{load:.2f}"]
        n_keys = int(load * CELLS)
        for q in QS:
            cells = CELLS - CELLS % q
            successes = 0
            for trial in range(TRIALS):
                rng = random.Random(1000 * q + trial)
                config = IBLTConfig(cells=cells, q=q, seed=trial * 7 + q)
                sketch = IBLT(config)
                sketch.insert_all(
                    rng.getrandbits(60) for _ in range(n_keys)
                )
                if decode(sketch).success:
                    successes += 1
            row.append(f"{successes / TRIALS:.2f}")
            records.append(
                {
                    "load": load,
                    "q": q,
                    "cells": cells,
                    "trials": TRIALS,
                    "success_rate": successes / TRIALS,
                    "threshold": PEELING_THRESHOLDS[q],
                }
            )
        table.add_row(row)
    return table.render(), records


def test_decode_threshold(benchmark, emit, emit_json):
    text, records = run_once(benchmark, experiment)
    emit("e6_decode_threshold", text)
    emit_json("e6_decode_threshold", {"experiment": "e6", "rows": records})
