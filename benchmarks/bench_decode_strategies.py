"""B3 — batch vs scalar peeling decode (the perf-regression harness).

Claim under test: the round-based batch decoder (PR 3) peels large
subtracted tables at array speed — ≥5x faster than the scalar reference on
the vector backend at difference sizes ≥ 2e4 — while recovering identical
key sets.

Two entry points:

``test_decode_strategies_smoke``
    Small, CI-sized run.  **Fails if batch decode is slower than scalar on
    the numpy backend** — the regression tripwire the CI bench-smoke job
    relies on.  Writes ``benchmarks/results/b3_decode_smoke.json``.

``test_decode_strategies_full``
    The recorded baseline: encode / decode-scalar / decode-batch / end-to-
    end timings per backend at difference sizes 2e4 and 5e4.  Writes
    ``benchmarks/results/BENCH_3.json`` and mirrors it to the repo root so
    future PRs have a perf trajectory to diff against:

        PYTHONPATH=src python -m pytest benchmarks/bench_decode_strategies.py -k full
"""

from __future__ import annotations

import json
import pathlib
import random
import time

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.iblt.backends import available_backends
from repro.iblt.decode import decode
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells
from repro.workloads.synthetic import perturbed_pair

Q = 4
FULL_SIZES = (20_000, 50_000)
SMOKE_SIZE = 2_000
END_TO_END_N = 10_000
TIMING_ROUNDS = 3  # best-of-N, same discipline for both strategies


def _build_subtracted(diff_size: int, backend: str, seed: int = 0):
    """A subtracted table holding a two-sided difference of ``diff_size``."""
    rng = random.Random(seed)
    config = IBLTConfig(cells=recommended_cells(diff_size, q=Q), q=Q, seed=seed)
    alice_keys = [rng.getrandbits(60) for _ in range(diff_size // 2)]
    bob_keys = [rng.getrandbits(60) for _ in range(diff_size - diff_size // 2)]
    alice = IBLT(config, backend=backend)
    bob = IBLT(config, backend=backend)
    start = time.perf_counter()
    alice.insert_many(alice_keys)
    encode_s = time.perf_counter() - start
    bob.insert_many(bob_keys)
    return alice.subtract(bob), encode_s, alice_keys, bob_keys


def _timed_decode(diff, strategy: str):
    """Best-of-``TIMING_ROUNDS`` wall time (identical discipline for both
    strategies, so the recorded speedups are apples-to-apples)."""
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        result = decode(diff, strategy=strategy)
        best = min(best, time.perf_counter() - start)
    return result, best


def _measure(diff_size: int, backend: str) -> dict:
    diff, encode_s, alice_keys, bob_keys = _build_subtracted(diff_size, backend)
    scalar, scalar_s = _timed_decode(diff, "scalar")
    batch, batch_s = _timed_decode(diff, "batch")

    assert scalar.success and batch.success, "benchmark table failed to peel"
    assert sorted(batch.alice_keys) == sorted(alice_keys) == sorted(scalar.alice_keys)
    assert sorted(batch.bob_keys) == sorted(bob_keys) == sorted(scalar.bob_keys)
    return {
        "backend": backend,
        "diff_size": diff_size,
        "cells": diff.config.cells,
        "q": Q,
        "encode_s": round(encode_s, 6),
        "decode_scalar_s": round(scalar_s, 6),
        "decode_batch_s": round(batch_s, 6),
        "speedup": round(scalar_s / batch_s, 2),
    }


def _end_to_end(backend: str) -> dict:
    workload = perturbed_pair(0, END_TO_END_N, 2**16, 2, 16, 3.0)
    config = ProtocolConfig(
        delta=2**16, dimension=2, k=32, seed=0, backend=backend
    )
    start = time.perf_counter()
    result = reconcile(workload.alice, workload.bob, config)
    elapsed = time.perf_counter() - start
    return {
        "backend": backend,
        "n": END_TO_END_N,
        "protocol_s": round(elapsed, 6),
        "level": result.level,
    }


def _render(runs: list[dict]) -> str:
    header = (
        f"{'backend':>8} {'diff':>7} {'encode (s)':>11} "
        f"{'scalar (s)':>11} {'batch (s)':>10} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for run in runs:
        lines.append(
            f"{run['backend']:>8} {run['diff_size']:>7} "
            f"{run['encode_s']:>11.3f} {run['decode_scalar_s']:>11.3f} "
            f"{run['decode_batch_s']:>10.4f} {run['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def test_decode_strategies_smoke(benchmark, emit, emit_json):
    """CI tripwire: batch must not be slower than scalar on the vector
    backend at the smoke size (and must agree with it everywhere)."""
    backends = available_backends()

    def run():
        return [_measure(SMOKE_SIZE, backend) for backend in backends]

    runs = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    emit("b3_decode_smoke", "B3 smoke: batch vs scalar decode\n" + _render(runs))
    emit_json(
        "b3_decode_smoke",
        {"experiment": "b3_smoke", "smoke_size": SMOKE_SIZE, "runs": runs},
    )
    if "numpy" in backends:
        vector = next(run for run in runs if run["backend"] == "numpy")
        assert vector["decode_batch_s"] <= vector["decode_scalar_s"], (
            f"perf regression: batch decode ({vector['decode_batch_s']:.4f}s) "
            f"slower than scalar ({vector['decode_scalar_s']:.4f}s) on the "
            f"vector backend at diff={SMOKE_SIZE}"
        )


def test_decode_strategies_full(benchmark, emit, emit_json, results_dir):
    """The recorded PR-3 baseline (BENCH_3.json)."""
    backends = available_backends()

    def run():
        runs = [
            _measure(size, backend)
            for backend in backends
            for size in FULL_SIZES
        ]
        end_to_end = [_end_to_end(backend) for backend in backends]
        return runs, end_to_end

    runs, end_to_end = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    payload = {
        "bench": "BENCH_3",
        "experiment": "decode strategies (batch vs scalar peeling)",
        "sizes": list(FULL_SIZES),
        "runs": runs,
        "end_to_end": end_to_end,
    }
    emit("b3_decode_strategies", "B3: batch vs scalar decode\n" + _render(runs))
    emit_json("BENCH_3", payload)
    # Mirror the baseline to the repo root (the perf-trajectory anchor).
    root_copy = pathlib.Path(__file__).resolve().parent.parent / "BENCH_3.json"
    root_copy.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    if "numpy" in backends:
        worst = min(
            run["speedup"] for run in runs if run["backend"] == "numpy"
        )
        assert worst >= 5.0, (
            f"acceptance: batch decode must be >=5x scalar on the vector "
            f"backend at diff sizes >= 2e4; measured {worst:.1f}x"
        )


if __name__ == "__main__":  # pragma: no cover - manual convenience runner
    pytest.main([__file__, "-k", "full", "-q"])
