"""E3 — Repaired EMD vs communication budget (figure).

Claim under test: the accuracy/communication trade-off.  As ``k`` grows the
protocol decodes finer levels; the repaired ``EMD(S_A, S'_B)`` falls
towards the ``EMD_k`` floor, staying within the ``O(d)`` factor of it.
"""

from __future__ import annotations

from benchmarks._harness import kbits, run_once
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.core.bounds import approximation_factor
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.emd.partial import emd_k
from repro.workloads.synthetic import perturbed_pair

BUDGETS = (2, 4, 8, 16, 32)
DELTA = 2**16
N = 400
TRUE_K = 8
NOISE = 4
SEEDS = (0, 1, 2)


def experiment() -> str:
    table = Table(
        ["k", "bits (kbit)", "EMD after", "EMD_k floor", "ratio",
         "bound factor"],
        title=f"E3: repaired EMD vs budget  (n={N}, true_k={TRUE_K}, "
              f"noise=±{NOISE}, d=2, {len(SEEDS)} seeds)",
    )
    for k in BUDGETS:
        bits_runs, after_runs, floor_runs, ratio_runs = [], [], [], []
        for seed in SEEDS:
            workload = perturbed_pair(seed, N, DELTA, 2, TRUE_K, NOISE)
            config = ProtocolConfig(delta=DELTA, dimension=2, k=k, seed=seed)
            result = reconcile(workload.alice, workload.bob, config)
            after = emd(workload.alice, result.repaired, backend="scipy")
            floor = emd_k(workload.alice, workload.bob, k, backend="scipy")
            bits_runs.append(result.transcript.total_bits)
            after_runs.append(after)
            floor_runs.append(floor)
            if floor > 0:
                ratio_runs.append(after / floor)
        table.add_row([
            k,
            kbits(sum(bits_runs) / len(bits_runs)),
            summarize(after_runs).format(0),
            summarize(floor_runs).format(0),
            summarize(ratio_runs).format(2) if ratio_runs else "-",
            f"{approximation_factor(2):.0f}",
        ])
    return table.render()


def test_emd_vs_budget(benchmark, emit):
    emit("e3_emd_vs_budget", run_once(benchmark, experiment))
