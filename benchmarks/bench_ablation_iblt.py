"""A2 — Ablation: IBLT shape (hash count q and sizing margin) (table).

Claim under test: the q=4 / margin=3 defaults.  Fewer hashes (q=3) have a
higher peeling threshold but weaker per-key randomness at small tables;
more hashes (q=5) lower the threshold and cost more hashing.  A smaller
margin saves bits but loses decode headroom, pushing decodes to coarser
levels (worse EMD) or outright failure.
"""

from __future__ import annotations

from benchmarks._harness import run_once
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.emd.matching import emd
from repro.errors import ReconciliationFailure
from repro.workloads.synthetic import perturbed_pair

DELTA = 2**16
N = 400
TRUE_K = 4
NOISE = 4
SEEDS = tuple(range(6))


def experiment() -> str:
    table = Table(
        ["q", "margin", "kbit (mean)", "decode level (mean)", "EMD (mean)",
         "failures"],
        title=f"A2: IBLT shape ablation  (n={N}, true_k={TRUE_K}, "
              f"noise=±{NOISE}, {len(SEEDS)} seeds)",
    )
    for q in (3, 4, 5):
        for margin in (1.5, 3.0):
            bits, levels, emds, failures = [], [], [], 0
            for seed in SEEDS:
                workload = perturbed_pair(seed, N, DELTA, 2, TRUE_K, NOISE)
                config = ProtocolConfig(
                    delta=DELTA, dimension=2, k=2 * TRUE_K, seed=seed,
                    q=q, diff_margin=margin,
                )
                try:
                    result = reconcile(workload.alice, workload.bob, config)
                except ReconciliationFailure:
                    failures += 1
                    continue
                bits.append(result.transcript.total_bits / 1000)
                levels.append(float(result.level))
                emds.append(
                    emd(workload.alice, result.repaired, backend="scipy")
                )
            table.add_row([
                q, margin,
                summarize(bits).format() if bits else "-",
                summarize(levels).format() if levels else "-",
                summarize(emds).format(0) if emds else "-",
                failures,
            ])
    return table.render()


def test_ablation_iblt(benchmark, emit):
    emit("a2_ablation_iblt", run_once(benchmark, experiment))
