"""Helpers shared by the experiment benchmarks."""

from __future__ import annotations

import math
import os

from repro.analysis.methods import MethodRun
from repro.analysis.stats import summarize
from repro.workloads.base import WorkloadPair


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def percentile(values, q: float) -> float:
    """Linear-interpolated percentile (numpy's default / R type 7).

    The ceil-index quantile the early benchmarks used jumps in steps of
    one sample — at 96 syncs a p95 moves in ~1% increments and two runs
    that differ by one slow sync report visibly different tails.  Linear
    interpolation between the bracketing order statistics is the
    schema-2 convention for every latency column.
    """
    if not values:
        raise ValueError("percentile() of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    data = sorted(values)
    position = (len(data) - 1) * q
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return data[low]
    return data[low] + (data[high] - data[low]) * (position - low)


def schema2_payload(experiment: str, *, rows, **extra) -> dict:
    """Assemble a schema-2 benchmark record.

    Schema 2 (BENCH_9 onward) adds provenance that schema-1 records
    left implicit: a ``schema`` version field, the machine's
    ``cpu_count``, and — per row, stamped by the benchmark — the worker
    count that produced the numbers.  Consumers can then separate
    "server got faster" from "server got more cores".
    """
    return {
        "schema": 2,
        "experiment": experiment,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        **extra,
    }


def kbits(bits: float) -> str:
    """Render a bit count as kilobits with one decimal."""
    return f"{bits / 1000:.1f}"


def aggregate_bits(runs: list[MethodRun]) -> str:
    """Mean±ci of the communication of several runs, in kilobits."""
    summary = summarize([run.bits / 1000 for run in runs])
    return summary.format()


def aggregate_emd(runs: list[MethodRun], workloads: list[WorkloadPair]) -> str:
    """Mean±ci of the repaired EMD of several runs."""
    values = [run.emd_to(w) for run, w in zip(runs, workloads)]
    values = [v for v in values if v == v]  # drop NaNs from failures
    if not values:
        return "fail"
    return summarize(values).format(0)
