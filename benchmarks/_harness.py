"""Helpers shared by the experiment benchmarks."""

from __future__ import annotations

from repro.analysis.methods import MethodRun
from repro.analysis.stats import summarize
from repro.workloads.base import WorkloadPair


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def kbits(bits: float) -> str:
    """Render a bit count as kilobits with one decimal."""
    return f"{bits / 1000:.1f}"


def aggregate_bits(runs: list[MethodRun]) -> str:
    """Mean±ci of the communication of several runs, in kilobits."""
    summary = summarize([run.bits / 1000 for run in runs])
    return summary.format()


def aggregate_emd(runs: list[MethodRun], workloads: list[WorkloadPair]) -> str:
    """Mean±ci of the repaired EMD of several runs."""
    values = [run.emd_to(w) for run, w in zip(runs, workloads)]
    values = [v for v in values if v == v]  # drop NaNs from failures
    if not values:
        return "fail"
    return summarize(values).format(0)
