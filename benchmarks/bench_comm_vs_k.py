"""E2 — Communication vs budget parameter k (figure).

Claim under test: the robust protocol's message is ``O(k log Δ)`` cells —
linear in ``k`` at fixed geometry — and the measured bits track the
analytic formula in :mod:`repro.core.bounds`.
"""

from __future__ import annotations

from benchmarks._harness import kbits, run_once
from repro.analysis.tables import Table
from repro.core.bounds import lower_bound_bits, one_round_bits_estimate
from repro.core.config import ProtocolConfig
from repro.core.protocol import reconcile
from repro.workloads.synthetic import perturbed_pair

BUDGETS = (1, 2, 4, 8, 16, 32, 64, 128)
DELTA = 2**20
N = 2000
NOISE = 4
SEED = 0


def experiment() -> str:
    table = Table(
        ["k", "measured (kbit)", "analytic (kbit)", "lower bound (bit)",
         "measured/bound"],
        title=f"E2: communication vs k  (n={N}, delta=2^20, d=2)",
    )
    workload = perturbed_pair(SEED, N, DELTA, 2, true_k=1, noise=NOISE)
    for k in BUDGETS:
        config = ProtocolConfig(delta=DELTA, dimension=2, k=k, seed=SEED)
        result = reconcile(workload.alice, workload.bob, config)
        measured = result.transcript.total_bits
        analytic = one_round_bits_estimate(config)
        bound = lower_bound_bits(k, DELTA, 2)
        table.add_row(
            [k, kbits(measured), kbits(analytic), bound,
             f"{measured / bound:.1f}"]
        )
    return table.render()


def test_comm_vs_k(benchmark, emit):
    emit("e2_comm_vs_k", run_once(benchmark, experiment))
