"""Shared plumbing for the exact-reconciliation baselines.

Every baseline speaks the same contract as the robust protocol's
:func:`~repro.core.protocol.reconcile`: given Alice's and Bob's point
multisets and a simulated channel, produce Bob's final set and a measured
transcript.  Exact baselines encode points as packed integers
(:func:`pack_point`) — they treat a noisy duplicate as a brand-new element,
which is precisely the behaviour the robust protocol improves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.emd.metrics import Point
from repro.errors import ConfigError
from repro.net.transcript import Transcript


def coordinate_bits(delta: int) -> int:
    """Bits per coordinate for the universe ``[delta]^d``."""
    if delta < 2:
        raise ConfigError(f"delta must be >= 2, got {delta}")
    return max(1, (delta - 1).bit_length())


def pack_point(point: Point, delta: int, dimension: int) -> int:
    """Pack a grid point into a single integer key (row-major, MSB first)."""
    if len(point) != dimension:
        raise ConfigError(
            f"point has dimension {len(point)}, expected {dimension}"
        )
    bits = coordinate_bits(delta)
    key = 0
    for coordinate in point:
        if not 0 <= coordinate < delta:
            raise ConfigError(
                f"coordinate {coordinate} outside [0, {delta})"
            )
        key = (key << bits) | coordinate
    return key


def unpack_point(key: int, delta: int, dimension: int) -> Point:
    """Inverse of :func:`pack_point`."""
    bits = coordinate_bits(delta)
    if key < 0 or key.bit_length() > bits * dimension:
        raise ConfigError(f"key {key} does not fit {dimension} coordinates")
    mask = (1 << bits) - 1
    reversed_coords = []
    for _ in range(dimension):
        coordinate = key & mask
        if coordinate >= delta:
            raise ConfigError(f"decoded coordinate {coordinate} >= {delta}")
        reversed_coords.append(coordinate)
        key >>= bits
    return tuple(reversed(reversed_coords))


def point_bits(delta: int, dimension: int) -> int:
    """Wire width of one packed point."""
    return coordinate_bits(delta) * dimension


@dataclass
class BaselineResult:
    """Outcome of one baseline run.

    Attributes
    ----------
    repaired:
        Bob's final point multiset.
    transcript:
        Measured communication.
    method:
        Short method tag used by benchmark tables.
    info:
        Method-specific diagnostics (difference estimates, retry counts...).
    """

    repaired: list[Point]
    transcript: Transcript
    method: str
    info: dict

    @property
    def total_bits(self) -> int:
        """Total measured communication in bits."""
        return self.transcript.total_bits


class Reconciler(Protocol):
    """The call signature every baseline (and the robust adapters) satisfy."""

    def run(
        self, alice_points: Sequence[Point], bob_points: Sequence[Point]
    ) -> BaselineResult:
        """Reconcile and return Bob's final set plus the transcript."""
        ...
