"""Exact-reconciliation baselines the paper's protocol is evaluated against.

All four baselines implement the same ``run(alice, bob, channel)`` call
returning a :class:`~repro.baselines.base.BaselineResult`:

* :class:`~repro.baselines.full_transfer.FullTransfer` — ship everything;
  the communication ceiling (``n·d·log Δ`` bits) and quality floor (exact).
* :class:`~repro.baselines.exact_ibf.ExactIBF` — the Difference Digest
  (strata estimator + IBLT).  Exact, communication ``∝ |S_A △ S_B|`` —
  which under noise is ``Θ(n)``, the non-robustness the paper targets.
* :class:`~repro.baselines.cpi.CPIReconciler` — Minsky–Trachtenberg–Zippel
  characteristic-polynomial reconciliation.  Near-optimal bits per
  difference, cubic decode time in the difference — the classical exact
  protocol predating IBLTs.
* :class:`~repro.baselines.fixed_grid.FixedGridQuantize` — quantise to one
  deterministic grid, then exact-reconcile cell keys.  The strawman
  "just round the values" fix: no hierarchy (the width must be guessed)
  and no random shift (boundary noise defeats it).
"""

from repro.baselines.base import BaselineResult, pack_point, unpack_point
from repro.baselines.cpi import CPIReconciler
from repro.baselines.exact_ibf import ExactIBF
from repro.baselines.fixed_grid import FixedGridQuantize
from repro.baselines.full_transfer import FullTransfer

__all__ = [
    "BaselineResult",
    "CPIReconciler",
    "ExactIBF",
    "FixedGridQuantize",
    "FullTransfer",
    "pack_point",
    "unpack_point",
]
