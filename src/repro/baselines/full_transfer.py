"""The trivial baseline: Alice ships her entire set.

Costs ``n · d · ceil(log2 Δ)`` bits plus a varint header, always succeeds,
and is exact.  Every other method is judged against this ceiling.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import (
    BaselineResult,
    pack_point,
    point_bits,
    unpack_point,
)
from repro.emd.metrics import Point
from repro.errors import ConfigError
from repro.net.bits import BitReader, BitWriter
from repro.net.channel import Direction, SimulatedChannel
from repro.net.transcript import Transcript


class FullTransfer:
    """Ship-everything reconciliation for the universe ``[delta]^d``."""

    method = "full-transfer"

    def __init__(self, delta: int, dimension: int):
        if delta < 2 or dimension < 1:
            raise ConfigError("delta must be >= 2 and dimension >= 1")
        self.delta = delta
        self.dimension = dimension

    def encode(self, points: Sequence[Point]) -> bytes:
        """Alice's message: a varint count then fixed-width packed points."""
        writer = BitWriter()
        writer.write_varint(len(points))
        width = point_bits(self.delta, self.dimension)
        for point in points:
            writer.write_uint(pack_point(point, self.delta, self.dimension), width)
        return writer.getvalue()

    def decode(self, payload: bytes) -> list[Point]:
        """Bob's side: the decoded set *is* the answer."""
        reader = BitReader(payload)
        count = reader.read_varint()
        width = point_bits(self.delta, self.dimension)
        points = [
            unpack_point(reader.read_uint(width), self.delta, self.dimension)
            for _ in range(count)
        ]
        reader.expect_end()
        return points

    def run(
        self,
        alice_points: Sequence[Point],
        bob_points: Sequence[Point],
        channel: SimulatedChannel | None = None,
    ) -> BaselineResult:
        """One message, Bob adopts Alice's set verbatim."""
        channel = channel if channel is not None else SimulatedChannel()
        payload = channel.send(
            Direction.ALICE_TO_BOB, self.encode(alice_points), "full-transfer"
        )
        repaired = self.decode(payload)
        channel.close()
        return BaselineResult(
            repaired=repaired,
            transcript=Transcript.from_channel(channel),
            method=self.method,
            info={"points_shipped": len(alice_points)},
        )
