"""Characteristic-polynomial set reconciliation (Minsky–Trachtenberg–Zippel).

The classical exact protocol with near-optimal communication: to reconcile
sets differing in ``m`` elements, Alice ships ``m + 1`` (+ verification)
field elements — evaluations of her characteristic polynomial
``chi_A(Z) = Π (Z - x)`` at shared sample points.  Bob divides by his own
``chi_B``, interpolates the reduced rational function
``chi_{A\\B} / chi_{B\\A}``, and factors numerator and denominator.

Phases (mirroring :mod:`repro.baselines.exact_ibf`):

1. **Bob → Alice**: strata estimate of the difference (the classical
   protocol assumes a known bound; we obtain one the same way the
   Difference Digest does, keeping the comparison fair).
2. **Alice → Bob**: ``m̄ + 1 + verify`` evaluations.
3. Bob interpolates + factors; on failure he NACKs and the bound doubles.

Bits per difference are ~``log2 p`` — essentially optimal — but decode time
is ``Θ(m̄^3)`` (Gaussian elimination) versus the IBLT's ``O(m̄)``: the
classical trade-off the IBLT line of work (and this paper) leans on.

Universe restriction: packed points must fit the field, so
``dimension * ceil(log2 delta) <= 60``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.baselines.base import BaselineResult, pack_point, unpack_point
from repro.emd.metrics import Point
from repro.errors import ConfigError, ReconciliationFailure
from repro.gf.factor import NotSplitError, roots_of_split_polynomial
from repro.gf.field import MERSENNE61, PrimeField
from repro.gf.interp import interpolate_rational
from repro.gf.poly import Poly
from repro.iblt.hashing import hash_with_salt
from repro.iblt.strata import StrataConfig, StrataEstimator
from repro.net.bits import BitReader, BitWriter
from repro.net.channel import Direction, SimulatedChannel
from repro.net.transcript import Transcript

FIELD_BITS = 61


class CPIReconciler:
    """MTZ characteristic-polynomial reconciliation on ``[delta]^d`` sets."""

    method = "cpi"

    def __init__(
        self,
        delta: int,
        dimension: int,
        seed: int = 0,
        headroom: float = 1.5,
        verify_points: int = 2,
        max_retries: int = 2,
    ):
        if delta < 2 or dimension < 1:
            raise ConfigError("delta must be >= 2 and dimension >= 1")
        key_bits = dimension * max(1, (delta - 1).bit_length())
        if key_bits > 60:
            raise ConfigError(
                f"packed points need {key_bits} bits; CPI over GF(2^61-1) "
                "supports at most 60 (shrink delta or dimension)"
            )
        if headroom < 1:
            raise ConfigError(f"headroom must be >= 1, got {headroom}")
        if verify_points < 0:
            raise ConfigError(f"verify_points must be >= 0, got {verify_points}")
        self.delta = delta
        self.dimension = dimension
        self.seed = seed
        self.headroom = headroom
        self.verify_points = verify_points
        self.max_retries = max_retries
        self.field = PrimeField(MERSENNE61)
        self.key_bits = key_bits

    # ------------------------------------------------------------ components

    def _keys(self, points: Sequence[Point]) -> list[int]:
        keys = [pack_point(p, self.delta, self.dimension) for p in points]
        if len(set(keys)) != len(keys):
            raise ConfigError(
                "CPI baseline requires distinct points (duplicate in input)"
            )
        return keys

    def strata_config(self) -> StrataConfig:
        """Difference estimator config (same machinery as exact IBF)."""
        return StrataConfig(
            strata=16,
            cells_per_stratum=24,
            q=4,
            key_bits=self.key_bits,
            checksum_bits=24,
            seed=hash_with_salt(0xC91, self.seed),
        )

    def sample_points(self, count: int) -> list[int]:
        """Shared evaluation points, disjoint from the packed universe.

        Points are drawn above ``2^60`` so no party's characteristic
        polynomial can vanish at a sample (set elements are < 2^60).
        """
        rng = random.Random(hash_with_salt(0x5A9, self.seed))
        low = 1 << 60
        points: list[int] = []
        seen: set[int] = set()
        while len(points) < count:
            candidate = rng.randrange(low, self.field.p)
            if candidate not in seen:
                seen.add(candidate)
                points.append(candidate)
        return points

    # -------------------------------------------------------------- protocol

    def run(
        self,
        alice_points: Sequence[Point],
        bob_points: Sequence[Point],
        channel: SimulatedChannel | None = None,
    ) -> BaselineResult:
        """Run estimate / evaluate / interpolate (with doubling retries)."""
        channel = channel if channel is not None else SimulatedChannel()
        alice_keys = self._keys(alice_points)
        bob_keys = self._keys(bob_points)

        bob_estimator = StrataEstimator(self.strata_config())
        bob_estimator.insert_all(bob_keys)
        request = channel.send(
            Direction.BOB_TO_ALICE, bob_estimator.to_bytes(), "strata-estimate"
        )
        alice_estimator = StrataEstimator(self.strata_config())
        alice_estimator.insert_all(alice_keys)
        received = StrataEstimator.from_bytes(request, self.strata_config())
        estimate = alice_estimator.estimate_difference(received)

        size_delta = len(alice_keys) - len(bob_keys)
        bound = max(abs(size_delta), int(estimate * self.headroom), 2)
        retries = 0
        while True:
            bound = self._fix_parity(bound, size_delta)
            payload = self._alice_payload(alice_keys, bound)
            response = channel.send(
                Direction.ALICE_TO_BOB, payload, f"char-poly-evals[{bound}]"
            )
            outcome = self._bob_decode(response, bob_keys)
            if outcome is not None:
                alice_only, bob_only = outcome
                break
            if retries >= self.max_retries:
                channel.close()
                raise ReconciliationFailure(
                    f"CPI failed after {retries} retries "
                    f"(estimate {estimate}, last bound {bound})"
                )
            retries += 1
            bound *= 2
            channel.send(Direction.BOB_TO_ALICE, b"\x00", "nack")

        bob_only_set = set(bob_only)
        repaired = [
            point
            for point, key in zip(bob_points, bob_keys)
            if key not in bob_only_set
        ]
        repaired.extend(
            unpack_point(key, self.delta, self.dimension) for key in alice_only
        )
        channel.close()
        return BaselineResult(
            repaired=repaired,
            transcript=Transcript.from_channel(channel),
            method=self.method,
            info={
                "estimate": estimate,
                "difference": len(alice_only) + len(bob_only),
                "retries": retries,
                "bound": bound,
            },
        )

    @staticmethod
    def _fix_parity(bound: int, size_delta: int) -> int:
        """The degree split needs ``bound ≡ size_delta (mod 2)``."""
        return bound if (bound - size_delta) % 2 == 0 else bound + 1

    def _alice_payload(self, alice_keys: list[int], bound: int) -> bytes:
        count = bound + 1 + self.verify_points
        chi = Poly.from_roots(self.field, alice_keys)
        writer = BitWriter()
        writer.write_varint(len(alice_keys))
        writer.write_varint(bound)
        for z in self.sample_points(count):
            writer.write_uint(chi(z), FIELD_BITS)
        return writer.getvalue()

    def _bob_decode(
        self, payload: bytes, bob_keys: list[int]
    ) -> tuple[list[int], list[int]] | None:
        reader = BitReader(payload)
        n_alice = reader.read_varint()
        bound = reader.read_varint()
        count = bound + 1 + self.verify_points
        points = self.sample_points(count)
        alice_values = [reader.read_uint(FIELD_BITS) for _ in range(count)]
        reader.expect_end()

        chi_bob = Poly.from_roots(self.field, bob_keys)
        try:
            ratios = [
                self.field.div(value, chi_bob(z))
                for value, z in zip(alice_values, points)
            ]
        except ZeroDivisionError:
            return None  # a sample hit Bob's set: universe contract violated
        size_delta = n_alice - len(bob_keys)
        d_num = (bound + size_delta) // 2
        d_den = (bound - size_delta) // 2
        if d_num < 0 or d_den < 0:
            return None
        try:
            rational = interpolate_rational(
                self.field, points, ratios, d_num, d_den
            )
            alice_only = roots_of_split_polynomial(rational.numerator)
            bob_only = roots_of_split_polynomial(rational.denominator)
        except (ReconciliationFailure, NotSplitError):
            return None
        if not set(bob_only) <= set(bob_keys):
            return None  # recovered "Bob" elements Bob does not hold
        if any(key.bit_length() > self.key_bits for key in alice_only):
            return None  # recovered elements outside the universe
        return alice_only, bob_only
