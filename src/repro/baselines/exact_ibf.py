"""Exact set reconciliation via the Difference Digest (Eppstein et al. 2011).

Three-phase protocol over packed point keys:

1. **Bob → Alice**: a strata estimator of ``|S_A △ S_B|``.
2. **Alice → Bob**: an IBLT sized to the estimate (× headroom).
3. Bob subtracts his keys and peels.  On a decode failure Bob NACKs and
   Alice re-sends a doubled table (bounded retries) — the practical recovery
   loop real deployments use.

This baseline is *exact*: Bob finishes with precisely Alice's set.  Its
communication is proportional to the symmetric difference — which is the
whole point of the comparison: under coordinate noise every perturbed point
is a difference, the estimate approaches ``2n``, and the "efficient" exact
protocol degenerates to (worse than) full transfer.  The robust protocol
exists to fix exactly this.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import BaselineResult, pack_point, unpack_point
from repro.emd.metrics import Point
from repro.errors import ConfigError, ReconciliationFailure
from repro.iblt.decode import decode
from repro.iblt.hashing import hash_with_salt
from repro.iblt.strata import StrataConfig, StrataEstimator
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells
from repro.net.bits import BitReader, BitWriter
from repro.net.channel import Direction, SimulatedChannel
from repro.net.transcript import Transcript


class ExactIBF:
    """Difference-Digest exact reconciliation on ``[delta]^d`` point sets.

    Parameters
    ----------
    delta, dimension:
        Universe geometry; points are packed into
        ``dimension * ceil(log2 delta)``-bit keys.
    seed:
        Public-coin seed shared by both parties.
    headroom:
        IBLT sizing factor applied to the strata estimate.
    max_retries:
        Doubling rounds allowed after a decode failure.
    """

    method = "exact-ibf"

    def __init__(
        self,
        delta: int,
        dimension: int,
        seed: int = 0,
        headroom: float = 2.0,
        max_retries: int = 2,
        q: int = 4,
    ):
        if delta < 2 or dimension < 1:
            raise ConfigError("delta must be >= 2 and dimension >= 1")
        if headroom < 1:
            raise ConfigError(f"headroom must be >= 1, got {headroom}")
        if max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
        self.delta = delta
        self.dimension = dimension
        self.seed = seed
        self.headroom = headroom
        self.max_retries = max_retries
        self.q = q
        self.key_bits = dimension * max(1, (delta - 1).bit_length())

    # ------------------------------------------------------------ components

    def _keys(self, points: Sequence[Point]) -> list[int]:
        keys = [pack_point(p, self.delta, self.dimension) for p in points]
        if len(set(keys)) != len(keys):
            # Classical exact reconciliation is defined on sets; duplicate
            # keys would XOR-cancel inside the sketch.
            raise ConfigError(
                "exact IBF baseline requires distinct points "
                "(duplicate point in input)"
            )
        return keys

    def strata_config(self) -> StrataConfig:
        """Config of the difference estimator (shared via public coins)."""
        return StrataConfig(
            strata=16,
            cells_per_stratum=24,
            q=self.q,
            key_bits=self.key_bits,
            checksum_bits=24,
            seed=hash_with_salt(0xD1FF, self.seed),
        )

    def iblt_config(self, cells: int) -> IBLTConfig:
        """Config of the main difference table for a given size."""
        return IBLTConfig(
            cells=cells,
            q=self.q,
            key_bits=self.key_bits,
            checksum_bits=32,
            seed=hash_with_salt(0x1B17, self.seed),
        )

    # -------------------------------------------------------------- protocol

    def run(
        self,
        alice_points: Sequence[Point],
        bob_points: Sequence[Point],
        channel: SimulatedChannel | None = None,
    ) -> BaselineResult:
        """Run the full estimate / sketch / (retry) exchange."""
        channel = channel if channel is not None else SimulatedChannel()
        alice_keys = self._keys(alice_points)
        bob_keys = self._keys(bob_points)

        # Round 1: Bob's estimator.
        bob_estimator = StrataEstimator(self.strata_config())
        bob_estimator.insert_all(bob_keys)
        request = channel.send(
            Direction.BOB_TO_ALICE, bob_estimator.to_bytes(), "strata-estimate"
        )

        # Alice's estimate of the difference.
        alice_estimator = StrataEstimator(self.strata_config())
        alice_estimator.insert_all(alice_keys)
        received = StrataEstimator.from_bytes(request, self.strata_config())
        estimate = alice_estimator.estimate_difference(received)

        cells = recommended_cells(
            max(8, int(estimate * self.headroom)), q=self.q
        )
        retries = 0
        while True:
            payload = self._alice_payload(alice_keys, cells)
            response = channel.send(
                Direction.ALICE_TO_BOB, payload, f"ibf[{cells}]"
            )
            outcome = self._bob_decode(response, bob_keys, cells)
            if outcome is not None:
                alice_only, bob_only = outcome
                break
            if retries >= self.max_retries:
                channel.close()
                raise ReconciliationFailure(
                    f"exact IBF failed after {retries} retries "
                    f"(estimate {estimate}, last size {cells})"
                )
            retries += 1
            cells *= 2
            channel.send(Direction.BOB_TO_ALICE, b"\x00", "nack")

        repaired = [p for p in bob_points if pack_point(
            p, self.delta, self.dimension) not in bob_only]
        repaired.extend(
            unpack_point(key, self.delta, self.dimension) for key in alice_only
        )
        channel.close()
        return BaselineResult(
            repaired=repaired,
            transcript=Transcript.from_channel(channel),
            method=self.method,
            info={
                "estimate": estimate,
                "difference": len(alice_only) + len(bob_only),
                "retries": retries,
                "cells": cells,
            },
        )

    def _alice_payload(self, alice_keys: list[int], cells: int) -> bytes:
        table = IBLT(self.iblt_config(cells))
        table.insert_all(alice_keys)
        writer = BitWriter()
        writer.write_varint(cells)
        table.write_to(writer)
        return writer.getvalue()

    def _bob_decode(
        self, payload: bytes, bob_keys: list[int], expected_cells: int
    ) -> tuple[set[int], set[int]] | None:
        reader = BitReader(payload)
        cells = reader.read_varint()
        if cells != expected_cells:
            raise ReconciliationFailure(
                f"table size mismatch: {cells} != {expected_cells}"
            )
        alice_table = IBLT.read_from(reader, self.iblt_config(cells))
        reader.expect_end()
        bob_table = IBLT(self.iblt_config(cells))
        bob_table.insert_all(bob_keys)
        result = decode(alice_table.subtract(bob_table))
        if not result.success:
            return None
        return set(result.alice_keys), set(result.bob_keys)
