"""The strawman robustness fix: quantise once, reconcile exactly.

"Just round the coordinates" is the first idea anyone has for noisy data.
This baseline makes it concrete so the benchmarks can show why the paper's
hierarchy + random shift are both necessary:

* **One fixed cell width** must be guessed in advance.  Too small and noisy
  duplicates still split (communication explodes); too large and genuinely
  different points merge (quality collapses).  The robust protocol's
  hierarchy finds the right scale per instance.
* **No random shift**: points near a deterministic cell boundary flip cells
  under arbitrarily small noise.  A random offset makes the split
  probability proportional to the noise, which is what the analysis needs —
  and what the adversarial ablation workload demonstrates.

Mechanically this is the robust protocol restricted to a single unshifted
level, with the same occurrence-indexed multiset keys, followed by the same
repair.  Comparisons are therefore apples-to-apples.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.grid import ShiftedGridHierarchy
from repro.core.repair import apply_repair, plan_repair
from repro.baselines.base import BaselineResult
from repro.emd.metrics import Point
from repro.errors import ConfigError, ReconciliationFailure
from repro.iblt.decode import decode
from repro.iblt.hashing import hash_with_salt
from repro.iblt.strata import StrataConfig, StrataEstimator
from repro.iblt.table import IBLT, IBLTConfig, recommended_cells
from repro.net.bits import BitReader, BitWriter
from repro.net.channel import Direction, SimulatedChannel
from repro.net.transcript import Transcript


class FixedGridQuantize:
    """Single-level deterministic-grid reconciliation.

    Parameters
    ----------
    delta, dimension:
        Universe geometry.
    level:
        The one quantisation level (cell side ``2^level``), fixed a priori.
    random_shift:
        Optionally re-enable the random offset (isolates the
        hierarchy-vs-shift contributions in ablations); default off, as the
        strawman would do.
    """

    method = "fixed-grid"

    def __init__(
        self,
        delta: int,
        dimension: int,
        level: int,
        seed: int = 0,
        random_shift: bool = False,
        headroom: float = 2.0,
        max_retries: int = 2,
        q: int = 4,
    ):
        if headroom < 1:
            raise ConfigError(f"headroom must be >= 1, got {headroom}")
        shift = None if random_shift else (0,) * dimension
        self.grid = ShiftedGridHierarchy(delta, dimension, seed, shift=shift)
        if not 0 <= level <= self.grid.max_level:
            raise ConfigError(
                f"level {level} outside [0, {self.grid.max_level}]"
            )
        self.level = level
        self.seed = seed
        self.headroom = headroom
        self.max_retries = max_retries
        self.q = q

    # ------------------------------------------------------------ components

    def strata_config(self) -> StrataConfig:
        """Difference estimator over this level's packed cell keys."""
        return StrataConfig(
            strata=16,
            cells_per_stratum=24,
            q=self.q,
            key_bits=self.grid.key_bits(self.level),
            checksum_bits=24,
            seed=hash_with_salt(0xF1D, self.seed),
        )

    def iblt_config(self, cells: int) -> IBLTConfig:
        """Main difference table config for a given size."""
        return IBLTConfig(
            cells=cells,
            q=self.q,
            key_bits=self.grid.key_bits(self.level),
            checksum_bits=32,
            seed=hash_with_salt(0xF1E, self.seed),
        )

    # -------------------------------------------------------------- protocol

    def run(
        self,
        alice_points: Sequence[Point],
        bob_points: Sequence[Point],
        channel: SimulatedChannel | None = None,
    ) -> BaselineResult:
        """Estimate, ship one sized table, decode, repair."""
        channel = channel if channel is not None else SimulatedChannel()
        alice_keys = list(self.grid.keys_for(alice_points, self.level))
        bob_keys = list(self.grid.keys_for(bob_points, self.level))

        bob_estimator = StrataEstimator(self.strata_config())
        bob_estimator.insert_all(bob_keys)
        request = channel.send(
            Direction.BOB_TO_ALICE, bob_estimator.to_bytes(), "strata-estimate"
        )
        alice_estimator = StrataEstimator(self.strata_config())
        alice_estimator.insert_all(alice_keys)
        received = StrataEstimator.from_bytes(request, self.strata_config())
        estimate = alice_estimator.estimate_difference(received)

        cells = recommended_cells(max(8, int(estimate * self.headroom)), q=self.q)
        retries = 0
        while True:
            writer = BitWriter()
            writer.write_varint(len(alice_points))
            writer.write_varint(cells)
            alice_table = IBLT(self.iblt_config(cells))
            alice_table.insert_all(alice_keys)
            alice_table.write_to(writer)
            response = channel.send(
                Direction.ALICE_TO_BOB, writer.getvalue(), f"grid-ibf[{cells}]"
            )
            outcome = self._bob_decode(response, bob_keys, len(bob_points))
            if outcome is not None:
                alice_surplus, bob_surplus = outcome
                break
            if retries >= self.max_retries:
                channel.close()
                raise ReconciliationFailure(
                    f"fixed-grid reconciliation failed after {retries} "
                    f"retries (estimate {estimate}, last size {cells})"
                )
            retries += 1
            cells *= 2
            channel.send(Direction.BOB_TO_ALICE, b"\x00", "nack")

        plan = plan_repair(
            list(bob_points), alice_surplus, bob_surplus, self.grid, self.level
        )
        repaired = apply_repair(list(bob_points), plan)
        channel.close()
        return BaselineResult(
            repaired=repaired,
            transcript=Transcript.from_channel(channel),
            method=self.method,
            info={
                "estimate": estimate,
                "difference": len(alice_surplus) + len(bob_surplus),
                "retries": retries,
                "cells": cells,
                "level": self.level,
            },
        )

    def _bob_decode(
        self, payload: bytes, bob_keys: list[int], n_bob: int
    ) -> tuple[list[int], list[int]] | None:
        reader = BitReader(payload)
        n_alice = reader.read_varint()
        cells = reader.read_varint()
        alice_table = IBLT.read_from(reader, self.iblt_config(cells))
        reader.expect_end()
        bob_table = IBLT(self.iblt_config(cells))
        bob_table.insert_all(bob_keys)
        result = decode(alice_table.subtract(bob_table))
        if not result.success:
            return None
        if len(result.alice_keys) - len(result.bob_keys) != n_alice - n_bob:
            return None
        return result.alice_keys, result.bob_keys
