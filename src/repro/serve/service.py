"""The asyncio reconciliation service: TCP server, client, stream pump.

The server is Alice for every connection: it holds the reference point
multiset and serves any protocol variant a client asks for (the client is
Bob, repairing towards the server).  One sans-I/O session per connection,
a semaphore bounding how many run concurrently, per-session stats, and a
handshake that rejects peers whose public-coin config drifted.

Concurrency model: frames move through the event loop; by default the
session's own compute (sketch encode, peel, repair) runs inline on the
loop, so sessions overlap on I/O and handshake latency while CPU work
serialises — the standard single-process asyncio trade.  Two layers lift
that cap:

* :class:`SessionOffload` moves session compute off the loop (and, for
  the per-request-heavy variants, onto a copy-on-write process pool from
  :mod:`repro.scale.executors`), so one big sync cannot stall a worker's
  accept/handshake/frame traffic.
* :class:`~repro.serve.pool.WorkerPoolServer` pre-forks N processes each
  running this server over a shared listen socket, scaling sessions/s
  with the machine's cores.

The split that makes the pool cheap is :class:`ServerCore`: everything a
connection needs but never mutates — config, knobs, the point multiset,
per-variant reconcilers and payload caches — lives there, built (and
optionally pre-warmed) once in the parent so forked workers inherit it
copy-on-write instead of rebuilding per process.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.core.adaptive import AdaptiveConfig, AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.core.rateless import RatelessConfig, RatelessReconciler
from repro.errors import (
    ConfigError,
    ReproError,
    ServerOverloadedError,
    SessionError,
    StaleResumeTokenError,
)
from repro.scale.executors import (
    ProcessExecutor,
    ThreadExecutor,
    fork_available,
)
from repro.net.channel import SimulatedChannel
from repro.net.transcript import Transcript
from repro.scale.engine import ShardedReconciler
from repro.serve import handshake
from repro.serve.frames import read_frame, write_frame
from repro.session import VARIANTS, make_session
from repro.session.base import Session
from repro.session.driver import (
    INBOUND_DIRECTION,
    OUTBOUND_DIRECTION,
    outbound_messages,
)
from repro.session.rateless import RatelessResumeState

#: Default per-read timeout; generous for a LAN, finite so nothing hangs.
DEFAULT_TIMEOUT = 30.0

#: Default whole-connection budget on the server: handshake-to-hangup for
#: one session.  No single slow (or stalling) peer may pin a worker slot
#: longer than this, whatever the per-read timeout allows frame by frame.
DEFAULT_SESSION_DEADLINE = 120.0

#: How long a transport is given to acknowledge ``close()`` before the
#: cleanup path stops waiting for it (the close itself is already issued;
#: only the confirmation is abandoned).
CLOSE_TIMEOUT = 5.0


async def close_writer(writer: asyncio.StreamWriter) -> None:
    """Close a transport and await the close with a bound, swallowing the
    races every failure path shares.

    The one cleanup used by every early return in the server and client:
    ``close()`` then ``wait_closed()``, tolerating peers that vanished
    first (``ConnectionError``/``OSError``) and transports that never
    confirm (bounded by :data:`CLOSE_TIMEOUT`, so a cleanup can never
    hang a handler that is already failing).
    """
    writer.close()
    try:
        await asyncio.wait_for(writer.wait_closed(), CLOSE_TIMEOUT)
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass


async def pump_stream(
    session: Session,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    channel: SimulatedChannel | None = None,
    timeout: float | None = DEFAULT_TIMEOUT,
    drive=None,
) -> object:
    """Drive one session endpoint over framed asyncio streams to completion.

    Optionally records every payload (both directions, with the same
    labels a simulated run uses) onto ``channel``, which makes TCP runs
    transcript-comparable with :class:`~repro.net.channel.SimulatedChannel`
    runs.  Returns the session's result.

    ``drive`` is the compute seam: ``None`` runs ``session.start()`` /
    ``session.feed()`` inline on the event loop (the default, and the
    client's behaviour); a server passes :meth:`SessionOffload.drive` to
    run them off-loop so a heavy decode cannot stall its other
    connections.  The session object itself is only ever touched by one
    call at a time either way — the pump is strictly sequential.
    """
    out_direction = OUTBOUND_DIRECTION[session.role]
    in_direction = INBOUND_DIRECTION[session.role]

    async def step(fn, *args):
        if drive is None:
            return fn(*args)
        return await drive(fn, *args)

    async def ship(output) -> None:
        for message in outbound_messages(output):
            if channel is not None:
                channel.send(out_direction, message.payload, message.label)
            await write_frame(writer, message.payload, timeout=timeout)

    await ship(await step(session.start))
    while not session.done:
        payload = await read_frame(reader, timeout=timeout)
        if channel is not None:
            channel.send(in_direction, payload, session.inbound_label())
        await ship(await step(session.feed, payload))
    return session.result


@dataclass
class SessionStats:
    """What the server remembers about one connection."""

    peer: str
    variant: str = ""
    ok: bool = False
    error: str = ""
    duration_s: float = 0.0
    shed: bool = False
    resumed_from: int | None = None
    transcript: Transcript | None = None

    def to_dict(self) -> dict:
        record = {
            "peer": self.peer,
            "variant": self.variant,
            "ok": self.ok,
            "error": self.error,
            "duration_s": self.duration_s,
            "shed": self.shed,
            "resumed_from": self.resumed_from,
        }
        if self.transcript is not None:
            record["transcript"] = self.transcript.to_dict()
        return record


@dataclass
class _ResumeEntry:
    """One rateless stream the server remembers how far it streamed.

    ``sent`` is the absolute count of increments written on any
    connection serving this stream; a resume request may continue at any
    index up to it.  The config digest pins the public coins the stream
    was encoded under — a drifted client must re-handshake from scratch.
    """

    digest: str
    sent: int = 0


class ServerCore:
    """The immutable, shareable half of a reconciliation server.

    Everything a connection needs but never mutates lives here: the
    public-coin configs, the reference point multiset, the per-variant
    reconcilers (grids, Alice's reused estimator/window state, the
    rateless increment cache) and the pre-encoded one-way payloads.
    Per-connection *mutable* state — the semaphore, stats, the resume-token
    LRU — stays on :class:`ReconciliationServer`.

    The split exists for the pre-fork pool: :meth:`warm` builds every
    cache once in the parent process, so forked workers inherit them
    copy-on-write instead of re-encoding the point set N times.  After a
    warm the caches are only ever *read* on the hot path, so sharing one
    core across workers (or across several servers in one process, as the
    differential tests do) is safe.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        *,
        adaptive: AdaptiveConfig | None = None,
        rateless: RatelessConfig | None = None,
        store=None,
    ):
        self.config = config
        self.adaptive = adaptive or AdaptiveConfig()
        self.rateless = rateless or RatelessConfig()
        self.points = points
        #: Optional :class:`~repro.store.DurableSketchStore` backing the
        #: one-way payload caches — the recovered sketch state *is* the
        #: encoded message, so a warm boot skips the from-scratch encode.
        #: Opened (and recovered) before the core is built, so under the
        #: pre-fork pool every worker inherits the recovered state
        #: copy-on-write.
        self.store = store
        self._reconcilers: dict[str, object] = {}
        self._encoded: dict[str, bytes] = {}
        self._digests: dict[str, str] = {}

    def recovery_summary(self) -> dict | None:
        """The store's recovery diagnostics for the welcome frame.

        ``None`` without a store (keeping the welcome byte-identical to
        a store-less server); otherwise a small dict clients may print
        but must never branch on.
        """
        if self.store is None:
            return None
        recovery = self.store.recovery
        return {
            "source": recovery.source,
            "generation": recovery.generation,
            "records": recovery.replayed_records,
            "n_points": recovery.n_points,
        }

    def ingest(self, points) -> int:
        """Durably insert live points (the broadcast / anti-entropy seam).

        With a store attached the batch is WAL-appended and fsynced
        *before* this returns (and before any caller acks upstream);
        the in-memory caches — encoded payloads, per-variant reconciler
        state — are then invalidated and rebuilt lazily on the next
        session.  Single-process servers only: a pre-fork pool's workers
        hold copy-on-write cores and one shared WAL must have one
        writer, so pools serve a fixed point set per incarnation (see
        the README's per-worker caveats).
        """
        points = list(points)
        if not points:
            return 0
        if self.store is not None:
            self.store.insert_batch(points)
        self.points = list(self.points) + points
        for reconciler in self._reconcilers.values():
            close = getattr(reconciler, "close", None)
            if close is not None:
                close()
        self._reconcilers.clear()
        self._encoded.clear()
        return len(points)

    def digest(self, variant: str) -> str:
        """The config digest this core expects for ``variant`` (cached —
        identical in every worker, so the handshake is digest-stable
        across the pool)."""
        if variant not in self._digests:
            self._digests[variant] = handshake.config_digest(
                self.config, variant, self.adaptive, self.rateless
            )
        return self._digests[variant]

    def reconciler(self, variant: str):
        """The shared per-variant engine (built on first use).

        The adaptive and rateless reconcilers opt into
        ``reuse_alice_state``: the server's point multiset is fixed for
        the core's lifetime, which is exactly the contract that flag
        requires.
        """
        factories = {
            "one-round": lambda: HierarchicalReconciler(self.config),
            "adaptive": lambda: AdaptiveReconciler(
                self.config, self.adaptive, reuse_alice_state=True
            ),
            "sharded": lambda: ShardedReconciler(self.config),
            "rateless": lambda: RatelessReconciler(
                self.config, self.rateless, reuse_alice_state=True
            ),
        }
        if variant not in self._reconcilers:
            self._reconcilers[variant] = factories[variant]()
        return self._reconcilers[variant]

    def encoded(self, variant: str) -> bytes:
        """Cached opening payload of a one-way variant — a deterministic
        function of (config, points), so one encode serves every
        connection (and, after a fork, every worker).

        With a store attached the payload comes straight off the
        recovered sketch state — bit-identical to the from-scratch
        encode (the store's differential contract), minus the encode.
        """
        if variant not in self._encoded:
            if self.store is not None and variant == "sharded":
                self._encoded[variant] = self.store.encode()
            elif (
                self.store is not None
                and variant == "one-round"
                and self.config.shards == 1
            ):
                self._encoded[variant] = self.store.one_round_encode()
            else:
                self._encoded[variant] = self.reconciler(variant).encode(
                    self.points
                )
        return self._encoded[variant]

    def session_for(
        self, variant: str, start_index: int = 0, **hooks
    ) -> Session:
        """Build one connection's Alice session over the shared caches.

        ``hooks`` forwards compute seams into the session (``responder``
        for adaptive, ``increment_source`` for rateless — see
        :meth:`SessionOffload.session_hooks`).
        """
        reconciler = self.reconciler(variant)
        kwargs = {"reconciler": reconciler, **hooks}
        if variant in ("one-round", "sharded"):
            kwargs["encoded"] = self.encoded(variant)
        if variant == "rateless":
            kwargs["start_index"] = start_index
        return make_session(variant, "alice", self.config, self.points, **kwargs)

    def adaptive_respond(self, payload: bytes) -> bytes:
        """Pure bytes-in/bytes-out adaptive round: Alice's response to one
        request over the fixed point multiset.  Safe to run in a forked
        pool worker (reads only copy-on-write state)."""
        return self.reconciler("adaptive").alice_respond(payload, self.points)

    def rateless_increment(self, index: int) -> bytes:
        """Alice's ``index``-th encoded rateless increment (pure given the
        fixed points; cached under state reuse)."""
        return self.reconciler("rateless").alice_increment(self.points, index)

    def warm(
        self,
        variants=VARIANTS,
        *,
        rateless_increments: int = 2,
    ) -> "ServerCore":
        """Prebuild every cache a worker would otherwise build on demand.

        Called once in the pool parent before forking: digests, the
        per-variant reconcilers, the one-way encoded payloads, Alice's
        adaptive estimator/window state at every sampled level, and the
        first ``rateless_increments`` rateless increments.  The sharded
        engine's executor pool is released after its encode — live worker
        pools must not cross a fork.  Returns ``self`` for chaining.
        """
        for variant in variants:
            self.digest(variant)
            reconciler = self.reconciler(variant)
            if variant in ("one-round", "sharded"):
                self.encoded(variant)
            if hasattr(reconciler, "warm_alice"):
                if variant == "rateless":
                    reconciler.warm_alice(
                        self.points, increments=rateless_increments
                    )
                else:
                    reconciler.warm_alice(self.points)
        if "sharded" in variants and "sharded" in self._reconcilers:
            # The encode above is cached; drop the engine's executor so no
            # thread/process pool is inherited by forked workers (it is
            # rebuilt lazily if a post-fork session ever needs it).
            self._reconcilers["sharded"].close()
        return self

    def close(self) -> None:
        """Release pooled engine resources (idempotent)."""
        sharded = self._reconcilers.pop("sharded", None)
        if sharded is not None:
            sharded.close()


# The copy-on-write seam for process offload: the pool parent installs its
# warmed core here *before* building the fork process pool, so offload
# children inherit the heavy state by memory sharing and tasks reference
# it by module-global name instead of pickling points per request.
_PROCESS_CORE: ServerCore | None = None


def install_process_core(core: ServerCore) -> None:
    """Install ``core`` as the fork-inherited target of process offload."""
    global _PROCESS_CORE
    _PROCESS_CORE = core


def _core_adaptive_respond(payload: bytes) -> bytes:
    if _PROCESS_CORE is None:  # pragma: no cover - misconfiguration guard
        raise ConfigError("process offload used without install_process_core()")
    return _PROCESS_CORE.adaptive_respond(payload)


def _core_rateless_increment(index: int) -> bytes:
    if _PROCESS_CORE is None:  # pragma: no cover - misconfiguration guard
        raise ConfigError("process offload used without install_process_core()")
    return _PROCESS_CORE.rateless_increment(index)


def _offload_ready() -> bool:
    """No-op probe submitted to force eager pool start-up (picklable)."""
    return True


class SessionOffload:
    """Move session compute off a server's event loop.

    ``kind="thread"``: every ``session.start()`` / ``session.feed()``
    call runs on a single-thread executor, bridged back with
    ``asyncio.wrap_future`` — the loop stays free to accept, handshake,
    and pump frames for *other* connections while one session peels a
    large decode.  One thread is deliberate: session compute still
    serialises (the GIL would enforce that anyway for pure-Python
    kernels); the win is loop responsiveness, not parallel decode.

    ``kind="process"``: additionally forwards the per-request-heavy pure
    computations — the adaptive variant's ``alice_respond`` and the
    rateless variant's increment encode — to a copy-on-write
    :class:`~repro.scale.executors.ProcessExecutor` over the installed
    process core (see :func:`install_process_core`).  Only bytes cross
    the process boundary; the stateful session object never leaves the
    worker.  Requires the ``fork`` start method.

    The pool is started eagerly at construction (a no-op probe forces the
    forks) so children are spawned while the process is still
    single-threaded — forking later, once the offload thread exists,
    would inherit arbitrary lock states.
    """

    def __init__(
        self,
        kind: str = "thread",
        *,
        core: ServerCore | None = None,
        workers: int = 1,
    ):
        if kind not in ("thread", "process"):
            raise ConfigError(
                f"unknown offload kind {kind!r}; expected 'thread' or 'process'"
            )
        self.kind = kind
        self._process: ProcessExecutor | None = None
        if kind == "process":
            if not fork_available():  # pragma: no cover - platform-specific
                raise ConfigError(
                    "process offload requires the 'fork' start method"
                )
            if core is None:
                raise ConfigError(
                    "process offload needs the server core installed "
                    "before the pool forks; pass core="
                )
            install_process_core(core)
            self._process = ProcessExecutor(max(1, workers))
            self._process.submit(_offload_ready).result()
        self._thread = ThreadExecutor(1)

    async def drive(self, fn, *args):
        """Run one session step off-loop; awaitable from the pump."""
        return await asyncio.wrap_future(self._thread.submit(fn, *args))

    def session_hooks(self, variant: str) -> dict:
        """Compute seams to thread into :meth:`ServerCore.session_for`.

        Thread offload needs none (the whole step already left the loop);
        process offload redirects the pure per-request byte computations.
        The hook blocks on the future inside the offload thread, so the
        event loop never waits on a process-pool result directly.
        """
        if self._process is None:
            return {}
        if variant == "adaptive":
            return {"responder": self._respond}
        if variant == "rateless":
            return {"increment_source": self._increment}
        return {}

    def _respond(self, payload: bytes) -> bytes:
        return self._process.submit(_core_adaptive_respond, payload).result()

    def _increment(self, index: int) -> bytes:
        return self._process.submit(_core_rateless_increment, index).result()

    def close(self) -> None:
        """Shut down the offload executors (idempotent)."""
        self._thread.close()
        if self._process is not None:
            self._process.close()

    def __enter__(self) -> "SessionOffload":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ReconciliationServer:
    """Serve reconciliation sessions (as Alice) over TCP.

    Usable as an async context manager::

        async with ReconciliationServer(config, points) as server:
            host, port = server.address
            ...

    ``port=0`` (the default) binds an ephemeral port, published via
    :attr:`address` after :meth:`start`.

    Two construction styles: the classic ``(config, points, ...)``
    surface builds a private :class:`ServerCore`; a pre-fork worker
    instead receives ``core=`` (the parent's warmed, copy-on-write-shared
    core) and must not pass config/points.  Pool-specific knobs —
    ``sock`` (an already-bound listen socket), ``reuse_port``
    (SO_REUSEPORT bind), ``worker_index`` (stamped into welcome frames),
    ``on_session`` (per-session stats callback for aggregation) and
    ``offload`` (off-loop session compute, see :class:`SessionOffload`)
    — all default to off, leaving single-process behaviour byte-identical
    to earlier releases.
    """

    def __init__(
        self,
        config: ProtocolConfig | None = None,
        points=None,
        *,
        core: ServerCore | None = None,
        adaptive: AdaptiveConfig | None = None,
        rateless: RatelessConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: socket.socket | None = None,
        reuse_port: bool = False,
        max_sessions: int = 64,
        max_pending: int | None = None,
        retry_after_hint: float = 0.05,
        session_deadline: float | None = DEFAULT_SESSION_DEADLINE,
        resume_capacity: int = 256,
        timeout: float | None = DEFAULT_TIMEOUT,
        stats_history: int = 1024,
        worker_index: int | None = None,
        on_session=None,
        offload: SessionOffload | str | None = None,
    ):
        if core is None:
            if config is None or points is None:
                raise ConfigError(
                    "ReconciliationServer needs (config, points) or core="
                )
            core = ServerCore(
                config, points, adaptive=adaptive, rateless=rateless
            )
            self._owns_core = True
        else:
            if config is not None or points is not None:
                raise ConfigError(
                    "pass either a prebuilt core= or (config, points), not both"
                )
            if adaptive is not None or rateless is not None:
                raise ConfigError(
                    "adaptive/rateless knobs live on the core when core= is "
                    "passed"
                )
            self._owns_core = False
        self.core = core
        self.host = host
        self.port = port
        self._sock = sock
        self.reuse_port = reuse_port
        self.max_sessions = max_sessions
        #: Overload watermark: how many validated connections may *wait*
        #: for a session slot before further arrivals are shed with a
        #: typed ``RETRY_LATER`` refusal instead of queueing unboundedly.
        #: ``None`` (the default) disables the watermark — every arrival
        #: queues, the pre-resilience behaviour.
        #:
        #: Under a :class:`~repro.serve.pool.WorkerPoolServer` both the
        #: semaphore and this watermark are **per worker**: an N-worker
        #: pool admits up to ``N * max_sessions`` concurrent sessions and
        #: ``N * max_pending`` waiters globally.  That is the correct
        #: unit — each worker sheds on *its own* backlog, the only queue
        #: its clients are actually waiting in.
        self.max_pending = max_pending
        #: Base of the retry-after hint shipped in ``RETRY_LATER`` frames;
        #: scaled by how deep the pending queue is when the shed happens.
        self.retry_after_hint = retry_after_hint
        #: Whole-connection budget (handshake to hangup) per session; the
        #: per-read ``timeout`` bounds each frame, this bounds their sum.
        self.session_deadline = session_deadline
        self.timeout = timeout
        #: The most recent ``stats_history`` sessions; a long-running
        #: daemon must not grow per-connection state without bound, so
        #: aggregate counters (see :meth:`summary`) are kept separately.
        self.stats: deque[SessionStats] = deque(maxlen=stats_history)
        self._totals = {
            "sessions": 0, "ok": 0, "failed": 0, "shed": 0, "resumed": 0,
            "bytes_out": 0, "bytes_in": 0,
        }
        self._semaphore = asyncio.Semaphore(max_sessions)
        self._waiting = 0
        self._server: asyncio.base_events.Server | None = None
        self._finished = asyncio.Condition()
        self._handlers: set[asyncio.Task] = set()
        self.worker_index = worker_index
        self._on_session = on_session
        if isinstance(offload, str):
            # A spec string builds (and therefore owns) the offload; for
            # "process" the shared core must be installed before forking.
            offload = SessionOffload(offload, core=core)
            self._owns_offload = True
        else:
            self._owns_offload = False
        self._offload = offload
        #: Bounded LRU of rateless resume entries: token -> watermark of
        #: increments already streamed.  Alice's increments are a
        #: deterministic function of (config, points, index), so resuming
        #: needs no sketch state — only proof the token names a stream
        #: *this* server actually served, and how far it got.
        self.resume_capacity = resume_capacity
        self._resume: OrderedDict[str, _ResumeEntry] = OrderedDict()
        # Tokens must not validate across server incarnations (a restart
        # may change the point set, silently corrupting a resumed peel)
        # nor across pool workers (each worker's resume LRU is private —
        # a token presented to a sibling must fail typed, not resume a
        # stream that worker never served); mixing the pid keeps nonces
        # distinct across a fork, where time_ns and id() are inherited.
        # Serve-layer code may read the clock, unlike protocol code.
        self._resume_nonce = (
            time.time_ns() ^ id(self) ^ (os.getpid() << 16)
        ) & 0xFFFFFFFF
        self._resume_counter = 0

    # ------------------------------------------------- core pass-throughs

    @property
    def config(self) -> ProtocolConfig:
        return self.core.config

    @property
    def points(self):
        return self.core.points

    @property
    def adaptive(self) -> AdaptiveConfig:
        return self.core.adaptive

    @property
    def rateless(self) -> RatelessConfig:
        return self.core.rateless

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``.

        Three bind modes: a fresh ``(host, port)`` bind (the default); an
        already-bound ``sock`` handed down by a pre-fork parent (all
        workers accept from one shared socket — the kernel wakes exactly
        one on each connection under asyncio's accept loop); or
        ``reuse_port=True``, binding a per-worker socket to the same
        address with ``SO_REUSEPORT`` so the kernel load-balances accepts
        across workers without a shared-socket thundering herd.
        """
        if self._server is not None:
            raise SessionError("server already started")
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle, sock=self._sock
            )
        elif self.reuse_port:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port, reuse_port=True
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """Where the server listens (valid after :meth:`start`)."""
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting, drain in-flight sessions, release engines.

        Handler tasks are awaited explicitly: ``Server.wait_closed()``
        does not cover per-connection handlers before Python 3.12.1, and
        the shared sharded executor must not be torn down under one.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [task for task in self._handlers if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._owns_offload and self._offload is not None:
            self._offload.close()
        if self._owns_core:
            # A core passed in (pool worker, differential test) is owned
            # by whoever built it; closing it here would tear a shared
            # executor out from under sibling servers.
            self.core.close()

    async def __aenter__(self) -> "ReconciliationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def wait_for_sessions(self, count: int) -> None:
        """Block until ``count`` sessions (ok or failed) have finished."""
        async with self._finished:
            await self._finished.wait_for(
                lambda: self._totals["sessions"] >= count
            )

    def summary(self) -> dict:
        """Aggregate stats over the server's whole lifetime: sessions
        served, failures, bytes shipped (running totals — unaffected by
        the bounded :attr:`stats` history)."""
        return dict(self._totals)

    # ------------------------------------------------------------- serving

    def digest(self, variant: str) -> str:
        """The config digest this server expects for ``variant``."""
        return self.core.digest(variant)

    def _session_for(self, variant: str, start_index: int = 0) -> Session:
        """Build this connection's Alice session over the shared core.

        Heavy per-variant state is computed once (per core — which may
        predate this server by a fork) and shared across connections: the
        reconciler and, for the one-way variants, the encoded opening
        payload, so a session costs near-O(1) server CPU instead of
        re-encoding the whole point set per connection.  See
        :meth:`ServerCore.session_for`.  An active offload threads its
        per-variant compute hooks into the session here.
        """
        hooks = (
            self._offload.session_hooks(variant)
            if self._offload is not None else {}
        )
        return self.core.session_for(variant, start_index=start_index, **hooks)

    # ------------------------------------------------------------ resilience

    def _issue_resume_token(self, digest: str) -> str:
        """Mint a resume token for a fresh rateless stream and register
        its LRU entry (evicting the oldest stream beyond capacity)."""
        self._resume_counter += 1
        token = handshake.resume_token(self._resume_nonce, self._resume_counter)
        self._resume[token] = _ResumeEntry(digest=digest)
        while len(self._resume) > self.resume_capacity:
            self._resume.popitem(last=False)
        return token

    def _lookup_resume(
        self, token: str, digest: str, next_index: int
    ) -> _ResumeEntry:
        """Validate one resume request against the LRU; typed rejection.

        Every way a token can be wrong — unparseable, unknown (evicted or
        minted by another server process), config drift, or an index
        beyond what was actually streamed — is a
        :class:`~repro.errors.StaleResumeTokenError`, which the client
        answers by dropping its resume state and restarting from scratch.
        """
        try:
            handshake.parse_resume_token(token)
        except ReproError as exc:
            raise StaleResumeTokenError(
                f"unparseable resume token: {exc}"
            ) from exc
        entry = self._resume.get(token)
        if entry is None:
            raise StaleResumeTokenError(
                "unknown or expired resume token (evicted from the resume "
                "window, or issued by a previous server process)"
            )
        if entry.digest != digest:
            raise StaleResumeTokenError(
                "resume token was issued under a different config digest"
            )
        if not 1 <= next_index <= entry.sent:
            raise StaleResumeTokenError(
                f"cannot resume at increment {next_index}: this stream "
                f"served {entry.sent} increment(s)"
            )
        self._resume.move_to_end(token)
        return entry

    async def _acquire_slot(self) -> bool:
        """Take one session slot, or refuse: ``False`` means shed.

        A free slot is taken immediately.  A full server admits up to
        ``max_pending`` validated waiters (bounded by the per-read
        timeout — a waiter's client is itself waiting for the welcome
        frame on a timeout, so queueing longer only serves dead peers);
        beyond the watermark, arrivals are shed instead of queued.
        """
        if not self._semaphore.locked():
            await self._semaphore.acquire()
            return True
        if self.max_pending is not None and self._waiting >= self.max_pending:
            return False
        self._waiting += 1
        try:
            if self.timeout is None or self.max_pending is None:
                # No watermark: queue unboundedly, the pre-resilience
                # discipline (the client's own timeout bounds the wait).
                await self._semaphore.acquire()
            else:
                await asyncio.wait_for(self._semaphore.acquire(), self.timeout)
        except asyncio.TimeoutError:
            return False
        finally:
            self._waiting -= 1
        return True

    async def _pump_with_deadline(
        self, session: Session, reader, writer, recorder
    ) -> None:
        """Run the session pump under the per-connection deadline budget."""
        drive = self._offload.drive if self._offload is not None else None
        pump = pump_stream(
            session, reader, writer, channel=recorder, timeout=self.timeout,
            drive=drive,
        )
        if self.session_deadline is None:
            await pump
            return
        try:
            await asyncio.wait_for(pump, self.session_deadline)
        except asyncio.TimeoutError as exc:
            raise SessionError(
                f"session exceeded the {self.session_deadline:g}s "
                "per-connection deadline budget"
            ) from exc

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        peername = writer.get_extra_info("peername")
        stats = SessionStats(peer=str(peername))
        started = time.perf_counter()
        record = True
        try:
            record = await self._run_session(reader, writer, stats)
        except ReproError as exc:
            stats.error = f"{type(exc).__name__}: {exc}"
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            stats.error = f"connection lost: {exc}"
        except Exception as exc:  # noqa: BLE001 — attribute every failure
            stats.error = f"unexpected {type(exc).__name__}: {exc}"
        finally:
            stats.duration_s = time.perf_counter() - started
            await close_writer(writer)
            if record:
                async with self._finished:
                    self.stats.append(stats)
                    self._totals["sessions"] += 1
                    if stats.shed:
                        self._totals["shed"] += 1
                    if stats.resumed_from is not None and not stats.shed:
                        self._totals["resumed"] += 1
                    if stats.ok:
                        self._totals["ok"] += 1
                        if stats.transcript is not None:
                            self._totals["bytes_out"] += (
                                stats.transcript.alice_to_bob_bytes
                            )
                            self._totals["bytes_in"] += (
                                stats.transcript.bob_to_alice_bytes
                            )
                    else:
                        self._totals["failed"] += 1
                    self._finished.notify_all()
                if self._on_session is not None:
                    # Aggregation hook: a pool worker streams each
                    # finished session's stats to the parent from here.
                    self._on_session(stats)

    async def _run_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: SessionStats,
    ) -> bool:
        """Serve one connection; returns False for silent health probes.

        A connection that closes cleanly before sending any handshake
        byte (a port scan, a load-balancer health check, a readiness
        probe) is not a session: it is ignored and not recorded.

        The concurrency semaphore is acquired only *after* a valid
        handshake, so idle or malformed connections cannot occupy
        session slots; the welcome frame doubles as the "slot granted"
        signal to the client.
        """
        hello = await read_frame(reader, timeout=self.timeout, allow_eof=True)
        if hello is None:
            return False
        resume_entry = None
        start_index = 0
        token: str | None = None
        try:
            variant, digest, _, resume_req = handshake.parse_hello_record(hello)
            stats.variant = variant
            if variant not in VARIANTS:
                raise SessionError(
                    f"unknown protocol variant {variant!r}; "
                    f"this server speaks {', '.join(VARIANTS)}"
                )
            expected = self.digest(variant)
            if digest != expected:
                raise SessionError(
                    f"config digest mismatch for variant {variant!r}: "
                    f"peer has {digest}, server has {expected} — the "
                    "public-coin ProtocolConfig must be identical"
                )
            if resume_req is not None:
                if variant != "rateless":
                    raise SessionError(
                        "resume is only supported for the rateless variant, "
                        f"not {variant!r}"
                    )
                token, start_index = resume_req
                resume_entry = self._lookup_resume(token, digest, start_index)
                stats.resumed_from = start_index
        except ReproError as exc:
            # Refuse loudly (typed error on the client) before closing.  A
            # peer that already vanished must not mask the typed refusal
            # with its connection error.
            code = (
                handshake.STALE_RESUME_CODE
                if isinstance(exc, StaleResumeTokenError) else None
            )
            try:
                await write_frame(
                    writer, handshake.error_bytes(str(exc), code=code),
                    timeout=self.timeout,
                )
            except (ConnectionError, OSError, SessionError):
                pass
            raise
        if not await self._acquire_slot():
            # Overload shedding: a typed RETRY_LATER refusal with a hint
            # proportional to the backlog, instead of unbounded queueing.
            # ``_waiting`` counts *this process's* waiters — under a
            # worker pool that is deliberately the per-worker backlog,
            # the one queue this client is actually stuck behind, not a
            # (stale, lock-needing) global count across siblings.
            retry_after = self.retry_after_hint * (1 + self._waiting)
            stats.shed = True
            try:
                await write_frame(
                    writer, handshake.retry_later_bytes(retry_after),
                    timeout=self.timeout,
                )
            except (ConnectionError, OSError, SessionError):
                pass
            where = (
                f" on worker {self.worker_index}"
                if self.worker_index is not None else ""
            )
            raise ServerOverloadedError(
                f"shed{where}: {self.max_sessions} session(s) active and "
                f"{self._waiting} pending (watermark {self.max_pending}); "
                f"asked the client to retry after {retry_after:g}s",
                retry_after=retry_after,
            )
        try:
            if variant == "rateless" and token is None:
                token = self._issue_resume_token(expected)
                resume_entry = self._resume[token]
            await write_frame(
                writer,
                handshake.welcome_bytes(
                    variant, expected, token=token,
                    resume_from=stats.resumed_from,
                    worker=self.worker_index,
                    recovered=self.core.recovery_summary(),
                ),
                timeout=self.timeout,
            )
            recorder = SimulatedChannel()
            session = self._session_for(variant, start_index=start_index)
            try:
                with session:
                    await self._pump_with_deadline(
                        session, reader, writer, recorder
                    )
            finally:
                if resume_entry is not None:
                    # Even a failed pump advances the watermark: whatever
                    # was written may already sit in the client's peel.
                    resume_entry.sent = max(
                        resume_entry.sent,
                        getattr(session, "sent_increments", 0),
                    )
        finally:
            self._semaphore.release()
        stats.ok = True
        stats.transcript = Transcript.from_channel(recorder)
        return True


# --------------------------------------------------------------------- client


async def sync(
    host: str,
    port: int,
    config: ProtocolConfig,
    points,
    *,
    variant: str = "one-round",
    adaptive: AdaptiveConfig | None = None,
    rateless: RatelessConfig | None = None,
    strategy: str = "occurrence",
    channel: SimulatedChannel | None = None,
    timeout: float | None = DEFAULT_TIMEOUT,
    reconciler=None,
    resume: RatelessResumeState | None = None,
):
    """Sync this process's points (as Bob) against a server (Alice).

    Returns the variant's result object
    (:class:`~repro.core.protocol.ReconcileResult` or
    :class:`~repro.scale.engine.ShardedResult`) with a measured transcript
    attached.  Handshake refusals, disconnects, and timeouts raise
    :class:`~repro.errors.SessionError`; an overloaded server raises
    :class:`~repro.errors.ServerOverloadedError` carrying its
    retry-after hint.

    ``reconciler`` lets a caller syncing repeatedly with one config reuse
    the variant's engine (grid construction, shard executors) across
    calls instead of rebuilding it per sync; it must match ``config`` and
    ``variant``.  A sharded reconciler passed in stays owned by the
    caller — this function never closes it.

    ``resume`` (rateless only) carries Bob's peel state across calls: a
    sync that dies mid-stream leaves the increments it already fed in
    ``resume``, and the next call with the same object reconnects with a
    resume request so the server streams only the remaining increments.
    :func:`repro.serve.resilience.resilient_sync` manages this loop.
    """
    if variant not in VARIANTS:
        raise SessionError(
            f"unknown protocol variant {variant!r}; expected one of {VARIANTS}"
        )
    if resume is not None and variant != "rateless":
        raise SessionError(
            f"resume state is only supported for the rateless variant, "
            f"not {variant!r}"
        )
    recorder = channel if channel is not None else SimulatedChannel()
    first_message = len(recorder.messages)
    adaptive = adaptive or AdaptiveConfig()
    rateless = rateless or RatelessConfig()
    digest = handshake.config_digest(config, variant, adaptive, rateless)
    try:
        if timeout is None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
    except asyncio.TimeoutError as exc:
        raise SessionError(
            f"timed out after {timeout:g}s connecting to {host}:{port}"
        ) from exc
    except OSError as exc:
        raise SessionError(f"cannot reach {host}:{port}: {exc}") from exc
    try:
        resume_req = None
        if resume is not None and resume.in_progress:
            resume_req = (resume.token, resume.next_index)
        await write_frame(
            writer,
            handshake.hello_bytes(variant, digest, resume=resume_req),
            timeout=timeout,
        )
        welcome = await read_frame(reader, timeout=timeout)
        record = handshake.parse_welcome(welcome)
        served_by = record.get("worker")
        resumed_from = record.get("resume_from")
        recovered = record.get("recovered")
        if resume is not None and isinstance(record.get("token"), str):
            resume.token = record["token"]
        kwargs = {"strategy": strategy}
        if variant == "adaptive":
            kwargs["adaptive"] = adaptive
        if variant == "rateless":
            kwargs["rateless"] = rateless
            if resume is not None:
                kwargs["resume"] = resume
        if reconciler is not None:
            kwargs["reconciler"] = reconciler
        session = make_session(variant, "bob", config, points, **kwargs)
        with session:
            result = await pump_stream(
                session, reader, writer, channel=recorder, timeout=timeout
            )
    except ConnectionError as exc:
        raise SessionError(
            f"connection to {host}:{port} lost mid-session: {exc}"
        ) from exc
    finally:
        await close_writer(writer)
    result.transcript = Transcript.from_messages(
        recorder.messages[first_message:]
    )
    #: Which pool worker served this sync (None against a plain server) —
    #: diagnostic only, never part of the protocol.  ``resumed_from`` is
    #: the increment index a resumed rateless stream continued at;
    #: ``recovered`` is the store-backed server's recovery summary.
    #: All three are None unless the server stamped them.
    result.served_by = served_by
    result.resumed_from = resumed_from
    result.recovered = recovered
    return result


def sync_blocking(*args, **kwargs):
    """:func:`sync` for synchronous callers (the CLI): runs its own loop."""
    return asyncio.run(sync(*args, **kwargs))
