"""The asyncio reconciliation service: TCP server, client, stream pump.

The server is Alice for every connection: it holds the reference point
multiset and serves any protocol variant a client asks for (the client is
Bob, repairing towards the server).  One sans-I/O session per connection,
a semaphore bounding how many run concurrently, per-session stats, and a
handshake that rejects peers whose public-coin config drifted.

Concurrency model: frames move through the event loop; the session's own
compute (sketch encode, peel, repair) runs inline on the loop.  Sessions
therefore overlap on I/O and handshake latency, while CPU work serialises
— the standard single-process asyncio trade; scale-out across cores is
the sharded engine's and a process-per-port deployment's job.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.core.adaptive import AdaptiveConfig, AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.core.rateless import RatelessConfig, RatelessReconciler
from repro.errors import (
    ReproError,
    ServerOverloadedError,
    SessionError,
    StaleResumeTokenError,
)
from repro.net.channel import SimulatedChannel
from repro.net.transcript import Transcript
from repro.scale.engine import ShardedReconciler
from repro.serve import handshake
from repro.serve.frames import read_frame, write_frame
from repro.session import VARIANTS, make_session
from repro.session.base import Session
from repro.session.driver import (
    INBOUND_DIRECTION,
    OUTBOUND_DIRECTION,
    outbound_messages,
)
from repro.session.rateless import RatelessResumeState

#: Default per-read timeout; generous for a LAN, finite so nothing hangs.
DEFAULT_TIMEOUT = 30.0

#: Default whole-connection budget on the server: handshake-to-hangup for
#: one session.  No single slow (or stalling) peer may pin a worker slot
#: longer than this, whatever the per-read timeout allows frame by frame.
DEFAULT_SESSION_DEADLINE = 120.0

#: How long a transport is given to acknowledge ``close()`` before the
#: cleanup path stops waiting for it (the close itself is already issued;
#: only the confirmation is abandoned).
CLOSE_TIMEOUT = 5.0


async def close_writer(writer: asyncio.StreamWriter) -> None:
    """Close a transport and await the close with a bound, swallowing the
    races every failure path shares.

    The one cleanup used by every early return in the server and client:
    ``close()`` then ``wait_closed()``, tolerating peers that vanished
    first (``ConnectionError``/``OSError``) and transports that never
    confirm (bounded by :data:`CLOSE_TIMEOUT`, so a cleanup can never
    hang a handler that is already failing).
    """
    writer.close()
    try:
        await asyncio.wait_for(writer.wait_closed(), CLOSE_TIMEOUT)
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass


async def pump_stream(
    session: Session,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    channel: SimulatedChannel | None = None,
    timeout: float | None = DEFAULT_TIMEOUT,
) -> object:
    """Drive one session endpoint over framed asyncio streams to completion.

    Optionally records every payload (both directions, with the same
    labels a simulated run uses) onto ``channel``, which makes TCP runs
    transcript-comparable with :class:`~repro.net.channel.SimulatedChannel`
    runs.  Returns the session's result.
    """
    out_direction = OUTBOUND_DIRECTION[session.role]
    in_direction = INBOUND_DIRECTION[session.role]

    async def ship(output) -> None:
        for message in outbound_messages(output):
            if channel is not None:
                channel.send(out_direction, message.payload, message.label)
            await write_frame(writer, message.payload, timeout=timeout)

    await ship(session.start())
    while not session.done:
        payload = await read_frame(reader, timeout=timeout)
        if channel is not None:
            channel.send(in_direction, payload, session.inbound_label())
        await ship(session.feed(payload))
    return session.result


@dataclass
class SessionStats:
    """What the server remembers about one connection."""

    peer: str
    variant: str = ""
    ok: bool = False
    error: str = ""
    duration_s: float = 0.0
    shed: bool = False
    resumed_from: int | None = None
    transcript: Transcript | None = None

    def to_dict(self) -> dict:
        record = {
            "peer": self.peer,
            "variant": self.variant,
            "ok": self.ok,
            "error": self.error,
            "duration_s": self.duration_s,
            "shed": self.shed,
            "resumed_from": self.resumed_from,
        }
        if self.transcript is not None:
            record["transcript"] = self.transcript.to_dict()
        return record


@dataclass
class _ResumeEntry:
    """One rateless stream the server remembers how far it streamed.

    ``sent`` is the absolute count of increments written on any
    connection serving this stream; a resume request may continue at any
    index up to it.  The config digest pins the public coins the stream
    was encoded under — a drifted client must re-handshake from scratch.
    """

    digest: str
    sent: int = 0


class ReconciliationServer:
    """Serve reconciliation sessions (as Alice) over TCP.

    Usable as an async context manager::

        async with ReconciliationServer(config, points) as server:
            host, port = server.address
            ...

    ``port=0`` (the default) binds an ephemeral port, published via
    :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        *,
        adaptive: AdaptiveConfig | None = None,
        rateless: RatelessConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 64,
        max_pending: int | None = None,
        retry_after_hint: float = 0.05,
        session_deadline: float | None = DEFAULT_SESSION_DEADLINE,
        resume_capacity: int = 256,
        timeout: float | None = DEFAULT_TIMEOUT,
        stats_history: int = 1024,
    ):
        self.config = config
        self.adaptive = adaptive or AdaptiveConfig()
        self.rateless = rateless or RatelessConfig()
        self.points = points
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        #: Overload watermark: how many validated connections may *wait*
        #: for a session slot before further arrivals are shed with a
        #: typed ``RETRY_LATER`` refusal instead of queueing unboundedly.
        #: ``None`` (the default) disables the watermark — every arrival
        #: queues, the pre-resilience behaviour.
        self.max_pending = max_pending
        #: Base of the retry-after hint shipped in ``RETRY_LATER`` frames;
        #: scaled by how deep the pending queue is when the shed happens.
        self.retry_after_hint = retry_after_hint
        #: Whole-connection budget (handshake to hangup) per session; the
        #: per-read ``timeout`` bounds each frame, this bounds their sum.
        self.session_deadline = session_deadline
        self.timeout = timeout
        #: The most recent ``stats_history`` sessions; a long-running
        #: daemon must not grow per-connection state without bound, so
        #: aggregate counters (see :meth:`summary`) are kept separately.
        self.stats: deque[SessionStats] = deque(maxlen=stats_history)
        self._totals = {
            "sessions": 0, "ok": 0, "failed": 0, "shed": 0, "resumed": 0,
            "bytes_out": 0, "bytes_in": 0,
        }
        self._semaphore = asyncio.Semaphore(max_sessions)
        self._waiting = 0
        self._server: asyncio.base_events.Server | None = None
        self._finished = asyncio.Condition()
        self._reconcilers: dict[str, object] = {}
        self._encoded: dict[str, bytes] = {}
        self._handlers: set[asyncio.Task] = set()
        #: Bounded LRU of rateless resume entries: token -> watermark of
        #: increments already streamed.  Alice's increments are a
        #: deterministic function of (config, points, index), so resuming
        #: needs no sketch state — only proof the token names a stream
        #: *this* server actually served, and how far it got.
        self.resume_capacity = resume_capacity
        self._resume: OrderedDict[str, _ResumeEntry] = OrderedDict()
        # Tokens must not validate across server incarnations (a restart
        # may change the point set, silently corrupting a resumed peel);
        # serve-layer code may read the clock, unlike protocol code.
        self._resume_nonce = (time.time_ns() ^ id(self)) & 0xFFFFFFFF
        self._resume_counter = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        if self._server is not None:
            raise SessionError("server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """Where the server listens (valid after :meth:`start`)."""
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting, drain in-flight sessions, release engines.

        Handler tasks are awaited explicitly: ``Server.wait_closed()``
        does not cover per-connection handlers before Python 3.12.1, and
        the shared sharded executor must not be torn down under one.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [task for task in self._handlers if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        sharded = self._reconcilers.pop("sharded", None)
        if sharded is not None:
            sharded.close()

    async def __aenter__(self) -> "ReconciliationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def wait_for_sessions(self, count: int) -> None:
        """Block until ``count`` sessions (ok or failed) have finished."""
        async with self._finished:
            await self._finished.wait_for(
                lambda: self._totals["sessions"] >= count
            )

    def summary(self) -> dict:
        """Aggregate stats over the server's whole lifetime: sessions
        served, failures, bytes shipped (running totals — unaffected by
        the bounded :attr:`stats` history)."""
        return dict(self._totals)

    # ------------------------------------------------------------- serving

    def digest(self, variant: str) -> str:
        """The config digest this server expects for ``variant``."""
        return handshake.config_digest(
            self.config, variant, self.adaptive, self.rateless
        )

    def _session_for(self, variant: str, start_index: int = 0) -> Session:
        """Build this connection's Alice session.

        Heavy per-variant state is computed once and shared across
        connections: the reconciler (grids, executor pools) and — for the
        one-way variants, whose opening message is a deterministic
        function of (config, points) — the encoded payload itself, so a
        session costs near-O(1) server CPU instead of re-encoding the
        whole point set per connection.  The adaptive reconciler
        additionally reuses Alice's per-level estimators and window
        tables across connections (``reuse_alice_state``) — the server's
        point multiset is fixed for its lifetime, which is exactly the
        contract that flag requires.  The rateless reconciler likewise
        caches each encoded increment the first time any client needs it.
        """
        factories = {
            "one-round": lambda: HierarchicalReconciler(self.config),
            "adaptive": lambda: AdaptiveReconciler(
                self.config, self.adaptive, reuse_alice_state=True
            ),
            "sharded": lambda: ShardedReconciler(self.config),
            "rateless": lambda: RatelessReconciler(
                self.config, self.rateless, reuse_alice_state=True
            ),
        }
        if variant not in self._reconcilers:
            self._reconcilers[variant] = factories[variant]()
        reconciler = self._reconcilers[variant]
        kwargs = {"reconciler": reconciler}
        if variant in ("one-round", "sharded"):
            if variant not in self._encoded:
                self._encoded[variant] = reconciler.encode(self.points)
            kwargs["encoded"] = self._encoded[variant]
        if variant == "rateless":
            kwargs["start_index"] = start_index
        return make_session(variant, "alice", self.config, self.points, **kwargs)

    # ------------------------------------------------------------ resilience

    def _issue_resume_token(self, digest: str) -> str:
        """Mint a resume token for a fresh rateless stream and register
        its LRU entry (evicting the oldest stream beyond capacity)."""
        self._resume_counter += 1
        token = handshake.resume_token(self._resume_nonce, self._resume_counter)
        self._resume[token] = _ResumeEntry(digest=digest)
        while len(self._resume) > self.resume_capacity:
            self._resume.popitem(last=False)
        return token

    def _lookup_resume(
        self, token: str, digest: str, next_index: int
    ) -> _ResumeEntry:
        """Validate one resume request against the LRU; typed rejection.

        Every way a token can be wrong — unparseable, unknown (evicted or
        minted by another server process), config drift, or an index
        beyond what was actually streamed — is a
        :class:`~repro.errors.StaleResumeTokenError`, which the client
        answers by dropping its resume state and restarting from scratch.
        """
        try:
            handshake.parse_resume_token(token)
        except ReproError as exc:
            raise StaleResumeTokenError(
                f"unparseable resume token: {exc}"
            ) from exc
        entry = self._resume.get(token)
        if entry is None:
            raise StaleResumeTokenError(
                "unknown or expired resume token (evicted from the resume "
                "window, or issued by a previous server process)"
            )
        if entry.digest != digest:
            raise StaleResumeTokenError(
                "resume token was issued under a different config digest"
            )
        if not 1 <= next_index <= entry.sent:
            raise StaleResumeTokenError(
                f"cannot resume at increment {next_index}: this stream "
                f"served {entry.sent} increment(s)"
            )
        self._resume.move_to_end(token)
        return entry

    async def _acquire_slot(self) -> bool:
        """Take one session slot, or refuse: ``False`` means shed.

        A free slot is taken immediately.  A full server admits up to
        ``max_pending`` validated waiters (bounded by the per-read
        timeout — a waiter's client is itself waiting for the welcome
        frame on a timeout, so queueing longer only serves dead peers);
        beyond the watermark, arrivals are shed instead of queued.
        """
        if not self._semaphore.locked():
            await self._semaphore.acquire()
            return True
        if self.max_pending is not None and self._waiting >= self.max_pending:
            return False
        self._waiting += 1
        try:
            if self.timeout is None or self.max_pending is None:
                # No watermark: queue unboundedly, the pre-resilience
                # discipline (the client's own timeout bounds the wait).
                await self._semaphore.acquire()
            else:
                await asyncio.wait_for(self._semaphore.acquire(), self.timeout)
        except asyncio.TimeoutError:
            return False
        finally:
            self._waiting -= 1
        return True

    async def _pump_with_deadline(
        self, session: Session, reader, writer, recorder
    ) -> None:
        """Run the session pump under the per-connection deadline budget."""
        pump = pump_stream(
            session, reader, writer, channel=recorder, timeout=self.timeout
        )
        if self.session_deadline is None:
            await pump
            return
        try:
            await asyncio.wait_for(pump, self.session_deadline)
        except asyncio.TimeoutError as exc:
            raise SessionError(
                f"session exceeded the {self.session_deadline:g}s "
                "per-connection deadline budget"
            ) from exc

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        peername = writer.get_extra_info("peername")
        stats = SessionStats(peer=str(peername))
        started = time.perf_counter()
        record = True
        try:
            record = await self._run_session(reader, writer, stats)
        except ReproError as exc:
            stats.error = f"{type(exc).__name__}: {exc}"
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            stats.error = f"connection lost: {exc}"
        except Exception as exc:  # noqa: BLE001 — attribute every failure
            stats.error = f"unexpected {type(exc).__name__}: {exc}"
        finally:
            stats.duration_s = time.perf_counter() - started
            await close_writer(writer)
            if record:
                async with self._finished:
                    self.stats.append(stats)
                    self._totals["sessions"] += 1
                    if stats.shed:
                        self._totals["shed"] += 1
                    if stats.resumed_from is not None and not stats.shed:
                        self._totals["resumed"] += 1
                    if stats.ok:
                        self._totals["ok"] += 1
                        if stats.transcript is not None:
                            self._totals["bytes_out"] += (
                                stats.transcript.alice_to_bob_bytes
                            )
                            self._totals["bytes_in"] += (
                                stats.transcript.bob_to_alice_bytes
                            )
                    else:
                        self._totals["failed"] += 1
                    self._finished.notify_all()

    async def _run_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: SessionStats,
    ) -> bool:
        """Serve one connection; returns False for silent health probes.

        A connection that closes cleanly before sending any handshake
        byte (a port scan, a load-balancer health check, a readiness
        probe) is not a session: it is ignored and not recorded.

        The concurrency semaphore is acquired only *after* a valid
        handshake, so idle or malformed connections cannot occupy
        session slots; the welcome frame doubles as the "slot granted"
        signal to the client.
        """
        hello = await read_frame(reader, timeout=self.timeout, allow_eof=True)
        if hello is None:
            return False
        resume_entry = None
        start_index = 0
        token: str | None = None
        try:
            variant, digest, _, resume_req = handshake.parse_hello_record(hello)
            stats.variant = variant
            if variant not in VARIANTS:
                raise SessionError(
                    f"unknown protocol variant {variant!r}; "
                    f"this server speaks {', '.join(VARIANTS)}"
                )
            expected = self.digest(variant)
            if digest != expected:
                raise SessionError(
                    f"config digest mismatch for variant {variant!r}: "
                    f"peer has {digest}, server has {expected} — the "
                    "public-coin ProtocolConfig must be identical"
                )
            if resume_req is not None:
                if variant != "rateless":
                    raise SessionError(
                        "resume is only supported for the rateless variant, "
                        f"not {variant!r}"
                    )
                token, start_index = resume_req
                resume_entry = self._lookup_resume(token, digest, start_index)
                stats.resumed_from = start_index
        except ReproError as exc:
            # Refuse loudly (typed error on the client) before closing.  A
            # peer that already vanished must not mask the typed refusal
            # with its connection error.
            code = (
                handshake.STALE_RESUME_CODE
                if isinstance(exc, StaleResumeTokenError) else None
            )
            try:
                await write_frame(
                    writer, handshake.error_bytes(str(exc), code=code),
                    timeout=self.timeout,
                )
            except (ConnectionError, OSError, SessionError):
                pass
            raise
        if not await self._acquire_slot():
            # Overload shedding: a typed RETRY_LATER refusal with a hint
            # proportional to the backlog, instead of unbounded queueing.
            retry_after = self.retry_after_hint * (1 + self._waiting)
            stats.shed = True
            try:
                await write_frame(
                    writer, handshake.retry_later_bytes(retry_after),
                    timeout=self.timeout,
                )
            except (ConnectionError, OSError, SessionError):
                pass
            raise ServerOverloadedError(
                f"shed: {self.max_sessions} session(s) active and "
                f"{self._waiting} pending (watermark {self.max_pending}); "
                f"asked the client to retry after {retry_after:g}s",
                retry_after=retry_after,
            )
        try:
            if variant == "rateless" and token is None:
                token = self._issue_resume_token(expected)
                resume_entry = self._resume[token]
            await write_frame(
                writer,
                handshake.welcome_bytes(
                    variant, expected, token=token,
                    resume_from=stats.resumed_from,
                ),
                timeout=self.timeout,
            )
            recorder = SimulatedChannel()
            session = self._session_for(variant, start_index=start_index)
            try:
                with session:
                    await self._pump_with_deadline(
                        session, reader, writer, recorder
                    )
            finally:
                if resume_entry is not None:
                    # Even a failed pump advances the watermark: whatever
                    # was written may already sit in the client's peel.
                    resume_entry.sent = max(
                        resume_entry.sent,
                        getattr(session, "sent_increments", 0),
                    )
        finally:
            self._semaphore.release()
        stats.ok = True
        stats.transcript = Transcript.from_channel(recorder)
        return True


# --------------------------------------------------------------------- client


async def sync(
    host: str,
    port: int,
    config: ProtocolConfig,
    points,
    *,
    variant: str = "one-round",
    adaptive: AdaptiveConfig | None = None,
    rateless: RatelessConfig | None = None,
    strategy: str = "occurrence",
    channel: SimulatedChannel | None = None,
    timeout: float | None = DEFAULT_TIMEOUT,
    reconciler=None,
    resume: RatelessResumeState | None = None,
):
    """Sync this process's points (as Bob) against a server (Alice).

    Returns the variant's result object
    (:class:`~repro.core.protocol.ReconcileResult` or
    :class:`~repro.scale.engine.ShardedResult`) with a measured transcript
    attached.  Handshake refusals, disconnects, and timeouts raise
    :class:`~repro.errors.SessionError`; an overloaded server raises
    :class:`~repro.errors.ServerOverloadedError` carrying its
    retry-after hint.

    ``reconciler`` lets a caller syncing repeatedly with one config reuse
    the variant's engine (grid construction, shard executors) across
    calls instead of rebuilding it per sync; it must match ``config`` and
    ``variant``.  A sharded reconciler passed in stays owned by the
    caller — this function never closes it.

    ``resume`` (rateless only) carries Bob's peel state across calls: a
    sync that dies mid-stream leaves the increments it already fed in
    ``resume``, and the next call with the same object reconnects with a
    resume request so the server streams only the remaining increments.
    :func:`repro.serve.resilience.resilient_sync` manages this loop.
    """
    if variant not in VARIANTS:
        raise SessionError(
            f"unknown protocol variant {variant!r}; expected one of {VARIANTS}"
        )
    if resume is not None and variant != "rateless":
        raise SessionError(
            f"resume state is only supported for the rateless variant, "
            f"not {variant!r}"
        )
    recorder = channel if channel is not None else SimulatedChannel()
    first_message = len(recorder.messages)
    adaptive = adaptive or AdaptiveConfig()
    rateless = rateless or RatelessConfig()
    digest = handshake.config_digest(config, variant, adaptive, rateless)
    try:
        if timeout is None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
    except asyncio.TimeoutError as exc:
        raise SessionError(
            f"timed out after {timeout:g}s connecting to {host}:{port}"
        ) from exc
    except OSError as exc:
        raise SessionError(f"cannot reach {host}:{port}: {exc}") from exc
    try:
        resume_req = None
        if resume is not None and resume.in_progress:
            resume_req = (resume.token, resume.next_index)
        await write_frame(
            writer,
            handshake.hello_bytes(variant, digest, resume=resume_req),
            timeout=timeout,
        )
        welcome = await read_frame(reader, timeout=timeout)
        record = handshake.parse_welcome(welcome)
        if resume is not None and isinstance(record.get("token"), str):
            resume.token = record["token"]
        kwargs = {"strategy": strategy}
        if variant == "adaptive":
            kwargs["adaptive"] = adaptive
        if variant == "rateless":
            kwargs["rateless"] = rateless
            if resume is not None:
                kwargs["resume"] = resume
        if reconciler is not None:
            kwargs["reconciler"] = reconciler
        session = make_session(variant, "bob", config, points, **kwargs)
        with session:
            result = await pump_stream(
                session, reader, writer, channel=recorder, timeout=timeout
            )
    except ConnectionError as exc:
        raise SessionError(
            f"connection to {host}:{port} lost mid-session: {exc}"
        ) from exc
    finally:
        await close_writer(writer)
    result.transcript = Transcript.from_messages(
        recorder.messages[first_message:]
    )
    return result


def sync_blocking(*args, **kwargs):
    """:func:`sync` for synchronous callers (the CLI): runs its own loop."""
    return asyncio.run(sync(*args, **kwargs))
