"""The asyncio reconciliation service: TCP server, client, stream pump.

The server is Alice for every connection: it holds the reference point
multiset and serves any protocol variant a client asks for (the client is
Bob, repairing towards the server).  One sans-I/O session per connection,
a semaphore bounding how many run concurrently, per-session stats, and a
handshake that rejects peers whose public-coin config drifted.

Concurrency model: frames move through the event loop; the session's own
compute (sketch encode, peel, repair) runs inline on the loop.  Sessions
therefore overlap on I/O and handshake latency, while CPU work serialises
— the standard single-process asyncio trade; scale-out across cores is
the sharded engine's and a process-per-port deployment's job.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

from repro.core.adaptive import AdaptiveConfig, AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.core.rateless import RatelessConfig, RatelessReconciler
from repro.errors import ReproError, SessionError
from repro.net.channel import SimulatedChannel
from repro.net.transcript import Transcript
from repro.scale.engine import ShardedReconciler
from repro.serve import handshake
from repro.serve.frames import read_frame, write_frame
from repro.session import VARIANTS, make_session
from repro.session.base import Session
from repro.session.driver import (
    INBOUND_DIRECTION,
    OUTBOUND_DIRECTION,
    outbound_messages,
)

#: Default per-read timeout; generous for a LAN, finite so nothing hangs.
DEFAULT_TIMEOUT = 30.0


async def pump_stream(
    session: Session,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    channel: SimulatedChannel | None = None,
    timeout: float | None = DEFAULT_TIMEOUT,
) -> object:
    """Drive one session endpoint over framed asyncio streams to completion.

    Optionally records every payload (both directions, with the same
    labels a simulated run uses) onto ``channel``, which makes TCP runs
    transcript-comparable with :class:`~repro.net.channel.SimulatedChannel`
    runs.  Returns the session's result.
    """
    out_direction = OUTBOUND_DIRECTION[session.role]
    in_direction = INBOUND_DIRECTION[session.role]

    async def ship(output) -> None:
        for message in outbound_messages(output):
            if channel is not None:
                channel.send(out_direction, message.payload, message.label)
            await write_frame(writer, message.payload, timeout=timeout)

    await ship(session.start())
    while not session.done:
        payload = await read_frame(reader, timeout=timeout)
        if channel is not None:
            channel.send(in_direction, payload, session.inbound_label())
        await ship(session.feed(payload))
    return session.result


@dataclass
class SessionStats:
    """What the server remembers about one connection."""

    peer: str
    variant: str = ""
    ok: bool = False
    error: str = ""
    duration_s: float = 0.0
    transcript: Transcript | None = None

    def to_dict(self) -> dict:
        record = {
            "peer": self.peer,
            "variant": self.variant,
            "ok": self.ok,
            "error": self.error,
            "duration_s": self.duration_s,
        }
        if self.transcript is not None:
            record["transcript"] = self.transcript.to_dict()
        return record


class ReconciliationServer:
    """Serve reconciliation sessions (as Alice) over TCP.

    Usable as an async context manager::

        async with ReconciliationServer(config, points) as server:
            host, port = server.address
            ...

    ``port=0`` (the default) binds an ephemeral port, published via
    :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        *,
        adaptive: AdaptiveConfig | None = None,
        rateless: RatelessConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 64,
        timeout: float | None = DEFAULT_TIMEOUT,
        stats_history: int = 1024,
    ):
        self.config = config
        self.adaptive = adaptive or AdaptiveConfig()
        self.rateless = rateless or RatelessConfig()
        self.points = points
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.timeout = timeout
        #: The most recent ``stats_history`` sessions; a long-running
        #: daemon must not grow per-connection state without bound, so
        #: aggregate counters (see :meth:`summary`) are kept separately.
        self.stats: deque[SessionStats] = deque(maxlen=stats_history)
        self._totals = {
            "sessions": 0, "ok": 0, "failed": 0, "bytes_out": 0, "bytes_in": 0,
        }
        self._semaphore = asyncio.Semaphore(max_sessions)
        self._server: asyncio.base_events.Server | None = None
        self._finished = asyncio.Condition()
        self._reconcilers: dict[str, object] = {}
        self._encoded: dict[str, bytes] = {}
        self._handlers: set[asyncio.Task] = set()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        if self._server is not None:
            raise SessionError("server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """Where the server listens (valid after :meth:`start`)."""
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting, drain in-flight sessions, release engines.

        Handler tasks are awaited explicitly: ``Server.wait_closed()``
        does not cover per-connection handlers before Python 3.12.1, and
        the shared sharded executor must not be torn down under one.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [task for task in self._handlers if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        sharded = self._reconcilers.pop("sharded", None)
        if sharded is not None:
            sharded.close()

    async def __aenter__(self) -> "ReconciliationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def wait_for_sessions(self, count: int) -> None:
        """Block until ``count`` sessions (ok or failed) have finished."""
        async with self._finished:
            await self._finished.wait_for(
                lambda: self._totals["sessions"] >= count
            )

    def summary(self) -> dict:
        """Aggregate stats over the server's whole lifetime: sessions
        served, failures, bytes shipped (running totals — unaffected by
        the bounded :attr:`stats` history)."""
        return dict(self._totals)

    # ------------------------------------------------------------- serving

    def digest(self, variant: str) -> str:
        """The config digest this server expects for ``variant``."""
        return handshake.config_digest(
            self.config, variant, self.adaptive, self.rateless
        )

    def _session_for(self, variant: str) -> Session:
        """Build this connection's Alice session.

        Heavy per-variant state is computed once and shared across
        connections: the reconciler (grids, executor pools) and — for the
        one-way variants, whose opening message is a deterministic
        function of (config, points) — the encoded payload itself, so a
        session costs near-O(1) server CPU instead of re-encoding the
        whole point set per connection.  The adaptive reconciler
        additionally reuses Alice's per-level estimators and window
        tables across connections (``reuse_alice_state``) — the server's
        point multiset is fixed for its lifetime, which is exactly the
        contract that flag requires.  The rateless reconciler likewise
        caches each encoded increment the first time any client needs it.
        """
        factories = {
            "one-round": lambda: HierarchicalReconciler(self.config),
            "adaptive": lambda: AdaptiveReconciler(
                self.config, self.adaptive, reuse_alice_state=True
            ),
            "sharded": lambda: ShardedReconciler(self.config),
            "rateless": lambda: RatelessReconciler(
                self.config, self.rateless, reuse_alice_state=True
            ),
        }
        if variant not in self._reconcilers:
            self._reconcilers[variant] = factories[variant]()
        reconciler = self._reconcilers[variant]
        kwargs = {"reconciler": reconciler}
        if variant in ("one-round", "sharded"):
            if variant not in self._encoded:
                self._encoded[variant] = reconciler.encode(self.points)
            kwargs["encoded"] = self._encoded[variant]
        return make_session(variant, "alice", self.config, self.points, **kwargs)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        peername = writer.get_extra_info("peername")
        stats = SessionStats(peer=str(peername))
        started = time.perf_counter()
        record = True
        try:
            record = await self._run_session(reader, writer, stats)
        except ReproError as exc:
            stats.error = f"{type(exc).__name__}: {exc}"
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            stats.error = f"connection lost: {exc}"
        except Exception as exc:  # noqa: BLE001 — attribute every failure
            stats.error = f"unexpected {type(exc).__name__}: {exc}"
        finally:
            stats.duration_s = time.perf_counter() - started
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if record:
                async with self._finished:
                    self.stats.append(stats)
                    self._totals["sessions"] += 1
                    if stats.ok:
                        self._totals["ok"] += 1
                        if stats.transcript is not None:
                            self._totals["bytes_out"] += (
                                stats.transcript.alice_to_bob_bytes
                            )
                            self._totals["bytes_in"] += (
                                stats.transcript.bob_to_alice_bytes
                            )
                    else:
                        self._totals["failed"] += 1
                    self._finished.notify_all()

    async def _run_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: SessionStats,
    ) -> bool:
        """Serve one connection; returns False for silent health probes.

        A connection that closes cleanly before sending any handshake
        byte (a port scan, a load-balancer health check, a readiness
        probe) is not a session: it is ignored and not recorded.

        The concurrency semaphore is acquired only *after* a valid
        handshake, so idle or malformed connections cannot occupy
        session slots; the welcome frame doubles as the "slot granted"
        signal to the client.
        """
        hello = await read_frame(reader, timeout=self.timeout, allow_eof=True)
        if hello is None:
            return False
        try:
            variant, digest, _ = handshake.parse_hello(hello)
            stats.variant = variant
            if variant not in VARIANTS:
                raise SessionError(
                    f"unknown protocol variant {variant!r}; "
                    f"this server speaks {', '.join(VARIANTS)}"
                )
            expected = self.digest(variant)
            if digest != expected:
                raise SessionError(
                    f"config digest mismatch for variant {variant!r}: "
                    f"peer has {digest}, server has {expected} — the "
                    "public-coin ProtocolConfig must be identical"
                )
        except ReproError as exc:
            # Refuse loudly (typed error on the client) before closing.  A
            # peer that already vanished must not mask the typed refusal
            # with its connection error.
            try:
                await write_frame(
                    writer, handshake.error_bytes(str(exc)),
                    timeout=self.timeout,
                )
            except (ConnectionError, OSError, SessionError):
                pass
            raise
        async with self._semaphore:
            await write_frame(
                writer, handshake.welcome_bytes(variant, expected),
                timeout=self.timeout,
            )
            recorder = SimulatedChannel()
            session = self._session_for(variant)
            with session:
                await pump_stream(
                    session, reader, writer,
                    channel=recorder, timeout=self.timeout,
                )
        stats.ok = True
        stats.transcript = Transcript.from_channel(recorder)
        return True


# --------------------------------------------------------------------- client


async def sync(
    host: str,
    port: int,
    config: ProtocolConfig,
    points,
    *,
    variant: str = "one-round",
    adaptive: AdaptiveConfig | None = None,
    rateless: RatelessConfig | None = None,
    strategy: str = "occurrence",
    channel: SimulatedChannel | None = None,
    timeout: float | None = DEFAULT_TIMEOUT,
    reconciler=None,
):
    """Sync this process's points (as Bob) against a server (Alice).

    Returns the variant's result object
    (:class:`~repro.core.protocol.ReconcileResult` or
    :class:`~repro.scale.engine.ShardedResult`) with a measured transcript
    attached.  Handshake refusals, disconnects, and timeouts raise
    :class:`~repro.errors.SessionError`.

    ``reconciler`` lets a caller syncing repeatedly with one config reuse
    the variant's engine (grid construction, shard executors) across
    calls instead of rebuilding it per sync; it must match ``config`` and
    ``variant``.  A sharded reconciler passed in stays owned by the
    caller — this function never closes it.
    """
    if variant not in VARIANTS:
        raise SessionError(
            f"unknown protocol variant {variant!r}; expected one of {VARIANTS}"
        )
    recorder = channel if channel is not None else SimulatedChannel()
    first_message = len(recorder.messages)
    adaptive = adaptive or AdaptiveConfig()
    rateless = rateless or RatelessConfig()
    digest = handshake.config_digest(config, variant, adaptive, rateless)
    try:
        if timeout is None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
    except asyncio.TimeoutError as exc:
        raise SessionError(
            f"timed out after {timeout:g}s connecting to {host}:{port}"
        ) from exc
    except OSError as exc:
        raise SessionError(f"cannot reach {host}:{port}: {exc}") from exc
    try:
        await write_frame(
            writer, handshake.hello_bytes(variant, digest), timeout=timeout
        )
        welcome = await read_frame(reader, timeout=timeout)
        handshake.parse_welcome(welcome)
        kwargs = {"strategy": strategy}
        if variant == "adaptive":
            kwargs["adaptive"] = adaptive
        if variant == "rateless":
            kwargs["rateless"] = rateless
        if reconciler is not None:
            kwargs["reconciler"] = reconciler
        session = make_session(variant, "bob", config, points, **kwargs)
        with session:
            result = await pump_stream(
                session, reader, writer, channel=recorder, timeout=timeout
            )
    except ConnectionError as exc:
        raise SessionError(
            f"connection to {host}:{port} lost mid-session: {exc}"
        ) from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    result.transcript = Transcript.from_messages(
        recorder.messages[first_message:]
    )
    return result


def sync_blocking(*args, **kwargs):
    """:func:`sync` for synchronous callers (the CLI): runs its own loop."""
    return asyncio.run(sync(*args, **kwargs))
