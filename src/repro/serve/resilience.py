"""Client-side resilience: typed retry classification, seeded backoff,
and rateless resumption.

The serve layer's errors are already typed; this module adds the policy
that turns types into behaviour.  Three verdicts partition every failure
a sync can surface:

* :data:`RETRY` — transient transport trouble (timeout, disconnect,
  mangled frame, overloaded server).  Retrying the same request is
  expected to succeed; for the rateless variant the retry *resumes*,
  paying only for the increments not yet fed.
* :data:`RESET` — the server rejected our resume token as stale.  The
  cure is dropping the client-side resume state and retrying from
  scratch; the token was the problem, not the transport.
* :data:`FATAL` — deterministic failures (config-digest mismatch,
  refused handshake, decode impossibility).  The same request fails the
  same way forever; a retry policy must surface these immediately
  instead of burning attempts on them.

Backoff is exponential with multiplicative seeded jitter
(``random.Random(seed)`` — deterministic given the seed, as every knob
in this repository must be) and honours the server's ``retry_after``
hint as a floor: a shedding server names the earliest useful retry time,
and backing off *less* than that only re-joins the stampede.

:func:`resilient_sync` composes the pieces around
:func:`repro.serve.service.sync`: one
:class:`~repro.session.rateless.RatelessResumeState` threads through all
attempts, so every increment that survived a dead connection keeps its
value — total bytes over the whole retry sequence stay proportional to
the *remaining* difference, the rateless promise extended across
failures.

Against a :class:`~repro.serve.pool.WorkerPoolServer` the same verdicts
compose with per-worker state: a worker that crashes mid-session
surfaces as a :data:`RETRY` (connection lost — the retry lands on a
fresh worker); resume tokens live in each worker's private LRU, so a
resumed connection that the kernel routes to a *sibling* worker is
answered with :class:`~repro.errors.StaleResumeTokenError` → a
:data:`RESET` that restarts the stream from scratch, trading the saved
bytes for correctness.  ``RETRY_LATER`` hints are scaled from the
shedding worker's own backlog — the one queue that client is actually
stuck behind — never a global count.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.core.adaptive import AdaptiveConfig
from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig
from repro.errors import (
    ChannelError,
    ConfigError,
    ReproError,
    RetryExhaustedError,
    SerializationError,
    ServerOverloadedError,
    SessionError,
    StaleResumeTokenError,
    SyncRefusedError,
)
from repro.serve.service import sync
from repro.session.rateless import RatelessResumeState

#: Retry verdicts (see module docstring).
RETRY = "retry"
RESET = "reset"
FATAL = "fatal"


def classify(error: BaseException) -> str:
    """Map one failure to its retry verdict.

    Order matters: the recoverable refusals
    (:class:`~repro.errors.StaleResumeTokenError`,
    :class:`~repro.errors.ServerOverloadedError`) subclass
    :class:`~repro.errors.SessionError`, whose other members — timeouts,
    disconnects — are plainly transient.  Everything outside the
    transport layer (decode failures, config errors, unknown exceptions)
    is fatal: retrying a deterministic failure is a hang with extra
    steps.
    """
    if isinstance(error, StaleResumeTokenError):
        return RESET
    if isinstance(error, SyncRefusedError):
        return FATAL
    if isinstance(error, ServerOverloadedError):
        return RETRY
    if isinstance(error, (SessionError, SerializationError, ChannelError)):
        return RETRY
    return FATAL


class RetryPolicy:
    """Exponential backoff with seeded jitter, attempt cap, and deadline.

    ``backoff(attempt)`` grows as ``base_delay * multiplier**attempt``,
    clamped to ``max_delay``, then stretched by a jitter factor drawn
    uniformly from ``[1, 1 + jitter]`` — full determinism given ``seed``
    (two policies with equal seeds produce equal delay sequences), full
    stampede-avoidance given distinct ones.  A server ``retry_after``
    hint acts as a floor on the resulting delay.

    ``attempts`` caps how many times a sync is tried in total;
    ``deadline`` caps the whole retry sequence in seconds (checked
    before each wait, so the policy never starts a sleep it knows will
    overrun the budget).
    """

    def __init__(
        self,
        *,
        attempts: int = 4,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        deadline: float | None = 30.0,
        seed: int | str = 0,
    ):
        if attempts < 1:
            raise ConfigError(f"attempts must be >= 1, got {attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ConfigError("backoff delays must be >= 0")
        if multiplier < 1.0:
            raise ConfigError(f"multiplier must be >= 1, got {multiplier}")
        if jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {jitter}")
        if deadline is not None and deadline <= 0:
            raise ConfigError(f"deadline must be positive, got {deadline}")
        self.attempts = attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.deadline = deadline
        self.seed = seed
        self._rng = random.Random(seed)

    def backoff(self, attempt: int, hint: float = 0.0) -> float:
        """Delay before retry number ``attempt + 1`` (attempts are
        0-indexed), floored by a server's ``retry_after`` ``hint``."""
        delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        delay *= 1.0 + self.jitter * self._rng.random()
        return max(delay, hint)


async def resilient_sync(
    host: str,
    port: int,
    config: ProtocolConfig,
    points,
    *,
    variant: str = "one-round",
    adaptive: AdaptiveConfig | None = None,
    rateless: RatelessConfig | None = None,
    policy: RetryPolicy | None = None,
    resume: RatelessResumeState | None = None,
    sleep=None,
    **kwargs,
):
    """:func:`~repro.serve.service.sync` wrapped in the retry policy.

    Transient failures back off and retry (rateless syncs resume rather
    than restart); stale resume tokens reset the resume state and retry;
    fatal failures propagate untouched.  When attempts or the deadline
    run out, raises :class:`~repro.errors.RetryExhaustedError` with the
    per-attempt history in ``attempts`` and the last failure as its
    ``__cause__``.

    ``resume`` may be supplied to observe or pre-seed the rateless
    resume state; by default one is created internally for the rateless
    variant.  ``sleep`` is the awaitable used to wait out backoff
    (default :func:`asyncio.sleep`) — injectable so tests can run a full
    retry ladder in zero wall-clock time.
    """
    policy = policy or RetryPolicy()
    do_sleep = asyncio.sleep if sleep is None else sleep
    if resume is None and variant == "rateless":
        resume = RatelessResumeState()
    history: list[tuple[int, str, str]] = []
    started = time.monotonic()
    for attempt in range(policy.attempts):
        try:
            return await sync(
                host, port, config, points,
                variant=variant, adaptive=adaptive, rateless=rateless,
                resume=resume, **kwargs,
            )
        except ReproError as exc:
            verdict = classify(exc)
            history.append((attempt, type(exc).__name__, verdict))
            if verdict == FATAL:
                raise
            if verdict == RESET and resume is not None:
                resume.reset()
            if attempt + 1 >= policy.attempts:
                raise RetryExhaustedError(
                    f"sync failed after {policy.attempts} attempt(s); "
                    f"last error: {type(exc).__name__}: {exc}",
                    attempts=history,
                ) from exc
            delay = policy.backoff(
                attempt, hint=getattr(exc, "retry_after", 0.0)
            )
            if policy.deadline is not None:
                elapsed = time.monotonic() - started
                if elapsed + delay > policy.deadline:
                    raise RetryExhaustedError(
                        f"sync abandoned after {elapsed:.3f}s of a "
                        f"{policy.deadline:g}s deadline budget (next backoff "
                        f"{delay:.3f}s would overrun it); last error: "
                        f"{type(exc).__name__}: {exc}",
                        attempts=history,
                    ) from exc
            await do_sleep(delay)
    # repro-lint: waive[RPL003] reason=unreachable loop-invariant guard; the
    # final iteration above either returns or raises RetryExhaustedError
    raise AssertionError("unreachable: the retry loop always returns or raises")
