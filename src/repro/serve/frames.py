"""Length-prefixed framing for session payloads over a byte stream.

Session messages are opaque byte strings; TCP is a byte stream.  The codec
between them is deliberately minimal: each frame is a 4-byte big-endian
payload length followed by the payload.  Two parse paths share the header
struct and the size check (:func:`_validate_length`): the sans-I/O
:class:`FrameDecoder` for chunk-at-a-time feeding (what the
failure-injection tests drive directly), and :func:`read_frame`, which
rides :meth:`asyncio.StreamReader.readexactly` so the event loop does the
buffering.

Malformed input is always a typed error: oversized lengths raise
:class:`~repro.errors.SerializationError`, connections that die mid-frame
raise :class:`~repro.errors.SessionError`.  Nothing here can hang on bad
bytes — a short read is either a clean end-of-stream or an error.
"""

from __future__ import annotations

import asyncio
import struct

from repro.errors import SerializationError, SessionError

HEADER = struct.Struct(">I")

#: Refuse frames above this size (a corrupt header would otherwise make a
#: reader wait for gigabytes that never arrive).
MAX_FRAME_BYTES = 256 * 1024 * 1024


def _validate_length(length: int, context: str) -> int:
    """The one size check both parse paths (decoder and asyncio) share."""
    if length > MAX_FRAME_BYTES:
        raise SerializationError(
            f"{context} announces {length} bytes, above the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return length


def _check_payload(payload) -> None:
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise SerializationError(
            f"frame payload must be bytes, got {type(payload).__name__}"
        )
    _validate_length(len(payload), "outbound frame")


def encode_frame(payload: bytes) -> bytes:
    """Frame one payload: 4-byte big-endian length + bytes.

    Concatenates header and payload into one fresh byte string — fine for
    tests and small control frames; the streaming path
    (:func:`write_frame`) writes the two parts separately so multi-MB
    sketches are never copied just to be framed.
    """
    _check_payload(payload)
    return HEADER.pack(len(payload)) + bytes(payload)


class FrameDecoder:
    """Incremental frame parser: feed stream chunks, pop whole payloads.

    Consumed bytes advance a cursor instead of being deleted from the
    front of the buffer (a ``del`` memmoves the whole remainder per
    frame); the buffer compacts only when the dead prefix dominates.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._start = 0  # consumed prefix; compacted lazily

    def feed(self, data: bytes) -> None:
        """Append one chunk of stream bytes."""
        self._buffer.extend(data)

    def _compact(self) -> None:
        if self._start and (
            self._start >= len(self._buffer) or self._start > 1 << 16
        ):
            del self._buffer[:self._start]
            self._start = 0

    def next_frame(self) -> bytes | None:
        """Pop the next complete payload, or ``None`` if more bytes needed."""
        available = len(self._buffer) - self._start
        if available < HEADER.size:
            return None
        (length,) = HEADER.unpack_from(self._buffer, self._start)
        _validate_length(length, "frame header")
        if available < HEADER.size + length:
            return None
        begin = self._start + HEADER.size
        payload = bytes(memoryview(self._buffer)[begin:begin + length])
        self._start = begin + length
        self._compact()
        return payload

    @property
    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (a clean place to EOF)."""
        return len(self._buffer) == self._start

    def finish(self) -> None:
        """Declare end-of-stream; a buffered partial frame is an error."""
        if not self.at_boundary:
            raise SessionError(
                f"stream ended mid-frame with "
                f"{len(self._buffer) - self._start} stray bytes"
            )


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    timeout: float | None = None,
    allow_eof: bool = False,
) -> bytes | None:
    """Read one framed payload from an asyncio stream.

    Returns the payload, or ``None`` on a clean end-of-stream when
    ``allow_eof`` is set.  An end-of-stream anywhere else — before a frame
    when ``allow_eof`` is unset, or worse, mid-frame — raises
    :class:`~repro.errors.SessionError` (the peer disconnected
    mid-session), as does exceeding ``timeout`` seconds.
    """

    async def _read() -> bytes | None:
        try:
            header = await reader.readexactly(HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and allow_eof:
                return None
            raise SessionError(
                "peer disconnected mid-session "
                f"({len(exc.partial)}/{HEADER.size} header bytes)"
            ) from exc
        (length,) = HEADER.unpack(header)
        _validate_length(length, "frame header")
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise SessionError(
                "peer disconnected mid-frame "
                f"({len(exc.partial)}/{length} payload bytes)"
            ) from exc

    if timeout is None:
        return await _read()
    try:
        return await asyncio.wait_for(_read(), timeout)
    except asyncio.TimeoutError as exc:
        raise SessionError(
            f"timed out after {timeout:g}s waiting for a frame"
        ) from exc


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: bytes,
    *,
    timeout: float | None = None,
) -> None:
    """Frame and flush one payload onto an asyncio stream.

    ``drain()`` is bounded by ``timeout`` like every read: a peer that
    stops reading (full socket buffers, multi-MB sketch in flight) must
    surface as a typed :class:`~repro.errors.SessionError`, not occupy a
    handler forever.

    Large payloads are written as two pieces — the payload bytes go to
    the transport buffer as-is (zero-copy for the multi-MB sketch case)
    instead of being concatenated into a fresh framed string first.
    Small control frames keep the single concatenated write, so they
    leave in one segment.
    """
    _check_payload(payload)
    if len(payload) <= 4096:
        writer.write(HEADER.pack(len(payload)) + bytes(payload))
    else:
        writer.write(HEADER.pack(len(payload)))
        writer.write(payload)
    if timeout is None:
        await writer.drain()
        return
    try:
        await asyncio.wait_for(writer.drain(), timeout)
    except asyncio.TimeoutError as exc:
        raise SessionError(
            f"timed out after {timeout:g}s flushing a "
            f"{len(payload)}-byte frame (peer not reading?)"
        ) from exc
