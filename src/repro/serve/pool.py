"""Pre-fork worker pool: N processes serving one listen address.

BENCH_5 showed the single-loop server is CPU-bound: sessions/s plateaus
regardless of cores because every sketch encode, peel, and repair plan
shares one Python thread.  :class:`WorkerPoolServer` lifts that cap the
classic pre-fork way:

1. The parent builds (and pre-warms) one :class:`~repro.serve.service.ServerCore`
   — per-variant reconcilers, encoded one-way payloads, Alice's adaptive
   estimator/window state, the opening rateless increments — then binds
   the listen address.
2. It forks N workers.  Under the ``fork`` start method each worker
   inherits the warmed core copy-on-write: no per-worker re-encode of
   the point set, no pickling, near-zero incremental memory until a
   worker writes (it never does — the core is read-only on the hot
   path).
3. Each worker runs the unmodified
   :class:`~repro.serve.service.ReconciliationServer` accept loop over
   the shared address.  Two kernel-level distribution modes:

   * ``SO_REUSEPORT`` (Linux/BSD): every worker binds its own socket to
     the same address and the kernel hashes incoming connections across
     them — no thundering herd, no shared accept lock.
   * shared-socket fallback: the parent binds once pre-fork and every
     worker accepts from the inherited socket; asyncio tolerates the
     accept race (a worker that loses simply retries on the next
     readiness event).

The parent never accepts.  It monitors worker health (restart-on-crash
with a per-worker cap), aggregates per-session stats streamed over a
pipe, and turns SIGTERM into a graceful drain: workers stop accepting,
finish in-flight sessions (each already bounded by ``session_deadline``),
ship their final totals, and exit 0.

Per-worker state that deliberately does **not** shard transparently:

* The rateless resume-token LRU is private to each worker.  A token
  presented to a sibling (the kernel does not pin clients to workers)
  fails as a typed
  :class:`~repro.errors.StaleResumeTokenError`, which
  :func:`~repro.serve.resilience.resilient_sync` already answers by
  resetting its resume state and restarting the stream — correctness is
  never at risk, only the resumed bytes.
* The overload watermark (``max_pending``) and the ``RETRY_LATER``
  backoff hint are per worker: each worker sheds on *its own* backlog,
  the only queue its clients actually wait in, so an N-worker pool
  admits up to ``N * max_sessions`` sessions and ``N * max_pending``
  waiters globally.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
import time
from collections import deque

from repro.core.adaptive import AdaptiveConfig
from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig
from repro.errors import ConfigError, SessionError
from repro.scale.executors import fork_available
from repro.serve.service import (
    DEFAULT_SESSION_DEADLINE,
    DEFAULT_TIMEOUT,
    ReconciliationServer,
    ServerCore,
    SessionStats,
)

#: Listen backlog for pool sockets: deep enough that a worker restart
#: (or a busy accept loop) queues connections instead of refusing them.
LISTEN_BACKLOG = 512

#: How often the parent drains stats pipes and checks worker health.
MONITOR_INTERVAL = 0.05


def reuse_port_available() -> bool:
    """True when this platform can bind N sockets to one address."""
    return hasattr(socket, "SO_REUSEPORT")


def _bind(host: str, port: int, *, reuse_port: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(LISTEN_BACKLOG)
        sock.setblocking(False)
    except BaseException:
        sock.close()
        raise
    return sock


def _session_record(stats: SessionStats) -> dict:
    """The per-session message a worker streams to the parent: the stats
    fields plus pre-computed byte counts, minus the transcript (which can
    dwarf the session's own wire traffic)."""
    record = {
        "peer": stats.peer,
        "variant": stats.variant,
        "ok": stats.ok,
        "error": stats.error,
        "duration_s": stats.duration_s,
        "shed": stats.shed,
        "resumed_from": stats.resumed_from,
        "bytes_out": 0,
        "bytes_in": 0,
    }
    if stats.ok and stats.transcript is not None:
        record["bytes_out"] = stats.transcript.alice_to_bob_bytes
        record["bytes_in"] = stats.transcript.bob_to_alice_bytes
    return record


def _worker_main(index, core, sock, server_kwargs, offload, conn) -> None:
    """Entry point of one forked worker process."""
    try:
        asyncio.run(
            _worker_serve(index, core, sock, server_kwargs, offload, conn)
        )
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown race
            pass


async def _worker_serve(index, core, sock, server_kwargs, offload, conn):
    """One worker's life: serve until SIGTERM, then drain and report.

    SIGTERM (the pool's graceful-stop signal) closes the listen socket
    and awaits in-flight handlers — each already bounded by the server's
    ``session_deadline`` budget, so the drain is finite by construction —
    then ships the worker's final totals up the pipe and exits 0.  A
    crash (any escaped exception, or SIGKILL) exits non-zero instead and
    the parent reforks a replacement.
    """
    stopping = asyncio.Event()
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, stopping.set)
    loop.add_signal_handler(signal.SIGINT, stopping.set)

    parent = os.getppid()

    async def watch_parent() -> None:
        # Orphan protection for a non-daemonic worker: if the pool parent
        # vanishes without a SIGTERM (kill -9, crash), drain and exit
        # instead of serving forever from under nobody.
        while os.getppid() == parent:
            await asyncio.sleep(1.0)
        stopping.set()

    watcher = asyncio.ensure_future(watch_parent())

    def on_session(stats: SessionStats) -> None:
        try:
            conn.send(("session", index, _session_record(stats)))
        except (OSError, ValueError):  # pragma: no cover - parent died
            pass

    server = ReconciliationServer(
        core=core,
        sock=sock,
        worker_index=index,
        on_session=on_session,
        offload=offload,
        **server_kwargs,
    )
    await server.start()
    conn.send(("ready", index, os.getpid()))
    await stopping.wait()
    watcher.cancel()
    await server.close()
    conn.send(("final", index, server.summary()))


class WorkerPoolServer:
    """Serve reconciliation sessions from N pre-forked worker processes.

    A drop-in, scale-out sibling of
    :class:`~repro.serve.service.ReconciliationServer`: same construction
    surface (``(config, points, **knobs)`` or a prebuilt ``core=``), same
    async-context-manager lifecycle, same :attr:`address` /
    :meth:`summary` / :meth:`wait_for_sessions` observers — existing
    clients and tests need no changes.  Per-session knobs
    (``max_sessions``, ``max_pending``, ``timeout``, …) apply to *each
    worker*; see the module docstring for the global arithmetic.

    ``reuse_port=None`` (auto) picks ``SO_REUSEPORT`` where the platform
    offers it and the shared-socket pre-fork accept otherwise;
    ``offload`` ("thread" or "process") additionally moves each worker's
    session compute off its event loop (see
    :class:`~repro.serve.service.SessionOffload`).

    Requires the ``fork`` start method (POSIX) — the whole point is
    inheriting the warmed core copy-on-write.
    """

    def __init__(
        self,
        config: ProtocolConfig | None = None,
        points=None,
        *,
        core: ServerCore | None = None,
        workers: int = 2,
        adaptive: AdaptiveConfig | None = None,
        rateless: RatelessConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool | None = None,
        warm: bool = True,
        offload: str | None = None,
        max_sessions: int = 64,
        max_pending: int | None = None,
        retry_after_hint: float = 0.05,
        session_deadline: float | None = DEFAULT_SESSION_DEADLINE,
        resume_capacity: int = 256,
        timeout: float | None = DEFAULT_TIMEOUT,
        stats_history: int = 1024,
        start_timeout: float = 30.0,
        drain_grace: float = 5.0,
        max_restarts: int = 8,
    ):
        if not fork_available():  # pragma: no cover - platform-specific
            raise ConfigError(
                "the pre-fork worker pool requires the 'fork' start method"
            )
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if offload is not None and offload not in ("thread", "process"):
            raise ConfigError(
                f"unknown offload kind {offload!r}; "
                "expected 'thread', 'process', or None"
            )
        if core is None:
            if config is None or points is None:
                raise ConfigError(
                    "WorkerPoolServer needs (config, points) or core="
                )
            core = ServerCore(
                config, points, adaptive=adaptive, rateless=rateless
            )
            self._owns_core = True
        else:
            if config is not None or points is not None:
                raise ConfigError(
                    "pass either a prebuilt core= or (config, points), not both"
                )
            if adaptive is not None or rateless is not None:
                raise ConfigError(
                    "adaptive/rateless knobs live on the core when core= is "
                    "passed"
                )
            self._owns_core = False
        self.core = core
        self.workers = workers
        self.host = host
        self.port = port
        self._reuse_port = (
            reuse_port if reuse_port is not None else reuse_port_available()
        )
        self._warm = warm
        self._offload = offload
        self._server_kwargs = {
            "max_sessions": max_sessions,
            "max_pending": max_pending,
            "retry_after_hint": retry_after_hint,
            "session_deadline": session_deadline,
            "resume_capacity": resume_capacity,
            "timeout": timeout,
            "stats_history": stats_history,
        }
        self.session_deadline = session_deadline
        self.start_timeout = start_timeout
        self.drain_grace = drain_grace
        self.max_restarts = max_restarts
        self._ctx = multiprocessing.get_context("fork")
        self._socks: list[socket.socket] = []
        self._procs: list = [None] * workers
        self._conns: list = [None] * workers
        self._pids: list[int | None] = [None] * workers
        self._ready: list[bool] = [False] * workers
        self._restarts: list[int] = [0] * workers
        self._monitor_task: asyncio.Task | None = None
        self._closing = False
        self._started = False
        #: Recent session records (dicts, transcript-free) pooled across
        #: workers, newest last — the pool's analogue of the server's
        #: bounded ``stats`` deque.
        self.stats = deque(maxlen=stats_history)
        self._totals = {
            "sessions": 0, "ok": 0, "failed": 0, "shed": 0, "resumed": 0,
            "bytes_out": 0, "bytes_in": 0, "restarts": 0,
        }
        self.worker_summaries: dict[int, dict] = {}

    # ------------------------------------------------------------ lifecycle

    @property
    def mode(self) -> str:
        """How connections are distributed: ``reuse-port`` (kernel hash
        across per-worker sockets) or ``shared-socket`` (pre-fork accept
        from one inherited socket)."""
        return "reuse-port" if self._reuse_port else "shared-socket"

    @property
    def address(self) -> tuple[str, int]:
        """Where the pool listens (valid after :meth:`start`)."""
        return self.host, self.port

    def worker_pids(self) -> list[int | None]:
        """Live worker pids by index (``None`` before spawn / after a
        graceful exit) — for health checks and crash tests."""
        return list(self._pids)

    async def start(self) -> tuple[str, int]:
        """Warm, bind, fork, and wait until every worker accepts."""
        if self._started:
            raise SessionError("worker pool already started")
        self._started = True
        if self._warm:
            # Build every shared cache in the parent so the forks below
            # inherit them copy-on-write.
            self.core.warm()
        if self._reuse_port:
            first = _bind(self.host, self.port, reuse_port=True)
            self._socks.append(first)
            self.host, self.port = first.getsockname()[:2]
            for _ in range(self.workers - 1):
                self._socks.append(
                    _bind(self.host, self.port, reuse_port=True)
                )
        else:
            sock = _bind(self.host, self.port, reuse_port=False)
            self._socks.append(sock)
            self.host, self.port = sock.getsockname()[:2]
        for index in range(self.workers):
            self._spawn_worker(index)
        deadline = time.monotonic() + self.start_timeout
        while not all(self._ready):
            self._drain_pipes()
            if time.monotonic() > deadline:
                await self.close()
                raise SessionError(
                    f"worker pool failed to start within "
                    f"{self.start_timeout:g}s "
                    f"({sum(self._ready)}/{self.workers} workers ready)"
                )
            await asyncio.sleep(0.01)
        self._monitor_task = asyncio.ensure_future(self._monitor())
        return self.address

    def _sock_for(self, index: int) -> socket.socket:
        return self._socks[index if self._reuse_port else 0]

    def _spawn_worker(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        old = self._conns[index]
        if old is not None:
            old.close()
        self._conns[index] = parent_conn
        self._ready[index] = False
        # Not daemonic: a daemonic process may not fork children of its
        # own, which would forbid the per-worker process offload pool.
        # Orphan protection comes from the worker's parent watcher
        # instead (see _worker_serve).
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                self.core,
                self._sock_for(index),
                self._server_kwargs,
                self._offload,
                child_conn,
            ),
            daemon=False,
            name=f"repro-serve-worker-{index}",
        )
        process.start()
        child_conn.close()
        self._procs[index] = process
        self._pids[index] = process.pid

    def _drain_pipes(self) -> None:
        """Pull every pending worker message (non-blocking, re-entrant on
        one event loop: no awaits inside)."""
        for index, conn in enumerate(self._conns):
            if conn is None:
                continue
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                kind = message[0]
                if kind == "ready":
                    self._ready[index] = True
                    self._pids[index] = message[2]
                elif kind == "session":
                    self._note_session(message[2])
                elif kind == "final":
                    self.worker_summaries[index] = message[2]

    def _note_session(self, record: dict) -> None:
        self.stats.append(record)
        self._totals["sessions"] += 1
        if record["shed"]:
            self._totals["shed"] += 1
        if record["resumed_from"] is not None and not record["shed"]:
            self._totals["resumed"] += 1
        if record["ok"]:
            self._totals["ok"] += 1
            self._totals["bytes_out"] += record["bytes_out"]
            self._totals["bytes_in"] += record["bytes_in"]
        else:
            self._totals["failed"] += 1

    async def _monitor(self) -> None:
        """Health loop: drain stats, refork crashed workers.

        A worker that exited 0 drained gracefully (pool shutdown or a
        targeted SIGTERM) and is not replaced; any other exit is a crash
        and is reforked — from the parent, which still holds the listen
        socket(s) and the warmed core — up to ``max_restarts`` times per
        slot (a crash-looping config must not fork-bomb the host).
        """
        while True:
            self._drain_pipes()
            if not self._closing:
                for index, process in enumerate(self._procs):
                    if process is None or process.is_alive():
                        continue
                    process.join()
                    if (
                        process.exitcode != 0
                        and self._restarts[index] < self.max_restarts
                    ):
                        self._restarts[index] += 1
                        self._totals["restarts"] += 1
                        self._spawn_worker(index)
                    else:
                        self._procs[index] = None
                        self._pids[index] = None
            await asyncio.sleep(MONITOR_INTERVAL)

    async def close(self) -> None:
        """Graceful stop: SIGTERM every worker, await their drains
        (bounded by ``session_deadline`` plus ``drain_grace``), SIGKILL
        stragglers, collect final stats, release sockets and the core."""
        if self._closing:
            return
        self._closing = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for process in self._procs:
            if process is not None and process.is_alive():
                process.terminate()  # SIGTERM -> worker drains
        budget = (self.session_deadline or 0.0) + self.drain_grace
        deadline = time.monotonic() + budget
        while any(p is not None and p.is_alive() for p in self._procs):
            self._drain_pipes()
            if time.monotonic() > deadline:
                for process in self._procs:
                    if process is not None and process.is_alive():
                        process.kill()
                break
            await asyncio.sleep(0.02)
        for index, process in enumerate(self._procs):
            if process is not None:
                process.join()
                self._procs[index] = None
                self._pids[index] = None
        self._drain_pipes()
        for conn in self._conns:
            if conn is not None:
                conn.close()
        self._conns = [None] * self.workers
        for sock in self._socks:
            sock.close()
        self._socks = []
        if self._owns_core:
            self.core.close()

    async def __aenter__(self) -> "WorkerPoolServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI's daemon path)."""
        if not self._started:
            await self.start()
        while not self._closing:
            await asyncio.sleep(MONITOR_INTERVAL)

    # ------------------------------------------------------------ observers

    def summary(self) -> dict:
        """Aggregate totals across every worker (running totals streamed
        per session over the stats pipes, plus ``restarts`` — the number
        of crash reforks the monitor performed)."""
        self._drain_pipes()
        return dict(self._totals)

    async def wait_for_sessions(self, count: int) -> None:
        """Block until ``count`` sessions (ok or failed) finished
        pool-wide."""
        while True:
            self._drain_pipes()
            if self._totals["sessions"] >= count:
                return
            await asyncio.sleep(0.02)

    def digest(self, variant: str) -> str:
        """The config digest every worker expects for ``variant`` (one
        shared core — digest-identical across the pool by construction)."""
        return self.core.digest(variant)
