"""Connection handshake: agree on variant, config digest, and version.

Protocol parameters are public coins — both parties must construct the
*same* :class:`~repro.core.config.ProtocolConfig` (and, per variant, the
:class:`~repro.core.adaptive.AdaptiveConfig` /
:class:`~repro.core.rateless.RatelessConfig` knobs) out of band.  The
handshake does not transmit the config; it transmits a **digest** of the
wire-relevant fields so a drifted peer is rejected before any sketch
bytes flow, with an error message naming the mismatch.

Exchange: the client opens with a ``hello`` frame (magic, version,
variant, digest); the server answers ``welcome`` on agreement or
``error`` (a human-readable reason) before closing.  Frames carry JSON —
a few dozen bytes once per connection, in exchange for painless
extensibility.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.adaptive import AdaptiveConfig
from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig
from repro.errors import SerializationError, SessionError

MAGIC = "repro-serve"
WIRE_VERSION = 1

#: ProtocolConfig fields that shape wire bytes (the public-coin contract).
#: Private knobs — backend, workers, executor, decode_strategy — are
#: deliberately absent: peers may differ on those.  ``shards`` is added
#: only for the sharded variant (it frames the wire there and is ignored
#: everywhere else, so a sharded server can still serve one-round peers).
_WIRE_FIELDS = (
    "delta", "dimension", "k", "q", "occupancy_bits", "checksum_bits",
    "seed", "diff_margin", "metric", "levels", "random_shift",
)

#: AdaptiveConfig fields that shape wire bytes (all of them).
_ADAPTIVE_FIELDS = (
    "level_stride", "estimator_strata", "estimator_cells",
    "estimator_key_bits", "estimator_checksum_bits", "headroom",
    "include_fallback",
)

#: RatelessConfig fields that shape wire bytes (all of them: the segment
#: schedule is a public coin — both sides must derive identical segment
#: shapes and seeds from it).
_RATELESS_FIELDS = ("level", "initial_cells", "growth", "max_increments")


def config_digest(
    config: ProtocolConfig,
    variant: str = "one-round",
    adaptive: AdaptiveConfig | None = None,
    rateless: RatelessConfig | None = None,
) -> str:
    """Stable 16-hex digest of every parameter that shapes this variant's
    wire bytes."""
    record = {name: getattr(config, name) for name in _WIRE_FIELDS}
    if record["levels"] is not None:
        record["levels"] = list(record["levels"])
    if variant == "sharded":
        record["shards"] = config.shards
    if variant == "adaptive":
        adaptive = adaptive or AdaptiveConfig()
        record["adaptive"] = {
            name: getattr(adaptive, name) for name in _ADAPTIVE_FIELDS
        }
    if variant == "rateless":
        rateless = rateless or RatelessConfig()
        record["rateless"] = {
            name: getattr(rateless, name) for name in _RATELESS_FIELDS
        }
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _dump(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode()


def _load(payload: bytes, kind: str) -> dict:
    try:
        record = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"unparseable {kind} frame: {exc}") from exc
    if not isinstance(record, dict):
        raise SerializationError(f"{kind} frame is not a JSON object")
    return record


def hello_bytes(variant: str, digest: str) -> bytes:
    """The client's opening frame."""
    return _dump({
        "magic": MAGIC,
        "version": WIRE_VERSION,
        "variant": variant,
        "digest": digest,
    })


def parse_hello(payload: bytes) -> tuple[str, str, int]:
    """Parse a hello frame into ``(variant, digest, version)``.

    Bad JSON or a wrong magic raises
    :class:`~repro.errors.SerializationError` (not our protocol at all);
    a *version* we don't speak raises
    :class:`~repro.errors.SessionError` (our protocol, incompatible
    peer), so the server can answer with a typed refusal.
    """
    record = _load(payload, "hello")
    if record.get("magic") != MAGIC:
        raise SerializationError(
            f"hello magic {record.get('magic')!r} is not {MAGIC!r}"
        )
    version = record.get("version")
    if version != WIRE_VERSION:
        raise SessionError(
            f"peer speaks serve-protocol version {version!r}, "
            f"this build speaks {WIRE_VERSION}"
        )
    variant = record.get("variant")
    digest = record.get("digest")
    if not isinstance(variant, str) or not isinstance(digest, str):
        raise SerializationError("hello frame missing variant/digest strings")
    return variant, digest, version


def welcome_bytes(variant: str, digest: str) -> bytes:
    """The server's acceptance frame."""
    return _dump({
        "magic": MAGIC,
        "version": WIRE_VERSION,
        "ok": True,
        "variant": variant,
        "digest": digest,
    })


def error_bytes(reason: str) -> bytes:
    """The server's refusal frame (sent just before closing)."""
    return _dump({"magic": MAGIC, "version": WIRE_VERSION, "error": reason})


def parse_welcome(payload: bytes) -> dict:
    """Parse the server's reply; a refusal raises ``SessionError``."""
    record = _load(payload, "welcome")
    if record.get("magic") != MAGIC:
        raise SerializationError(
            f"welcome magic {record.get('magic')!r} is not {MAGIC!r}"
        )
    if "error" in record:
        raise SessionError(f"server refused the session: {record['error']}")
    if record.get("ok") is not True:
        raise SerializationError("welcome frame is neither ok nor an error")
    return record
