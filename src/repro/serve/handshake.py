"""Connection handshake: agree on variant, config digest, and version.

Protocol parameters are public coins — both parties must construct the
*same* :class:`~repro.core.config.ProtocolConfig` (and, per variant, the
:class:`~repro.core.adaptive.AdaptiveConfig` /
:class:`~repro.core.rateless.RatelessConfig` knobs) out of band.  The
handshake does not transmit the config; it transmits a **digest** of the
wire-relevant fields so a drifted peer is rejected before any sketch
bytes flow, with an error message naming the mismatch.

Exchange: the client opens with a ``hello`` frame (magic, version,
variant, digest, and — when resuming an interrupted rateless stream —
a resume token plus next-increment index); the server answers
``welcome`` on agreement (for rateless sessions carrying the resume
token the client may present later), ``error`` (a human-readable
reason, with a machine-readable ``code`` for refusals the client must
react to specially) or a binary ``RETRY_LATER`` frame when shedding
load, before closing.  Handshake frames carry JSON — a few dozen bytes
once per connection, in exchange for painless extensibility; the two
control frames that machines (not humans) consume — the retry-later
refusal and the resume token blob — are fixed binary layouts with their
own magics.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.adaptive import AdaptiveConfig
from repro.core.config import ProtocolConfig
from repro.core.rateless import RatelessConfig
from repro.errors import (
    SerializationError,
    ServerOverloadedError,
    SessionError,
    StaleResumeTokenError,
    SyncRefusedError,
)
from repro.net.bits import BitReader, BitWriter

MAGIC = "repro-serve"
WIRE_VERSION = 1

#: First byte of the binary retry-later refusal the server sends instead
#: of a JSON welcome when shedding load.  Distinct from every sketch
#: magic and from ``{`` (0x7B), the first byte of every JSON handshake
#: frame, so the client can dispatch on one byte.
RETRY_LATER_MAGIC = 0xC9

#: First byte of a rateless resume token blob (hex-encoded inside the
#: JSON frames; the client treats the token as opaque).
RESUME_TOKEN_MAGIC = 0xCA

#: Refusal code carried in an ``error`` frame when the presented resume
#: token is unknown/expired — the client reacts by dropping its resume
#: state and retrying from scratch, unlike ordinary (fatal) refusals.
STALE_RESUME_CODE = "stale-resume"

#: ProtocolConfig fields that shape wire bytes (the public-coin contract).
#: Private knobs — backend, workers, executor, decode_strategy — are
#: deliberately absent: peers may differ on those.  ``shards`` is added
#: only for the sharded variant (it frames the wire there and is ignored
#: everywhere else, so a sharded server can still serve one-round peers).
_WIRE_FIELDS = (
    "delta", "dimension", "k", "q", "occupancy_bits", "checksum_bits",
    "seed", "diff_margin", "metric", "levels", "random_shift",
)

#: AdaptiveConfig fields that shape wire bytes (all of them).
_ADAPTIVE_FIELDS = (
    "level_stride", "estimator_strata", "estimator_cells",
    "estimator_key_bits", "estimator_checksum_bits", "headroom",
    "include_fallback",
)

#: RatelessConfig fields that shape wire bytes (all of them: the segment
#: schedule is a public coin — both sides must derive identical segment
#: shapes and seeds from it).
_RATELESS_FIELDS = ("level", "initial_cells", "growth", "max_increments")


def config_digest(
    config: ProtocolConfig,
    variant: str = "one-round",
    adaptive: AdaptiveConfig | None = None,
    rateless: RatelessConfig | None = None,
) -> str:
    """Stable 16-hex digest of every parameter that shapes this variant's
    wire bytes."""
    record = {name: getattr(config, name) for name in _WIRE_FIELDS}
    if record["levels"] is not None:
        record["levels"] = list(record["levels"])
    if variant == "sharded":
        record["shards"] = config.shards
    if variant == "adaptive":
        adaptive = adaptive or AdaptiveConfig()
        record["adaptive"] = {
            name: getattr(adaptive, name) for name in _ADAPTIVE_FIELDS
        }
    if variant == "rateless":
        rateless = rateless or RatelessConfig()
        record["rateless"] = {
            name: getattr(rateless, name) for name in _RATELESS_FIELDS
        }
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _dump(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode()


def _load(payload: bytes, kind: str) -> dict:
    try:
        record = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"unparseable {kind} frame: {exc}") from exc
    if not isinstance(record, dict):
        raise SerializationError(f"{kind} frame is not a JSON object")
    return record


def hello_bytes(
    variant: str,
    digest: str,
    resume: tuple[str, int] | None = None,
) -> bytes:
    """The client's opening frame.

    ``resume`` — ``(token_hex, next_increment)`` — asks the server to
    continue a previously interrupted rateless stream at increment
    ``next_increment`` instead of restarting from 0.  A plain hello
    (``resume=None``) is byte-identical to previous wire versions.
    """
    record = {
        "magic": MAGIC,
        "version": WIRE_VERSION,
        "variant": variant,
        "digest": digest,
    }
    if resume is not None:
        token, next_index = resume
        record["resume"] = {"token": token, "next": next_index}
    return _dump(record)


def parse_hello(payload: bytes) -> tuple[str, str, int]:
    """Parse a hello frame into ``(variant, digest, version)``.

    Bad JSON or a wrong magic raises
    :class:`~repro.errors.SerializationError` (not our protocol at all);
    a *version* we don't speak raises
    :class:`~repro.errors.SessionError` (our protocol, incompatible
    peer), so the server can answer with a typed refusal.
    """
    variant, digest, version, _ = parse_hello_record(payload)
    return variant, digest, version


def parse_hello_record(
    payload: bytes,
) -> tuple[str, str, int, tuple[str, int] | None]:
    """Parse a hello frame including the optional resume request.

    Returns ``(variant, digest, version, resume)`` where ``resume`` is
    ``(token_hex, next_increment)`` or ``None``.  A malformed resume
    object raises :class:`~repro.errors.SerializationError`.
    """
    record = _load(payload, "hello")
    if record.get("magic") != MAGIC:
        raise SerializationError(
            f"hello magic {record.get('magic')!r} is not {MAGIC!r}"
        )
    version = record.get("version")
    if version != WIRE_VERSION:
        raise SessionError(
            f"peer speaks serve-protocol version {version!r}, "
            f"this build speaks {WIRE_VERSION}"
        )
    variant = record.get("variant")
    digest = record.get("digest")
    if not isinstance(variant, str) or not isinstance(digest, str):
        raise SerializationError("hello frame missing variant/digest strings")
    resume = None
    if "resume" in record:
        request = record["resume"]
        if (
            not isinstance(request, dict)
            or not isinstance(request.get("token"), str)
            or not isinstance(request.get("next"), int)
            or isinstance(request.get("next"), bool)
            or request["next"] < 1
        ):
            raise SerializationError(
                "hello resume request must carry a token string and a "
                "next-increment index >= 1"
            )
        resume = (request["token"], request["next"])
    return variant, digest, version, resume


def welcome_bytes(
    variant: str,
    digest: str,
    token: str | None = None,
    resume_from: int | None = None,
    worker: int | None = None,
    recovered: dict | None = None,
) -> bytes:
    """The server's acceptance frame.

    Rateless sessions carry ``token`` — the resume handle the client
    presents if this connection dies mid-stream — and, when the server
    accepted a resume request, ``resume_from``, the increment index the
    stream continues at.  A pool worker additionally stamps its
    ``worker`` index, and a store-backed server its ``recovered``
    summary (source / generation / replayed records).  Both are
    diagnostic only — clients must not branch on them — and a plain
    single-process, store-less welcome (``worker=None``,
    ``recovered=None``) stays byte-identical to previous wire versions.
    """
    record = {
        "magic": MAGIC,
        "version": WIRE_VERSION,
        "ok": True,
        "variant": variant,
        "digest": digest,
    }
    if token is not None:
        record["token"] = token
    if resume_from is not None:
        record["resume_from"] = resume_from
    if worker is not None:
        record["worker"] = worker
    if recovered is not None:
        record["recovered"] = recovered
    return _dump(record)


def error_bytes(reason: str, code: str | None = None) -> bytes:
    """The server's refusal frame (sent just before closing).

    ``code`` tags refusals the client must react to mechanically (today
    only :data:`STALE_RESUME_CODE`); human-readable ``reason`` carries
    the rest.
    """
    record = {"magic": MAGIC, "version": WIRE_VERSION, "error": reason}
    if code is not None:
        record["code"] = code
    return _dump(record)


def parse_welcome(payload: bytes) -> dict:
    """Parse the server's reply; refusals raise typed errors.

    A retry-later control frame raises
    :class:`~repro.errors.ServerOverloadedError` (retryable, carries the
    server's backoff hint); an ``error`` frame tagged
    :data:`STALE_RESUME_CODE` raises
    :class:`~repro.errors.StaleResumeTokenError` (retryable after
    dropping resume state); any other ``error`` frame raises
    :class:`~repro.errors.SyncRefusedError` (fatal — the same hello
    would be refused again).
    """
    retry_after = parse_retry_later(payload)
    if retry_after is not None:
        raise ServerOverloadedError(
            f"server overloaded; asked to retry after {retry_after:g}s",
            retry_after=retry_after,
        )
    record = _load(payload, "welcome")
    if record.get("magic") != MAGIC:
        raise SerializationError(
            f"welcome magic {record.get('magic')!r} is not {MAGIC!r}"
        )
    if "error" in record:
        reason = record["error"]
        if record.get("code") == STALE_RESUME_CODE:
            raise StaleResumeTokenError(
                f"server rejected the resume token: {reason}"
            )
        raise SyncRefusedError(f"server refused the session: {reason}")
    if record.get("ok") is not True:
        raise SerializationError("welcome frame is neither ok nor an error")
    return record


# ------------------------------------------------------- control frames


def retry_later_bytes(retry_after: float) -> bytes:
    """The server's overload refusal: binary, fixed layout, with a
    retry-after hint in milliseconds (varint; sub-millisecond hints
    round up so a positive hint never collapses to zero)."""
    millis = max(0, -(-int(retry_after * 1_000_000) // 1000))
    writer = BitWriter()
    writer.write_uint(RETRY_LATER_MAGIC, 8)
    writer.write_uint(WIRE_VERSION, 8)
    writer.write_varint(millis)
    return writer.getvalue()


def parse_retry_later(payload: bytes) -> float | None:
    """Retry-after seconds if ``payload`` is a retry-later frame, else
    ``None``.  A frame that opens with the magic but is malformed raises
    :class:`~repro.errors.SerializationError`."""
    if not payload or payload[0] != RETRY_LATER_MAGIC:
        return None
    reader = BitReader(payload)
    reader.read_uint(8)
    if reader.read_uint(8) != WIRE_VERSION:
        raise SerializationError("unsupported retry-later frame version")
    millis = reader.read_varint()
    reader.expect_end()
    return millis / 1000.0


def resume_token(nonce: int, entry_id: int) -> str:
    """Encode one server-issued resume token (opaque hex to the client).

    ``nonce`` distinguishes server processes (a token minted by a
    previous incarnation must not validate against the entry counter of
    a new one); ``entry_id`` is the server's running session counter.
    """
    writer = BitWriter()
    writer.write_uint(RESUME_TOKEN_MAGIC, 8)
    writer.write_uint(WIRE_VERSION, 8)
    writer.write_uint(nonce & 0xFFFFFFFF, 32)
    writer.write_varint(entry_id)
    return writer.getvalue().hex()


def parse_resume_token(token: str) -> tuple[int, int]:
    """Decode and validate a resume token; returns ``(nonce, entry_id)``.

    Garbage — non-hex text, wrong magic, trailing bytes — raises
    :class:`~repro.errors.SerializationError` so a corrupted token is a
    typed rejection, never a lookup with undefined behaviour.
    """
    try:
        blob = bytes.fromhex(token)
    except ValueError as exc:
        raise SerializationError(f"resume token is not hex: {token!r}") from exc
    reader = BitReader(blob)
    if not blob or reader.read_uint(8) != RESUME_TOKEN_MAGIC:
        raise SerializationError("bad magic byte; not a resume token")
    if reader.read_uint(8) != WIRE_VERSION:
        raise SerializationError("unsupported resume token version")
    nonce = reader.read_uint(32)
    entry_id = reader.read_varint()
    reader.expect_end()
    return nonce, entry_id
