"""Networked reconciliation: frames, handshake, asyncio server + client.

This package is the transport side of the sans-I/O split: the session
machines in :mod:`repro.session` own all protocol logic, while everything
here only moves their payload bytes — length-prefixed frames over TCP,
a handshake agreeing on variant + public-coin config digest + version,
a bounded-concurrency server that is Alice for every connection, and an
async client that is Bob.  Simulated, loopback-asyncio, and TCP runs all
ship byte-identical payloads.

The resilience layer (:mod:`repro.serve.resilience`) adds typed
retry-vs-fatal classification, seeded exponential backoff, and rateless
session resumption on top of the plain client; the server sheds load
with typed ``RETRY_LATER`` refusals past its pending watermark and
bounds every connection with a session deadline.  Deterministic fault
injection for all of it lives in :mod:`repro.net.faults`.

Scaling across cores is :mod:`repro.serve.pool`: a pre-fork
:class:`~repro.serve.pool.WorkerPoolServer` whose N workers each run the
single-process server over a shared listen address, inheriting one
pre-warmed :class:`~repro.serve.service.ServerCore` copy-on-write, with
optional off-loop session compute via
:class:`~repro.serve.service.SessionOffload`.
"""

from repro.serve.frames import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.handshake import WIRE_VERSION, config_digest
from repro.serve.pool import WorkerPoolServer, reuse_port_available
from repro.serve.resilience import (
    FATAL,
    RESET,
    RETRY,
    RetryPolicy,
    classify,
    resilient_sync,
)
from repro.serve.service import (
    DEFAULT_SESSION_DEADLINE,
    DEFAULT_TIMEOUT,
    ReconciliationServer,
    ServerCore,
    SessionOffload,
    SessionStats,
    close_writer,
    install_process_core,
    pump_stream,
    sync,
    sync_blocking,
)

__all__ = [
    "DEFAULT_SESSION_DEADLINE",
    "DEFAULT_TIMEOUT",
    "FATAL",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "RESET",
    "RETRY",
    "ReconciliationServer",
    "RetryPolicy",
    "ServerCore",
    "SessionOffload",
    "SessionStats",
    "WIRE_VERSION",
    "WorkerPoolServer",
    "classify",
    "close_writer",
    "config_digest",
    "encode_frame",
    "install_process_core",
    "pump_stream",
    "read_frame",
    "resilient_sync",
    "reuse_port_available",
    "sync",
    "sync_blocking",
    "write_frame",
]
