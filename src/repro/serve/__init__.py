"""Networked reconciliation: frames, handshake, asyncio server + client.

This package is the transport side of the sans-I/O split: the session
machines in :mod:`repro.session` own all protocol logic, while everything
here only moves their payload bytes — length-prefixed frames over TCP,
a handshake agreeing on variant + public-coin config digest + version,
a bounded-concurrency server that is Alice for every connection, and an
async client that is Bob.  Simulated, loopback-asyncio, and TCP runs all
ship byte-identical payloads.
"""

from repro.serve.frames import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.handshake import WIRE_VERSION, config_digest
from repro.serve.service import (
    DEFAULT_TIMEOUT,
    ReconciliationServer,
    SessionStats,
    pump_stream,
    sync,
    sync_blocking,
)

__all__ = [
    "DEFAULT_TIMEOUT",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "ReconciliationServer",
    "SessionStats",
    "WIRE_VERSION",
    "config_digest",
    "encode_frame",
    "pump_stream",
    "read_frame",
    "sync",
    "sync_blocking",
    "write_frame",
]
