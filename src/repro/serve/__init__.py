"""Networked reconciliation: frames, handshake, asyncio server + client.

This package is the transport side of the sans-I/O split: the session
machines in :mod:`repro.session` own all protocol logic, while everything
here only moves their payload bytes — length-prefixed frames over TCP,
a handshake agreeing on variant + public-coin config digest + version,
a bounded-concurrency server that is Alice for every connection, and an
async client that is Bob.  Simulated, loopback-asyncio, and TCP runs all
ship byte-identical payloads.

The resilience layer (:mod:`repro.serve.resilience`) adds typed
retry-vs-fatal classification, seeded exponential backoff, and rateless
session resumption on top of the plain client; the server sheds load
with typed ``RETRY_LATER`` refusals past its pending watermark and
bounds every connection with a session deadline.  Deterministic fault
injection for all of it lives in :mod:`repro.net.faults`.
"""

from repro.serve.frames import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.handshake import WIRE_VERSION, config_digest
from repro.serve.resilience import (
    FATAL,
    RESET,
    RETRY,
    RetryPolicy,
    classify,
    resilient_sync,
)
from repro.serve.service import (
    DEFAULT_SESSION_DEADLINE,
    DEFAULT_TIMEOUT,
    ReconciliationServer,
    SessionStats,
    close_writer,
    pump_stream,
    sync,
    sync_blocking,
)

__all__ = [
    "DEFAULT_SESSION_DEADLINE",
    "DEFAULT_TIMEOUT",
    "FATAL",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "RESET",
    "RETRY",
    "ReconciliationServer",
    "RetryPolicy",
    "SessionStats",
    "WIRE_VERSION",
    "classify",
    "close_writer",
    "config_digest",
    "encode_frame",
    "pump_stream",
    "read_frame",
    "resilient_sync",
    "sync",
    "sync_blocking",
    "write_frame",
]
