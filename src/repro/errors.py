"""Exception hierarchy shared by every ``repro`` subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
type at protocol boundaries while tests can still assert on the specific
subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError, ValueError):
    """A parameter value is invalid or inconsistent with other parameters."""


class BackendUnavailableError(ReproError):
    """An accelerated code path was requested but its dependency is missing.

    Raised by numpy-only bulk primitives (``TabulationHash.hash_many``,
    ``SpacePartitioner.shard_id_array``, ...) when numpy is not importable.
    Callers that gate on availability never see it; callers that forgot to
    gate get a typed error instead of a bare ``RuntimeError``.
    """


class SerializationError(ReproError):
    """A message could not be encoded to, or decoded from, its wire form."""


class DecodeFailure(ReproError):
    """An invertible sketch could not be fully peeled.

    Attributes
    ----------
    recovered:
        Number of entries successfully extracted before the peeler stalled.
    remaining:
        Number of non-empty cells left in the sketch when peeling stopped.
    """

    def __init__(self, message: str, recovered: int = 0, remaining: int = 0):
        super().__init__(message)
        self.recovered = recovered
        self.remaining = remaining


class ReconciliationFailure(ReproError):
    """A reconciliation protocol could not produce a repaired set.

    Raised, for example, when no level of the hierarchical sketch peels, or
    when an exact baseline's difference estimate was exceeded.
    """


class ChannelError(ReproError):
    """Misuse of the simulated channel (e.g. a reply on a closed channel)."""


class SessionError(ReproError):
    """A protocol session was driven outside its state machine's contract.

    Raised by the sans-I/O sessions (:mod:`repro.session`) on out-of-order
    input — feeding before start, feeding a completed session, reading a
    result too early — and by the transports (:mod:`repro.serve`) on
    handshake mismatches, mid-session disconnects, and I/O timeouts.
    """


class CapacityExceeded(ReproError):
    """More items were inserted into a sketch than its sizing supports.

    This is advisory — IBLTs may still decode above their nominal capacity —
    but protocols that promised a bound surface the violation explicitly.
    """
