"""Exception hierarchy shared by every ``repro`` subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
type at protocol boundaries while tests can still assert on the specific
subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError, ValueError):
    """A parameter value is invalid or inconsistent with other parameters."""


class BackendUnavailableError(ReproError):
    """An accelerated code path was requested but its dependency is missing.

    Raised by numpy-only bulk primitives (``TabulationHash.hash_many``,
    ``SpacePartitioner.shard_id_array``, ...) when numpy is not importable.
    Callers that gate on availability never see it; callers that forgot to
    gate get a typed error instead of a bare ``RuntimeError``.
    """


class SerializationError(ReproError):
    """A message could not be encoded to, or decoded from, its wire form."""


class DecodeFailure(ReproError):
    """An invertible sketch could not be fully peeled.

    Attributes
    ----------
    recovered:
        Number of entries successfully extracted before the peeler stalled.
    remaining:
        Number of non-empty cells left in the sketch when peeling stopped.
    """

    def __init__(self, message: str, recovered: int = 0, remaining: int = 0):
        super().__init__(message)
        self.recovered = recovered
        self.remaining = remaining


class ReconciliationFailure(ReproError):
    """A reconciliation protocol could not produce a repaired set.

    Raised, for example, when no level of the hierarchical sketch peels, or
    when an exact baseline's difference estimate was exceeded.
    """


class ChannelError(ReproError):
    """Misuse of the simulated channel (e.g. a reply on a closed channel)."""


class SessionError(ReproError):
    """A protocol session was driven outside its state machine's contract.

    Raised by the sans-I/O sessions (:mod:`repro.session`) on out-of-order
    input — feeding before start, feeding a completed session, reading a
    result too early — and by the transports (:mod:`repro.serve`) on
    handshake mismatches, mid-session disconnects, and I/O timeouts.
    """


class SyncRefusedError(SessionError):
    """The server refused this sync during the handshake.

    Raised by the client when the server answers the hello with a typed
    error frame — config-digest mismatch, unknown variant, incompatible
    wire version.  Refusals are *fatal* for retry purposes: the same
    hello will be refused again, so a retry policy must surface them
    instead of burning attempts.
    """


class StaleResumeTokenError(SyncRefusedError):
    """A rateless resume token was unknown, expired, or inconsistent.

    Raised when a client presents a resume token the server no longer
    holds (evicted from the bounded resume LRU, or issued by a previous
    server process), or whose recorded config digest / increment
    watermark does not match the resume request.  Unlike other refusals
    this one is *recoverable by reset*: dropping the client-side resume
    state and syncing again from scratch is expected to succeed.
    """


class ServerOverloadedError(SessionError):
    """The server shed this sync because it is at capacity.

    Carries the server's ``retry_after`` hint (seconds); a retrying
    client must wait at least that long before its next attempt.

    Attributes
    ----------
    retry_after:
        Seconds the server asked the client to back off for.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class RetryExhaustedError(ReproError):
    """A retry policy ran out of attempts (or deadline budget).

    The final underlying failure is chained as ``__cause__``; the
    per-attempt history travels in :attr:`attempts`.

    Attributes
    ----------
    attempts:
        Tuple of ``(attempt_index, error_type_name, verdict)`` records,
        one per failed attempt, in order.
    """

    def __init__(self, message: str, attempts: tuple = ()):
        super().__init__(message)
        self.attempts = tuple(attempts)


class StoreError(ReproError):
    """The durable sketch store (:mod:`repro.store`) could not operate.

    Base for every store-layer failure: unusable directories, I/O errors
    wrapped at the storage seam, corruption.  ``OSError`` never escapes
    the store raw.
    """


class StoreCorruptError(StoreError):
    """The on-disk store state is damaged beyond automatic recovery.

    A torn WAL *tail* is not corruption — recovery truncates it silently.
    This error means the durable prefix itself is unusable: a snapshot
    with a bad CRC or foreign config digest, a WAL whose first record is
    unreadable while a snapshot generation says records must exist, or
    framing from a future/unknown version.
    """


class InjectedCrash(StoreError):
    """A deterministic :class:`~repro.store.crash.CrashPlan` kill point fired.

    Simulates ``kill -9`` at a chosen storage operation: the store's
    in-process state is abandoned mid-flight and tests recover from the
    surviving bytes.  Only ever raised under injection; production
    storage never throws it.
    """


class CapacityExceeded(ReproError):
    """More items were inserted into a sketch than its sizing supports.

    This is advisory — IBLTs may still decode above their nominal capacity —
    but protocols that promised a bound surface the violation explicitly.
    """
