"""Wire format of the hierarchy sketch (the protocol's one message).

A :class:`HierarchySketch` is Alice's entire transmission in the one-round
protocol: one IBLT per grid level, finest first, preceded by a small header.
The per-level IBLT configs are *derived* from the shared
:class:`~repro.core.config.ProtocolConfig` (public coins), so only cell
contents travel.

Header layout::

    magic     8 bits   (0xR5 = 0xB5)
    version   8 bits
    n_points  varint   (|S_A|; lets the receiver check count balance)
    n_levels  varint
    then per level: level id (varint) followed by the level's IBLT cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.errors import ConfigError, SerializationError
from repro.iblt.hashing import hash_with_salt
from repro.iblt.table import IBLT, IBLTConfig
from repro.net.bits import BitReader, BitWriter

MAGIC = 0xB5
VERSION = 1


def level_iblt_config(
    config: ProtocolConfig, grid: ShiftedGridHierarchy, level: int, cells: int | None = None
) -> IBLTConfig:
    """The (derived, never transmitted) IBLT config of one grid level."""
    resolved_cells = cells if cells is not None else config.cells_per_level
    if resolved_cells <= 0:
        # Catch bad sizing here, with a protocol-level message, instead of
        # deep inside a backend's array allocation.
        raise ConfigError(
            f"level {level} IBLT needs a positive cell count, got {resolved_cells}"
        )
    return IBLTConfig(
        cells=resolved_cells,
        q=config.q,
        key_bits=grid.key_bits(level),
        checksum_bits=config.checksum_bits,
        seed=hash_with_salt(level, config.seed ^ 0x1EB1),
    )


@dataclass
class LevelSketch:
    """One grid level's IBLT."""

    level: int
    table: IBLT


def build_level_sketches(
    config: ProtocolConfig,
    grid: ShiftedGridHierarchy,
    points,
    cells_by_level: dict[int, int] | None = None,
) -> list[LevelSketch]:
    """Build every sketched level's IBLT from one pass over the points.

    The grid hashes all points into their per-level keys in a single batch
    (vectorized when numpy is available), then each level's table ingests
    its key vector through the backend's batch path — the hot loop of the
    whole protocol, and the reason :class:`ProtocolConfig` carries a
    ``backend`` selection.
    """
    levels = config.sketch_levels
    keys_by_level = grid.level_keys(points, levels)
    sketches = []
    for level in levels:
        cells = cells_by_level.get(level) if cells_by_level else None
        table = IBLT(
            level_iblt_config(config, grid, level, cells), backend=config.backend
        )
        table.insert_many(keys_by_level[level])
        sketches.append(LevelSketch(level, table))
    return sketches


@dataclass
class HierarchySketch:
    """The full one-round message: every sketched level, finest first."""

    n_points: int
    levels: list[LevelSketch]

    def to_bytes(self) -> bytes:
        """Serialise header + all level tables."""
        writer = BitWriter()
        writer.write_uint(MAGIC, 8)
        writer.write_uint(VERSION, 8)
        writer.write_varint(self.n_points)
        writer.write_varint(len(self.levels))
        for sketch in self.levels:
            writer.write_varint(sketch.level)
            sketch.table.write_to(writer)
        return writer.getvalue()

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        config: ProtocolConfig,
        grid: ShiftedGridHierarchy,
        cells_by_level: dict[int, int] | None = None,
    ) -> "HierarchySketch":
        """Deserialise and re-derive each level's IBLT config.

        ``cells_by_level`` overrides the per-level cell counts (used by the
        adaptive protocol, whose reply sizes tables from the estimate).
        """
        reader = BitReader(data)
        if reader.read_uint(8) != MAGIC:
            raise SerializationError("bad magic byte; not a hierarchy sketch")
        if reader.read_uint(8) != VERSION:
            raise SerializationError("unsupported sketch version")
        n_points = reader.read_varint()
        n_levels = reader.read_varint()
        if n_levels > grid.max_level + 1:
            raise SerializationError(
                f"sketch claims {n_levels} levels, grid has {grid.max_level + 1}"
            )
        levels: list[LevelSketch] = []
        seen_levels: set[int] = set()
        for _ in range(n_levels):
            level = reader.read_varint()
            if not 0 <= level <= grid.max_level:
                raise SerializationError(f"level {level} out of range")
            if level in seen_levels:
                # A malformed payload can carry the same level twice; later
                # copies would silently shadow the first in the receiver's
                # level index, so reject at the wire boundary.
                raise SerializationError(
                    f"sketch carries level {level} twice"
                )
            seen_levels.add(level)
            cells = cells_by_level.get(level) if cells_by_level else None
            table_config = level_iblt_config(config, grid, level, cells)
            levels.append(
                LevelSketch(
                    level,
                    IBLT.read_from(reader, table_config, backend=config.backend),
                )
            )
        reader.expect_end()
        return cls(n_points=n_points, levels=levels)
