"""The paper's analytic formulas: communication, lower bound, accuracy.

These are the quantities the benchmark harness plots measured numbers
against:

* the one-round protocol ships ``O(k · log Δ)`` IBLT cells, i.e.
  ``O(k · log Δ · (d · log Δ + log n))`` bits;
* achieving ``EMD_k`` exactly needs ``Ω(k · log |U|)`` bits
  (``|U| = Δ^d``) — the paper's lower bound;
* the repaired set satisfies
  ``EMD(S_A, S'_B) ≤ EMD_k + (difference at ℓ*) · d · 2^{ℓ*}
  = O(d) · EMD_k`` in expectation.
"""

from __future__ import annotations

import math

from repro.core.config import ProtocolConfig
from repro.errors import ConfigError


def universe_bits(delta: int, dimension: int) -> int:
    """``log2 |U|`` for the grid universe ``[delta]^d``, rounded up."""
    if delta < 2 or dimension < 1:
        raise ConfigError("delta must be >= 2 and dimension >= 1")
    return dimension * max(1, math.ceil(math.log2(delta)))


def lower_bound_bits(k: int, delta: int, dimension: int) -> int:
    """The paper's ``Ω(k log |U|)`` communication lower bound (in bits).

    Any protocol guaranteeing ``EMD(S_A, S'_B) = EMD_k(S_A, S_B)`` must, in
    the worst case, identify k arbitrary points of the universe — the
    stated bound with constant 1.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    return k * universe_bits(delta, dimension)


def one_round_bits_estimate(config: ProtocolConfig, count_bits: float = 6.0) -> int:
    """Analytic size of the one-round hierarchy sketch, in bits.

    Sums, over the sketched levels, ``cells × (count + key + checksum)``
    with the level-dependent key width; ``count_bits`` approximates the
    varint-coded per-cell count field (counts concentrate near
    ``n · q / cells`` but are resident in a varint, ~1 byte at benchmark
    loads).  Compared against measured payloads in the tests within a
    modest tolerance.
    """
    from repro.core.grid import ShiftedGridHierarchy

    grid = ShiftedGridHierarchy(
        config.delta, config.dimension, config.seed, config.occupancy_bits
    )
    total = 16 + 2 * 8  # header magic/version + two short varints
    for level in config.sketch_levels:
        per_cell = count_bits + grid.key_bits(level) + config.checksum_bits
        total += 8 + config.cells_per_level * per_cell  # level id + cells
    return int(total)


def expected_split_pairs(emd_value: float, level: int) -> float:
    """Expected close pairs split across cells at ``level`` (ℓ1 bound).

    ``Pr[split] ≤ distance / 2^level`` per pair, summed over the optimal
    matching: at most ``EMD_k / 2^level`` in total.
    """
    if emd_value < 0:
        raise ConfigError(f"emd_value must be non-negative, got {emd_value}")
    if level < 0:
        raise ConfigError(f"level must be non-negative, got {level}")
    return emd_value / float(1 << level)


def target_level(emd_k_value: float, k: int) -> int:
    """The level the analysis predicts Bob decodes at: ``2^ℓ* ≈ EMD_k / k``."""
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if emd_k_value <= 0:
        return 0
    return max(0, math.ceil(math.log2(max(1.0, emd_k_value / k))))


def predicted_emd_bound(
    emd_k_value: float, k: int, dimension: int, diff_margin: float = 3.0
) -> float:
    """The analytic upper bound on ``EMD(S_A, S'_B)``.

    At the decode level ``ℓ*`` with ``2^{ℓ*} ≈ EMD_k / k`` the repair
    touches at most ``2 k · diff_margin`` points, each off by at most a
    cell diameter ``d · 2^{ℓ*}``; the untouched points contribute at most
    ``EMD_k`` (they stayed matched inside cells):

    ``EMD ≤ EMD_k + 2 · k · diff_margin · d · 2^{ℓ*}
         ≈ (1 + 4 · diff_margin · d) · EMD_k``.
    """
    if dimension < 1:
        raise ConfigError(f"dimension must be >= 1, got {dimension}")
    if emd_k_value <= 0:
        return 0.0
    level = target_level(emd_k_value, k)
    cell_diameter = dimension * float(1 << level)
    return emd_k_value + 2 * k * diff_margin * cell_diameter


def approximation_factor(dimension: int, diff_margin: float = 3.0) -> float:
    """The headline ``O(d)`` factor with its analysed constant."""
    if dimension < 1:
        raise ConfigError(f"dimension must be >= 1, got {dimension}")
    return 1 + 4 * diff_margin * dimension
