"""Rateless reconciliation: stream sketch increments until decode succeeds.

The one-round protocol ships every grid level; the adaptive variant pays a
strata-estimation round plus conservatively sized sketches.  This variant
pays neither: Alice streams *increments* of IBLT cells — segment ``j`` is a
complete sketch of her keyspace under an independently salted hash family,
with a geometric cell-growth schedule — and Bob feeds each increment into a
resumable :class:`~repro.iblt.decode.PeelState`, replying STOP the instant
the union of everything received peels to empty.  No difference estimate is
ever exchanged, and the bytes on the wire track the *true* difference size:
a sync with ``d`` differing keys stops after ``O(d)`` cells no matter how
large the sets are.

The construction follows the rate-compatible / rateless IBLT line of work
("A rate-compatible solution to the set reconciliation problem",
arXiv:2211.05472; "Practical Rateless Set Reconciliation" and its
space-time-robustness successors, arXiv:2402.02668 / arXiv:2404.09607):
every difference key occupies ``q`` cells in *every* segment, so the
concatenation of segments received so far is always a valid (denser) code
for the same difference, and peeling can resume across segment boundaries
— exactly the :class:`~repro.iblt.decode.PeelState` contract.  A
configurable increment cap turns a difference too large for the schedule
into a typed :class:`~repro.errors.ReconciliationFailure` instead of an
unbounded stream.

Robustness comes from reconciling at a single fixed grid level (default:
the finest), like one shard of the one-round hierarchy; the repair planner
then treats recovered cell keys exactly as the other variants do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler, ReconcileResult
from repro.core.repair import apply_repair, plan_repair
from repro.errors import ConfigError, SerializationError
from repro.iblt.hashing import hash_with_salt
from repro.iblt.table import IBLT, IBLTConfig
from repro.net.bits import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.transcript import Transcript

INCREMENT_MAGIC = 0xC7
ACK_MAGIC = 0xC8
VERSION = 1

#: Salt mixed into per-segment IBLT seeds (public coins, like 0x1EB1 for
#: the hierarchy levels): segments must hash independently or a stopping
#: set in one segment would repeat in every other.
_SEGMENT_SALT = 0x7A7E1E55


@dataclass(frozen=True)
class RatelessConfig:
    """Tuning knobs of the rateless variant (shared via public coins).

    Attributes
    ----------
    level:
        Grid level the stream reconciles at; 0 (the default) is the finest
        — exact repair, maximal robustness to near-duplicates.
    initial_cells:
        Cells in segment 0 (rounded up to a multiple of ``q``); the
        cheapest possible sync costs roughly this many cells.
    growth:
        Geometric factor between consecutive segment sizes.  Doubling
        keeps the total cells shipped within a constant factor of the
        final table size, i.e. of the true difference.
    max_increments:
        Hard cap on streamed segments; hitting it raises a typed
        :class:`~repro.errors.ReconciliationFailure` on both ends instead
        of streaming forever.
    """

    level: int = 0
    initial_cells: int = 32
    growth: float = 2.0
    max_increments: int = 16

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ConfigError(f"level must be >= 0, got {self.level}")
        if self.initial_cells < 4:
            raise ConfigError(
                f"initial_cells must be >= 4, got {self.initial_cells}"
            )
        if not 1.0 < self.growth <= 16.0:
            raise ConfigError(
                f"growth must be in (1, 16], got {self.growth}"
            )
        if self.max_increments < 1:
            raise ConfigError(
                f"max_increments must be >= 1, got {self.max_increments}"
            )


class RatelessReconciler:
    """Shared state of both rateless endpoints: the grid, the segment
    schedule, and (optionally) Alice's cached increments.

    ``reuse_alice_state=True`` opts into caching Alice's encoded increment
    payloads across sessions — safe only when every call passes the *same*
    point multiset (the serve layer's case); the cache is keyed on the
    points object's identity and resets if a different object shows up.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        rateless: RatelessConfig | None = None,
        *,
        reuse_alice_state: bool = False,
    ):
        self.config = config
        self.rateless = rateless or RatelessConfig()
        self._one_round = HierarchicalReconciler(config)
        self.grid = self._one_round.grid
        if self.rateless.level > config.max_level:
            raise ConfigError(
                f"rateless level {self.rateless.level} exceeds the grid's "
                f"max level {config.max_level}"
            )
        self._reuse = reuse_alice_state
        # Keys are a deterministic function of the points; one identity-
        # keyed slot serves Alice's repeated increment builds.
        self._keys_points: object | None = None
        self._keys: list[int] | None = None
        self._increments: list[bytes] = []

    # ----------------------------------------------------------- schedule

    def segment_cells(self, index: int) -> int:
        """Cells in segment ``index`` (geometric, multiple-of-``q``)."""
        raw = self.rateless.initial_cells * self.rateless.growth ** index
        q = self.config.q
        cells = max(q, math.ceil(raw))
        return -(-cells // q) * q

    def segment_config(self, index: int) -> IBLTConfig:
        """Public-coin shape of segment ``index`` (independent seed)."""
        return IBLTConfig(
            cells=self.segment_cells(index),
            q=self.config.q,
            key_bits=self.grid.key_bits(self.rateless.level),
            checksum_bits=self.config.checksum_bits,
            seed=hash_with_salt(index, self.config.seed ^ _SEGMENT_SALT),
        )

    def keys_for(self, points) -> list[int]:
        """The reconciled keyspace: grid cell keys at the fixed level."""
        return self.grid.keys_for(points, self.rateless.level)

    def segment_table(self, keys, index: int) -> IBLT:
        table = IBLT(self.segment_config(index), backend=self.config.backend)
        table.insert_many(keys)
        return table

    # ------------------------------------------------------------- wire

    def build_increment(self, keys, n_points: int, index: int) -> bytes:
        writer = BitWriter()
        writer.write_uint(INCREMENT_MAGIC, 8)
        writer.write_uint(VERSION, 8)
        writer.write_varint(index)
        writer.write_varint(n_points)
        self.segment_table(keys, index).write_to(writer)
        return writer.getvalue()

    def alice_increment(self, alice_points, index: int) -> bytes:
        """Alice's ``index``-th increment (cached under state reuse)."""
        if self._keys_points is not alice_points:
            self._keys_points = alice_points
            self._keys = self.keys_for(alice_points)
            self._increments = []
        if not self._reuse:
            return self.build_increment(self._keys, len(alice_points), index)
        while len(self._increments) <= index:
            self._increments.append(
                self.build_increment(
                    self._keys, len(alice_points), len(self._increments)
                )
            )
        return self._increments[index]

    def warm_alice(self, alice_points, increments: int = 1) -> None:
        """Prebuild Alice's keys and her first ``increments`` encoded
        increment payloads for ``alice_points``.

        Only meaningful with ``reuse_alice_state=True`` (no-op otherwise).
        The serve layer calls this once before forking worker processes so
        the hot opening increments are inherited copy-on-write; later
        increments are still encoded (and cached) on demand.
        """
        if not self._reuse or increments < 1:
            return
        last = min(increments, self.rateless.max_increments) - 1
        self.alice_increment(alice_points, last)

    def read_increment(self, payload: bytes, expected_index: int):
        """Parse one increment; returns ``(n_alice, segment_table)``."""
        reader = BitReader(payload)
        if reader.read_uint(8) != INCREMENT_MAGIC:
            raise SerializationError("bad magic byte; not a rateless increment")
        if reader.read_uint(8) != VERSION:
            raise SerializationError("unsupported rateless increment version")
        index = reader.read_varint()
        if index != expected_index:
            raise SerializationError(
                f"rateless increment out of order: got segment {index}, "
                f"expected {expected_index}"
            )
        n_alice = reader.read_varint()
        table = IBLT.read_from(
            reader, self.segment_config(index), backend=self.config.backend
        )
        reader.expect_end()
        return n_alice, table

    # ------------------------------------------------------------- repair

    def bob_repair(
        self, bob_points, alice_keys, bob_keys, strategy: str = "occurrence"
    ) -> ReconcileResult:
        """Plan and apply the repair once the stream has decoded."""
        level = self.rateless.level
        plan = plan_repair(
            bob_points, alice_keys, bob_keys, self.grid, level, strategy
        )
        return ReconcileResult(
            repaired=apply_repair(bob_points, plan),
            level=level,
            alice_surplus=len(alice_keys),
            bob_surplus=len(bob_keys),
            plan=plan,
            levels_probed=[level],
        )


def ack_bytes(stop: bool) -> bytes:
    """Bob's per-increment verdict: CONTINUE (0) or STOP (1)."""
    writer = BitWriter()
    writer.write_uint(ACK_MAGIC, 8)
    writer.write_uint(VERSION, 8)
    writer.write_uint(1 if stop else 0, 8)
    return writer.getvalue()


def parse_ack(payload: bytes) -> bool:
    """True when the ack says STOP (decode succeeded on Bob's side)."""
    reader = BitReader(payload)
    if reader.read_uint(8) != ACK_MAGIC:
        raise SerializationError("bad magic byte; not a rateless ack")
    if reader.read_uint(8) != VERSION:
        raise SerializationError("unsupported rateless ack version")
    status = reader.read_uint(8)
    if status not in (0, 1):
        raise SerializationError(f"unknown rateless ack status {status}")
    reader.expect_end()
    return status == 1


def reconcile_rateless(
    alice_points,
    bob_points,
    config: ProtocolConfig,
    rateless: RatelessConfig | None = None,
    channel: SimulatedChannel | None = None,
    strategy: str = "occurrence",
) -> ReconcileResult:
    """Run the full rateless exchange over a (simulated) channel.

    A thin driver pumping :class:`RatelessAliceSession` /
    :class:`RatelessBobSession` (:mod:`repro.session`) over the channel.
    A caller-supplied channel is left open for reuse; the transcript
    covers this run's messages only.
    """
    # Lazy import: repro.session layers above this module (see reconcile()).
    from repro.session import RatelessAliceSession, RatelessBobSession, pump

    owns_channel = channel is None
    channel = channel if channel is not None else SimulatedChannel()
    first_message = len(channel.messages)
    reconciler = RatelessReconciler(config, rateless)  # shared: one grid build
    alice = RatelessAliceSession(
        config, alice_points, rateless, reconciler=reconciler
    )
    bob = RatelessBobSession(
        config, bob_points, rateless, strategy=strategy, reconciler=reconciler
    )
    _, result = pump(alice, bob, channel)
    if owns_channel:
        channel.close()
    result.transcript = Transcript.from_messages(channel.messages[first_message:])
    return result
