"""Incrementally maintained hierarchy sketches.

A synchronising replica does not want to re-hash its whole dataset every
time it sends a sketch.  Because the protocol's keys are *(cell id,
occurrence rank)* pairs — and a cell holding ``c`` points always owns
exactly the keys ``(cell, 0) .. (cell, c-1)`` regardless of which point has
which rank — the sketch is a pure function of the per-cell *counts*:

* inserting a point into a cell of size ``c`` adds exactly the key
  ``(cell, c)``;
* deleting any point from that cell removes exactly the key
  ``(cell, c-1)``.

So maintaining the full hierarchy costs ``O(log Δ)`` IBLT updates per point
update, and the produced message is bit-identical to a from-scratch
:meth:`~repro.core.protocol.HierarchicalReconciler.encode` of the same
multiset.

Bulk loads take a batch shortcut: when :meth:`IncrementalSketch.insert_all`
is called on an empty sketch, the whole point set goes through the grid's
single-pass key builder and each level's backend batch insert — the same
vectorized path a from-scratch encode uses — before switching to per-point
maintenance.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.sketch import HierarchySketch, LevelSketch, level_iblt_config
from repro.emd.metrics import Point
from repro.errors import CapacityExceeded, ReconciliationFailure
from repro.iblt.decode import DecodeResult, decode
from repro.iblt.table import IBLT


class IncrementalSketch:
    """Alice-side sketch state supporting point insert/delete.

    >>> config = ProtocolConfig(delta=256, dimension=1, k=2, seed=3)
    >>> sketch = IncrementalSketch(config)
    >>> sketch.insert((10,))
    >>> sketch.insert((200,))
    >>> sketch.remove((10,))
    >>> sketch.n_points
    1
    """

    def __init__(self, config: ProtocolConfig):
        self.config = config
        shift = None if config.random_shift else (0,) * config.dimension
        self.grid = ShiftedGridHierarchy(
            config.delta, config.dimension, config.seed, config.occupancy_bits,
            shift=shift,
        )
        self.n_points = 0
        self._tables: dict[int, IBLT] = {
            level: IBLT(
                level_iblt_config(config, self.grid, level), backend=config.backend
            )
            for level in config.sketch_levels
        }
        # Per-level point counts keyed by the *packed* integer cell id (the
        # key's cell field) — cheaper than coordinate tuples on hot paths.
        self._cell_counts: dict[int, dict[int, int]] = {
            level: {} for level in config.sketch_levels
        }

    def plan_insert(
        self, point: Point, pending: dict[tuple[int, int], int] | None = None
    ) -> list[tuple[int, int]]:
        """The key deltas inserting ``point`` would apply: one per level.

        Validates every level's occupancy before committing to anything,
        so a ``CapacityExceeded`` plans nothing.  ``pending`` is a
        ``(level, cell_id) -> count delta`` overlay for batch planning:
        ranks are assigned as if the overlay's earlier (still unapplied)
        deltas had landed, and the overlay is advanced in place.  The
        durable store uses this to frame a whole batch into one WAL
        record *before* mutating the sketch.
        """
        occ_bits = self.grid.occupancy_bits
        occ_limit = 1 << occ_bits
        cell_ids = {
            level: self.grid.cell_id(point, level) for level in self._tables
        }
        ranks: dict[int, int] = {}
        for level, cell_id in cell_ids.items():
            rank = self._cell_counts[level].get(cell_id, 0)
            if pending is not None:
                rank += pending.get((level, cell_id), 0)
            if rank >= occ_limit:
                raise CapacityExceeded(
                    f"cell {self.grid.cell(point, level)} at level {level} "
                    f"exceeds the {occ_bits}-bit occupancy field"
                )
            ranks[level] = rank
        if pending is not None:
            for level, cell_id in cell_ids.items():
                pending[(level, cell_id)] = pending.get((level, cell_id), 0) + 1
        return [
            (level, (cell_id << occ_bits) | ranks[level])
            for level, cell_id in cell_ids.items()
        ]

    def plan_remove(
        self, point: Point, pending: dict[tuple[int, int], int] | None = None
    ) -> list[tuple[int, int]]:
        """The key deltas removing one point of ``point``'s cells applies.

        Same batch-overlay contract as :meth:`plan_insert`; a failed plan
        (empty cell) advances nothing.
        """
        cell_ids = {
            level: self.grid.cell_id(point, level) for level in self._tables
        }
        ranks: dict[int, int] = {}
        for level, cell_id in cell_ids.items():
            count = self._cell_counts[level].get(cell_id, 0)
            if pending is not None:
                count += pending.get((level, cell_id), 0)
            if count <= 0:
                raise ReconciliationFailure(
                    f"remove of {point}: cell {self.grid.cell(point, level)} "
                    f"at level {level} is empty"
                )
            ranks[level] = count - 1
        if pending is not None:
            for level, cell_id in cell_ids.items():
                pending[(level, cell_id)] = pending.get((level, cell_id), 0) - 1
        occ_bits = self.grid.occupancy_bits
        return [
            (level, (cell_id << occ_bits) | ranks[level])
            for level, cell_id in cell_ids.items()
        ]

    def apply_delta(self, level: int, key: int, sign: int) -> None:
        """Apply one planned key delta (``sign`` is +1 insert / -1 delete).

        The inverse of planning: touches exactly one cell of one level's
        table and maintains the per-cell count from the key's rank field
        (an insert of rank ``r`` means the cell now holds ``r + 1``
        points; a delete of rank ``r`` means it holds ``r``).  Point
        accounting rides on the finest level — every per-point plan
        carries exactly one key there — so replaying a WAL's deltas in
        log order rebuilds ``n_points`` too.
        """
        occ_bits = self.grid.occupancy_bits
        cell_id = key >> occ_bits
        rank = key & ((1 << occ_bits) - 1)
        counts = self._cell_counts[level]
        if sign > 0:
            self._tables[level].insert(key)
            counts[cell_id] = rank + 1
        else:
            self._tables[level].delete(key)
            if rank == 0:
                counts.pop(cell_id, None)
            else:
                counts[cell_id] = rank
        if level == self.config.sketch_levels[0]:
            self.n_points += 1 if sign > 0 else -1

    def insert(self, point: Point) -> None:
        """Add one point: one key per level.

        Validates every level's occupancy before touching any table, so a
        ``CapacityExceeded`` leaves the sketch unchanged.
        """
        for level, key in self.plan_insert(point):
            self.apply_delta(level, key, 1)

    def remove(self, point: Point) -> None:
        """Remove one point of the multiset (any point of its cells).

        Occurrence keys carry no identity, so removing *some* point from
        each of the point's cells is exactly removing this point from the
        sketch's perspective.
        """
        for level, key in self.plan_remove(point):
            self.apply_delta(level, key, -1)

    def insert_all(self, points) -> None:
        """Insert every point of an iterable.

        An initial load into an empty sketch runs as one batch — a single
        grid pass plus one backend batch insert per level; later calls fall
        back to per-point maintenance.
        """
        points = list(points)
        if self.n_points == 0 and points:
            self._bulk_load(points)
            return
        for point in points:
            self.insert(point)

    def _bulk_load(self, points: list[Point]) -> None:
        keys_by_level = self.grid.level_keys(points, tuple(self._tables))
        occ_bits = self.grid.occupancy_bits
        for level, table in self._tables.items():
            keys = keys_by_level[level]
            table.insert_many(keys)
            counts: dict[int, int] = {}
            for key in keys:
                cell_id = key >> occ_bits
                counts[cell_id] = counts.get(cell_id, 0) + 1
            self._cell_counts[level] = counts
        self.n_points = len(points)

    def level_cell_counts(self, level: int) -> dict[int, int]:
        """One level's live per-cell point counts (read-only view).

        The snapshot writer persists these alongside the cells: they are
        *not* derivable from the IBLT (whose cells are sums over hashed
        rows), yet per-point maintenance needs them to assign ranks.
        """
        return self._cell_counts[level]

    def restore_level(
        self, level, counts, key_sums, check_sums, cell_counts: dict[int, int]
    ) -> None:
        """Load one level's table rows and cell counts from a snapshot.

        Only meaningful on a freshly constructed (empty) sketch; the
        columns must come from a table of this level's exact config, as
        produced by the matching dump.  ``n_points`` is restored
        separately via :meth:`restore_n_points`.
        """
        self._tables[level]._backend.load_rows(counts, key_sums, check_sums)
        self._cell_counts[level] = dict(cell_counts)

    def restore_n_points(self, n_points: int) -> None:
        """Set the point count to a snapshot's recorded value."""
        self.n_points = n_points

    def level_sketches(self) -> list[LevelSketch]:
        """Live per-level tables, finest first.

        The tables are this sketch's working state, not copies — callers
        (e.g. the sharded wire codec) must treat them as read-only.
        """
        return [
            LevelSketch(level, self._tables[level])
            for level in self.config.sketch_levels
        ]

    def decode_difference(
        self, payload: bytes, *, probe: str = "binary"
    ) -> tuple[int, DecodeResult]:
        """Decode a peer's one-round message against the *live* tables.

        The receiving replica subtracts the incoming sketch from its
        incrementally maintained level tables — no re-encode of its own
        point set — and peels the finest decodable level with the
        config-selected strategy (see :mod:`repro.iblt.decode`).  Returns
        ``(level, result)``; the recovered ``alice_keys`` / ``bob_keys``
        are the packed ``(cell, occurrence)`` key difference at that level,
        which callers can feed to :func:`repro.core.repair.plan_repair` or
        use directly as a drift diagnostic.

        Subtraction is non-destructive, so the sketch keeps serving
        inserts/removes afterwards.

        Raises
        ------
        ReconciliationFailure
            If no transmitted level peels, or the payload carries a level
            this sketch does not maintain.
        """
        # Late import: protocol imports config/sketch, not this module, so
        # there is no cycle — but keep it local to mirror that layering.
        from repro.core.protocol import HierarchicalReconciler

        if probe not in ("binary", "linear"):
            raise ReconciliationFailure(f"unknown probe mode {probe!r}")
        sketch = HierarchySketch.from_bytes(payload, self.config, self.grid)
        by_level = {level_sketch.level: level_sketch for level_sketch in sketch.levels}
        missing = sorted(set(by_level) - set(self._tables))
        if missing:
            raise ReconciliationFailure(
                f"incoming sketch carries levels {missing} this incremental "
                "sketch does not maintain (configs disagree?)"
            )
        levels = sorted(by_level)
        if not levels:
            raise ReconciliationFailure("incoming sketch carries no levels")
        outcomes: dict[int, DecodeResult] = {}

        def attempt(level: int) -> DecodeResult:
            if level not in outcomes:
                diff = by_level[level].table.subtract(self._tables[level])
                result = decode(
                    diff,
                    max_items=self.config.decode_item_limit,
                    strategy=self.config.decode_strategy,
                )
                if result.success and not HierarchicalReconciler._balanced(
                    result, sketch.n_points, self.n_points
                ):
                    result.success = False  # checksum-evading false decode
                outcomes[level] = result
            return outcomes[level]

        chosen = HierarchicalReconciler._finest_decodable(levels, attempt, probe)
        if chosen is None:
            raise ReconciliationFailure(
                "no level of the incoming sketch decoded against the live "
                f"tables (difference exceeds budget k={self.config.k}?)"
            )
        return chosen, outcomes[chosen]

    def encode(self) -> bytes:
        """The current one-round message (bit-identical to a fresh encode)."""
        sketch = HierarchySketch(
            n_points=self.n_points,
            levels=[
                LevelSketch(level, self._tables[level].copy())
                for level in self.config.sketch_levels
            ],
        )
        return sketch.to_bytes()
