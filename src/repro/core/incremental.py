"""Incrementally maintained hierarchy sketches.

A synchronising replica does not want to re-hash its whole dataset every
time it sends a sketch.  Because the protocol's keys are *(cell id,
occurrence rank)* pairs — and a cell holding ``c`` points always owns
exactly the keys ``(cell, 0) .. (cell, c-1)`` regardless of which point has
which rank — the sketch is a pure function of the per-cell *counts*:

* inserting a point into a cell of size ``c`` adds exactly the key
  ``(cell, c)``;
* deleting any point from that cell removes exactly the key
  ``(cell, c-1)``.

So maintaining the full hierarchy costs ``O(log Δ)`` IBLT updates per point
update, and the produced message is bit-identical to a from-scratch
:meth:`~repro.core.protocol.HierarchicalReconciler.encode` of the same
multiset.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.sketch import HierarchySketch, LevelSketch, level_iblt_config
from repro.emd.metrics import Point
from repro.errors import CapacityExceeded, ReconciliationFailure
from repro.iblt.table import IBLT


class IncrementalSketch:
    """Alice-side sketch state supporting point insert/delete.

    >>> config = ProtocolConfig(delta=256, dimension=1, k=2, seed=3)
    >>> sketch = IncrementalSketch(config)
    >>> sketch.insert((10,))
    >>> sketch.insert((200,))
    >>> sketch.remove((10,))
    >>> sketch.n_points
    1
    """

    def __init__(self, config: ProtocolConfig):
        self.config = config
        shift = None if config.random_shift else (0,) * config.dimension
        self.grid = ShiftedGridHierarchy(
            config.delta, config.dimension, config.seed, config.occupancy_bits,
            shift=shift,
        )
        self.n_points = 0
        self._tables: dict[int, IBLT] = {
            level: IBLT(level_iblt_config(config, self.grid, level))
            for level in config.sketch_levels
        }
        self._cell_counts: dict[int, dict[tuple[int, ...], int]] = {
            level: {} for level in config.sketch_levels
        }

    def insert(self, point: Point) -> None:
        """Add one point: one key per level."""
        occ_limit = 1 << self.grid.occupancy_bits
        for level, table in self._tables.items():
            cell = self.grid.cell(point, level)
            counts = self._cell_counts[level]
            rank = counts.get(cell, 0)
            if rank >= occ_limit:
                raise CapacityExceeded(
                    f"cell {cell} at level {level} exceeds the "
                    f"{self.grid.occupancy_bits}-bit occupancy field"
                )
            table.insert(self.grid.pack_key(cell, rank, level))
            counts[cell] = rank + 1
        self.n_points += 1

    def remove(self, point: Point) -> None:
        """Remove one point of the multiset (any point of its cells).

        Occurrence keys carry no identity, so removing *some* point from
        each of the point's cells is exactly removing this point from the
        sketch's perspective.
        """
        for level in self._tables:
            cell = self.grid.cell(point, level)
            if self._cell_counts[level].get(cell, 0) <= 0:
                raise ReconciliationFailure(
                    f"remove of {point}: cell {cell} at level {level} is empty"
                )
        for level, table in self._tables.items():
            cell = self.grid.cell(point, level)
            counts = self._cell_counts[level]
            rank = counts[cell] - 1
            table.delete(self.grid.pack_key(cell, rank, level))
            if rank == 0:
                del counts[cell]
            else:
                counts[cell] = rank
        self.n_points -= 1

    def insert_all(self, points) -> None:
        """Insert every point of an iterable."""
        for point in points:
            self.insert(point)

    def encode(self) -> bytes:
        """The current one-round message (bit-identical to a fresh encode)."""
        sketch = HierarchySketch(
            n_points=self.n_points,
            levels=[
                LevelSketch(level, self._tables[level].copy())
                for level in self.config.sketch_levels
            ],
        )
        return sketch.to_bytes()
