"""Incrementally maintained hierarchy sketches.

A synchronising replica does not want to re-hash its whole dataset every
time it sends a sketch.  Because the protocol's keys are *(cell id,
occurrence rank)* pairs — and a cell holding ``c`` points always owns
exactly the keys ``(cell, 0) .. (cell, c-1)`` regardless of which point has
which rank — the sketch is a pure function of the per-cell *counts*:

* inserting a point into a cell of size ``c`` adds exactly the key
  ``(cell, c)``;
* deleting any point from that cell removes exactly the key
  ``(cell, c-1)``.

So maintaining the full hierarchy costs ``O(log Δ)`` IBLT updates per point
update, and the produced message is bit-identical to a from-scratch
:meth:`~repro.core.protocol.HierarchicalReconciler.encode` of the same
multiset.

Bulk loads take a batch shortcut: when :meth:`IncrementalSketch.insert_all`
is called on an empty sketch, the whole point set goes through the grid's
single-pass key builder and each level's backend batch insert — the same
vectorized path a from-scratch encode uses — before switching to per-point
maintenance.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.sketch import HierarchySketch, LevelSketch, level_iblt_config
from repro.emd.metrics import Point
from repro.errors import CapacityExceeded, ReconciliationFailure
from repro.iblt.decode import DecodeResult, decode
from repro.iblt.table import IBLT


class IncrementalSketch:
    """Alice-side sketch state supporting point insert/delete.

    >>> config = ProtocolConfig(delta=256, dimension=1, k=2, seed=3)
    >>> sketch = IncrementalSketch(config)
    >>> sketch.insert((10,))
    >>> sketch.insert((200,))
    >>> sketch.remove((10,))
    >>> sketch.n_points
    1
    """

    def __init__(self, config: ProtocolConfig):
        self.config = config
        shift = None if config.random_shift else (0,) * config.dimension
        self.grid = ShiftedGridHierarchy(
            config.delta, config.dimension, config.seed, config.occupancy_bits,
            shift=shift,
        )
        self.n_points = 0
        self._tables: dict[int, IBLT] = {
            level: IBLT(
                level_iblt_config(config, self.grid, level), backend=config.backend
            )
            for level in config.sketch_levels
        }
        # Per-level point counts keyed by the *packed* integer cell id (the
        # key's cell field) — cheaper than coordinate tuples on hot paths.
        self._cell_counts: dict[int, dict[int, int]] = {
            level: {} for level in config.sketch_levels
        }

    def insert(self, point: Point) -> None:
        """Add one point: one key per level.

        Validates every level's occupancy before touching any table, so a
        ``CapacityExceeded`` leaves the sketch unchanged.
        """
        occ_bits = self.grid.occupancy_bits
        occ_limit = 1 << occ_bits
        cell_ids = {
            level: self.grid.cell_id(point, level) for level in self._tables
        }
        for level, cell_id in cell_ids.items():
            if self._cell_counts[level].get(cell_id, 0) >= occ_limit:
                raise CapacityExceeded(
                    f"cell {self.grid.cell(point, level)} at level {level} "
                    f"exceeds the {occ_bits}-bit occupancy field"
                )
        for level, table in self._tables.items():
            cell_id = cell_ids[level]
            counts = self._cell_counts[level]
            rank = counts.get(cell_id, 0)
            table.insert((cell_id << occ_bits) | rank)
            counts[cell_id] = rank + 1
        self.n_points += 1

    def remove(self, point: Point) -> None:
        """Remove one point of the multiset (any point of its cells).

        Occurrence keys carry no identity, so removing *some* point from
        each of the point's cells is exactly removing this point from the
        sketch's perspective.
        """
        occ_bits = self.grid.occupancy_bits
        cell_ids = {
            level: self.grid.cell_id(point, level) for level in self._tables
        }
        for level, cell_id in cell_ids.items():
            if self._cell_counts[level].get(cell_id, 0) <= 0:
                raise ReconciliationFailure(
                    f"remove of {point}: cell {self.grid.cell(point, level)} "
                    f"at level {level} is empty"
                )
        for level, table in self._tables.items():
            cell_id = cell_ids[level]
            counts = self._cell_counts[level]
            rank = counts[cell_id] - 1
            table.delete((cell_id << occ_bits) | rank)
            if rank == 0:
                del counts[cell_id]
            else:
                counts[cell_id] = rank
        self.n_points -= 1

    def insert_all(self, points) -> None:
        """Insert every point of an iterable.

        An initial load into an empty sketch runs as one batch — a single
        grid pass plus one backend batch insert per level; later calls fall
        back to per-point maintenance.
        """
        points = list(points)
        if self.n_points == 0 and points:
            self._bulk_load(points)
            return
        for point in points:
            self.insert(point)

    def _bulk_load(self, points: list[Point]) -> None:
        keys_by_level = self.grid.level_keys(points, tuple(self._tables))
        occ_bits = self.grid.occupancy_bits
        for level, table in self._tables.items():
            keys = keys_by_level[level]
            table.insert_many(keys)
            counts: dict[int, int] = {}
            for key in keys:
                cell_id = key >> occ_bits
                counts[cell_id] = counts.get(cell_id, 0) + 1
            self._cell_counts[level] = counts
        self.n_points = len(points)

    def level_sketches(self) -> list[LevelSketch]:
        """Live per-level tables, finest first.

        The tables are this sketch's working state, not copies — callers
        (e.g. the sharded wire codec) must treat them as read-only.
        """
        return [
            LevelSketch(level, self._tables[level])
            for level in self.config.sketch_levels
        ]

    def decode_difference(
        self, payload: bytes, *, probe: str = "binary"
    ) -> tuple[int, DecodeResult]:
        """Decode a peer's one-round message against the *live* tables.

        The receiving replica subtracts the incoming sketch from its
        incrementally maintained level tables — no re-encode of its own
        point set — and peels the finest decodable level with the
        config-selected strategy (see :mod:`repro.iblt.decode`).  Returns
        ``(level, result)``; the recovered ``alice_keys`` / ``bob_keys``
        are the packed ``(cell, occurrence)`` key difference at that level,
        which callers can feed to :func:`repro.core.repair.plan_repair` or
        use directly as a drift diagnostic.

        Subtraction is non-destructive, so the sketch keeps serving
        inserts/removes afterwards.

        Raises
        ------
        ReconciliationFailure
            If no transmitted level peels, or the payload carries a level
            this sketch does not maintain.
        """
        # Late import: protocol imports config/sketch, not this module, so
        # there is no cycle — but keep it local to mirror that layering.
        from repro.core.protocol import HierarchicalReconciler

        if probe not in ("binary", "linear"):
            raise ReconciliationFailure(f"unknown probe mode {probe!r}")
        sketch = HierarchySketch.from_bytes(payload, self.config, self.grid)
        by_level = {level_sketch.level: level_sketch for level_sketch in sketch.levels}
        missing = sorted(set(by_level) - set(self._tables))
        if missing:
            raise ReconciliationFailure(
                f"incoming sketch carries levels {missing} this incremental "
                "sketch does not maintain (configs disagree?)"
            )
        levels = sorted(by_level)
        if not levels:
            raise ReconciliationFailure("incoming sketch carries no levels")
        outcomes: dict[int, DecodeResult] = {}

        def attempt(level: int) -> DecodeResult:
            if level not in outcomes:
                diff = by_level[level].table.subtract(self._tables[level])
                result = decode(
                    diff,
                    max_items=self.config.decode_item_limit,
                    strategy=self.config.decode_strategy,
                )
                if result.success and not HierarchicalReconciler._balanced(
                    result, sketch.n_points, self.n_points
                ):
                    result.success = False  # checksum-evading false decode
                outcomes[level] = result
            return outcomes[level]

        chosen = HierarchicalReconciler._finest_decodable(levels, attempt, probe)
        if chosen is None:
            raise ReconciliationFailure(
                "no level of the incoming sketch decoded against the live "
                f"tables (difference exceeds budget k={self.config.k}?)"
            )
        return chosen, outcomes[chosen]

    def encode(self) -> bytes:
        """The current one-round message (bit-identical to a fresh encode)."""
        sketch = HierarchySketch(
            n_points=self.n_points,
            levels=[
                LevelSketch(level, self._tables[level].copy())
                for level in self.config.sketch_levels
            ],
        )
        return sketch.to_bytes()
