"""The randomly offset quadtree: a hierarchy of randomly shifted grids.

Level ``ℓ`` partitions ``[delta]^d`` into axis-aligned cubes of side
``2^ℓ``, offset by a random shift ``o`` drawn once from the public coins.
The two facts the protocol's analysis rests on (ℓ1 metric):

* **split probability** — points at distance ``t`` land in different
  level-ℓ cells with probability at most ``t / 2^ℓ`` (each coordinate
  crosses a boundary with probability ``|Δ_i| / 2^ℓ``; union bound);
* **cell diameter** — any two points in one level-ℓ cell are within
  ``d · 2^ℓ`` of each other, and within ``d · 2^ℓ / 2`` of the cell centre
  (+1 rounding slack per coordinate).

Keys: a point's identity inside a level's IBLT is its *cell id* plus an
*occurrence index* (this party's rank among its own points in that cell).
Both are packed bit-exactly into one integer, so a decoded key is
self-describing — the receiver recovers the cell (hence the centre point)
without any value field.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

try:  # numpy accelerates the batch key pass; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from repro.emd.metrics import Point
from repro.errors import CapacityExceeded, ConfigError

Cell = tuple[int, ...]


class ShiftedGridHierarchy:
    """All grid levels for one ``(delta, dimension, seed)`` triple.

    Both parties construct this identically from the shared seed; the random
    shift is the protocol's only geometric randomness.
    """

    def __init__(self, delta: int, dimension: int, seed: int = 0,
                 occupancy_bits: int = 20, shift: tuple[int, ...] | None = None):
        if delta < 2:
            raise ConfigError(f"delta must be >= 2, got {delta}")
        if dimension < 1:
            raise ConfigError(f"dimension must be >= 1, got {dimension}")
        if not 1 <= occupancy_bits <= 40:
            raise ConfigError(
                f"occupancy_bits must be in [1, 40], got {occupancy_bits}"
            )
        self.delta = delta
        self.dimension = dimension
        self.seed = seed
        self.occupancy_bits = occupancy_bits
        self.max_level = max(1, (delta - 1).bit_length())
        if shift is None:
            rng = random.Random(seed ^ 0x5311F7ED)
            shift = tuple(
                rng.randrange(0, 1 << self.max_level) for _ in range(dimension)
            )
        if len(shift) != dimension:
            raise ConfigError(
                f"shift has dimension {len(shift)}, grid expects {dimension}"
            )
        for offset in shift:
            if not 0 <= offset < (1 << self.max_level):
                raise ConfigError(
                    f"shift component {offset} outside [0, 2^{self.max_level})"
                )
        # shift=(0,...,0) degrades to a deterministic (unshifted) grid —
        # exactly the ablation the random-offset analysis warns about.
        self.shift = tuple(shift)

    # ------------------------------------------------------------- geometry

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.max_level:
            raise ConfigError(
                f"level {level} outside [0, {self.max_level}]"
            )

    def _check_point(self, point: Point) -> None:
        if len(point) != self.dimension:
            raise ConfigError(
                f"point has dimension {len(point)}, grid expects {self.dimension}"
            )
        for coordinate in point:
            if not 0 <= coordinate < self.delta:
                raise ConfigError(
                    f"coordinate {coordinate} outside [0, {self.delta})"
                )

    def cell(self, point: Point, level: int) -> Cell:
        """Cell id of ``point`` at ``level`` (shifted, floored)."""
        self._check_level(level)
        self._check_point(point)
        return tuple(
            (coordinate + offset) >> level
            for coordinate, offset in zip(point, self.shift)
        )

    def cell_id(self, point: Point, level: int) -> int:
        """Packed integer form of :meth:`cell` (the key's cell field).

        Equals ``pack_key(self.cell(point, level), 0, level) >>
        occupancy_bits``; incremental sketches index their per-cell counts
        by it to avoid building coordinate tuples on the hot path.
        """
        self._check_level(level)
        self._check_point(point)
        bits = self.coord_bits(level)
        packed = 0
        for coordinate, offset in zip(point, self.shift):
            packed = (packed << bits) | ((coordinate + offset) >> level)
        return packed

    def center(self, cell: Cell, level: int) -> Point:
        """Centre of a cell, clamped back onto the grid.

        At level 0 cells are single points and the centre is exact, so a
        difference recovered at level 0 reproduces Alice's point verbatim.
        """
        self._check_level(level)
        if len(cell) != self.dimension:
            raise ConfigError(
                f"cell has dimension {len(cell)}, grid expects {self.dimension}"
            )
        half = (1 << level) >> 1
        coordinates = []
        for index, offset in zip(cell, self.shift):
            raw = (index << level) + half - offset
            coordinates.append(max(0, min(self.delta - 1, raw)))
        return tuple(coordinates)

    def coord_bits(self, level: int) -> int:
        """Bits needed for one cell coordinate at ``level``.

        Shifted coordinates live in ``[0, delta - 1 + 2^max_level]``, so a
        level-ℓ cell index needs ``max_level + 1 - ℓ`` bits.
        """
        self._check_level(level)
        return self.max_level + 1 - level

    # ------------------------------------------------------------ key packing

    def key_bits(self, level: int) -> int:
        """Width of a packed ``(cell, occurrence)`` key at ``level``."""
        return self.dimension * self.coord_bits(level) + self.occupancy_bits

    def pack_key(self, cell: Cell, occurrence: int, level: int) -> int:
        """Pack a cell id and occurrence index into one integer key."""
        self._check_level(level)
        if occurrence < 0 or occurrence.bit_length() > self.occupancy_bits:
            raise CapacityExceeded(
                f"occurrence {occurrence} exceeds {self.occupancy_bits}-bit "
                "field; raise occupancy_bits or shrink cell populations"
            )
        bits = self.coord_bits(level)
        key = 0
        for index in cell:
            if index < 0 or index.bit_length() > bits:
                raise ConfigError(
                    f"cell coordinate {index} does not fit {bits} bits at "
                    f"level {level}"
                )
            key = (key << bits) | index
        return (key << self.occupancy_bits) | occurrence

    def unpack_key(self, key: int, level: int) -> tuple[Cell, int]:
        """Inverse of :meth:`pack_key`."""
        self._check_level(level)
        if key < 0 or key.bit_length() > self.key_bits(level):
            raise ConfigError(
                f"key {key} does not fit {self.key_bits(level)} bits at "
                f"level {level}"
            )
        occurrence = key & ((1 << self.occupancy_bits) - 1)
        key >>= self.occupancy_bits
        bits = self.coord_bits(level)
        mask = (1 << bits) - 1
        reversed_cell = []
        for _ in range(self.dimension):
            reversed_cell.append(key & mask)
            key >>= bits
        return tuple(reversed(reversed_cell)), occurrence

    # ------------------------------------------------------------- key streams

    def bucket_points(
        self, points: Sequence[Point], level: int
    ) -> dict[Cell, list[Point]]:
        """Group points by cell, each bucket sorted in coordinate order.

        Sorting fixes the occurrence indexing: both parties rank their own
        points inside a cell the same deterministic way, so equal
        multiplicities cancel key-for-key regardless of noise within the
        cell.
        """
        buckets: dict[Cell, list[Point]] = {}
        for point in points:
            buckets.setdefault(self.cell(point, level), []).append(point)
        for bucket in buckets.values():
            bucket.sort()
        return buckets

    def keys_for(self, points: Sequence[Point], level: int) -> Iterable[int]:
        """One packed key per point: ``(cell, occurrence-rank)``."""
        return self.level_keys(points, (level,))[level]

    def level_keys(
        self, points: Sequence[Point], levels: Sequence[int]
    ) -> dict[int, list[int]]:
        """Packed keys for every requested level, in one pass.

        Points are validated and sorted once; each level then pays only the
        bit-shifts.  Occurrence ranks follow the global sorted order, which
        restricted to any one cell is exactly the sorted-bucket order —
        identical keys to the per-level path, ~``len(levels)``× faster.

        When numpy is available (and every requested key width fits an
        int64) the whole pass — shift, sort, cell packing, occurrence
        ranking — runs vectorized; the produced keys are identical.
        """
        for level in levels:
            self._check_level(level)
        vectorized = self._level_keys_vectorized(points, levels)
        if vectorized is not None:
            return vectorized
        for point in points:
            self._check_point(point)
        shift = self.shift
        shifted = sorted(
            tuple(c + o for c, o in zip(point, shift)) for point in points
        )
        occ_bits = self.occupancy_bits
        occ_limit = 1 << occ_bits
        result: dict[int, list[int]] = {}
        for level in levels:
            bits = self.coord_bits(level)
            counts: dict[int, int] = {}
            keys = []
            for coords in shifted:
                cell_key = 0
                for coordinate in coords:
                    cell_key = (cell_key << bits) | (coordinate >> level)
                occurrence = counts.get(cell_key, 0)
                if occurrence >= occ_limit:
                    raise CapacityExceeded(
                        f"more than {occ_limit} points share a level-{level} "
                        "cell; raise occupancy_bits"
                    )
                counts[cell_key] = occurrence + 1
                keys.append((cell_key << occ_bits) | occurrence)
            result[level] = keys
        return result

    def vector_points(self, points: Sequence[Point]) -> "_np.ndarray | None":
        """Points as a validated ``(n, d)`` int64 array; ``None`` = fall back.

        Returns ``None`` when numpy is missing, the input is not a clean
        integer block, or the grid is too wide for int64 arithmetic — the
        pure-Python paths then either handle the input or raise the
        canonical validation error.  Out-of-range coordinates raise
        :class:`~repro.errors.ConfigError` exactly like the scalar checks.
        """
        if _np is None or len(points) == 0:
            return None
        if self.max_level > 62:
            # Shifted coordinates need max_level + 1 bits (see coord_bits)
            # and would overflow int64 before any per-level key check.
            return None
        try:
            raw = _np.asarray(points)
        except (ValueError, TypeError, OverflowError):
            return None  # ragged / non-numeric: pure path raises properly
        if raw.ndim != 2 or raw.shape[1] != self.dimension:
            return None  # per-point dimension errors come from the pure path
        if raw.dtype.kind not in "iu":
            return None  # floats / objects: let the pure path handle them
        array = raw.astype(_np.int64, copy=False)
        if ((array < 0) | (array >= self.delta)).any():
            bad = array[(array < 0) | (array >= self.delta)][0]
            raise ConfigError(
                f"coordinate {int(bad)} outside [0, {self.delta})"
            )
        return array

    def vector_key_pass(
        self, points: Sequence[Point]
    ) -> "VectorKeyPass | None":
        """A reusable vectorized key pass over ``points``; ``None`` = fall back.

        The pass validates, shifts, and sorts the points once; every
        subsequent per-level key request pays only the bit arithmetic.  Hot
        callers that probe several levels of one point multiset (the decoder,
        the sharded engine) hold one pass instead of re-sorting per level.
        """
        array = self.vector_points(points)
        if array is None:
            return None
        shifted = array + _np.asarray(self.shift, dtype=_np.int64)
        order = _np.lexsort(shifted.T[::-1])  # first coordinate is primary
        return VectorKeyPass(self, shifted[order], order)

    def _level_keys_vectorized(
        self, points: Sequence[Point], levels: Sequence[int]
    ) -> dict[int, list[int]] | None:
        """numpy fast path of :meth:`level_keys`; ``None`` means "fall back"."""
        if any(self.key_bits(level) > 63 for level in levels):
            return None
        key_pass = self.vector_key_pass(points)
        if key_pass is None:
            return None
        return {level: key_pass.keys(level).tolist() for level in levels}

    def cell_diameter(self, level: int, metric: str = "l1") -> float:
        """Upper bound on the distance between two points in one cell."""
        self._check_level(level)
        side = float(1 << level)
        if metric == "l1":
            return side * self.dimension
        if metric == "linf":
            return side
        return side * (self.dimension ** 0.5)


class VectorKeyPass:
    """One point multiset's vectorized key state, reusable across levels.

    Construction (via :meth:`ShiftedGridHierarchy.vector_key_pass` or a
    pre-sorted shifted block) pays the validation + shift + lexsort once;
    :meth:`keys` and :meth:`cell_keys` then cost only per-level bit
    arithmetic and grouping.  All outputs are int64 numpy arrays **in the
    pass's sorted (coordinate) order** — exactly the order
    :meth:`ShiftedGridHierarchy.bucket_points` sorts each bucket into, so
    occurrence ranks agree with the scalar paths key for key.
    """

    def __init__(self, grid: ShiftedGridHierarchy, sorted_shifted, order=None):
        if _np is None:  # pragma: no cover - callers gate on numpy
            raise ConfigError("VectorKeyPass requires numpy")
        self.grid = grid
        self._shifted = sorted_shifted  # (n, d) int64, lexsorted
        #: Permutation mapping sorted order back to the caller's original
        #: point order (``None`` when the caller supplied pre-sorted data).
        self.order = order
        self._keys: dict[int, "_np.ndarray"] = {}
        self._cell_keys: dict[int, "_np.ndarray"] = {}

    def __len__(self) -> int:
        return self._shifted.shape[0]

    def supports(self, level: int) -> bool:
        """True when this level's packed keys fit int64 arithmetic."""
        return self.grid.key_bits(level) <= 63

    def sorted_point(self, index: int) -> Point:
        """The ``index``-th point in sorted order (shift removed)."""
        shift = self.grid.shift
        row = self._shifted[index]
        return tuple(int(row[i]) - shift[i] for i in range(self.grid.dimension))

    def cell_keys(self, level: int) -> "_np.ndarray":
        """Packed cell id per point (sorted order), without occurrence bits."""
        cached = self._cell_keys.get(level)
        if cached is not None:
            return cached
        self.grid._check_level(level)
        bits = self.grid.coord_bits(level)
        cells = self._shifted >> level
        cell_key = cells[:, 0].copy()
        for column in range(1, self.grid.dimension):
            cell_key = (cell_key << bits) | cells[:, column]
        self._cell_keys[level] = cell_key
        return cell_key

    def keys(self, level: int) -> "_np.ndarray":
        """Packed ``(cell, occurrence-rank)`` keys per point (sorted order)."""
        cached = self._keys.get(level)
        if cached is not None:
            return cached
        if not self.supports(level):
            raise ConfigError(
                f"level {level} keys need {self.grid.key_bits(level)} bits; "
                "the vectorized pass handles at most 63"
            )
        cell_key = self.cell_keys(level)
        n = cell_key.shape[0]
        occ_bits = self.grid.occupancy_bits
        occ_limit = 1 << occ_bits
        # Occurrence rank = number of earlier points (in sorted order)
        # sharing the cell.  Equal cells need not be adjacent, so group
        # via a stable argsort of the group ids.
        _, inverse = _np.unique(cell_key, return_inverse=True)
        grouped = _np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[grouped]
        starts = _np.flatnonzero(
            _np.concatenate(([True], sorted_inverse[1:] != sorted_inverse[:-1]))
        )
        sizes = _np.diff(_np.append(starts, n))
        ranks = _np.empty(n, dtype=_np.int64)
        ranks[grouped] = _np.arange(n, dtype=_np.int64) - _np.repeat(starts, sizes)
        if int(ranks.max()) >= occ_limit:
            raise CapacityExceeded(
                f"more than {occ_limit} points share a level-{level} "
                "cell; raise occupancy_bits"
            )
        keys = (cell_key << occ_bits) | ranks
        self._keys[level] = keys
        return keys
