"""Broadcast reconciliation: one sketch, many replicas.

The one-round protocol's message depends only on Alice's data and the
public coins — nothing about any particular receiver.  A coordinator can
therefore **encode once and broadcast**: every replica subtracts its own
keys and repairs independently, each at its own finest decodable level.
Replicas close to the coordinator decode fine levels (cheap, accurate
repairs); badly drifted replicas fall back to coarse levels of the *same*
message.

This is the robust analogue of the multi-party exact reconciliation
folklore, and it is free: the per-replica work is exactly the two-party
Bob side.  Communication accounting distinguishes the broadcast medium
(message counted once) from per-link unicast (counted per replica).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler, ReconcileResult
from repro.emd.metrics import Point
from repro.errors import ReconciliationFailure


@dataclass
class BroadcastReport:
    """Outcome of one broadcast round.

    Attributes
    ----------
    payload_bits:
        Size of the single encoded sketch.
    results:
        Per-replica outcomes, in input order (``None`` where a replica
        failed to decode any level).
    failures:
        Indices of replicas that raised :class:`ReconciliationFailure`.
    """

    payload_bits: int
    results: list[ReconcileResult | None]
    failures: list[int]

    @property
    def broadcast_bits(self) -> int:
        """Total bits on a broadcast medium (sent once)."""
        return self.payload_bits

    @property
    def unicast_bits(self) -> int:
        """Total bits if each replica had to be sent its own copy."""
        return self.payload_bits * len(self.results)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        decoded = [r for r in self.results if r is not None]
        levels = sorted(r.level for r in decoded)
        return (
            f"{self.payload_bits} bits broadcast to {len(self.results)} "
            f"replicas; {len(decoded)} repaired "
            f"(levels {levels}), {len(self.failures)} failed"
        )


def broadcast_reconcile(
    coordinator_points: list[Point],
    replicas: list[list[Point]],
    config: ProtocolConfig,
    strategy: str = "occurrence",
) -> BroadcastReport:
    """Encode the coordinator's set once; repair every replica against it.

    Parameters
    ----------
    coordinator_points:
        The authoritative set (Alice's role).
    replicas:
        Each replica's current point multiset (each plays Bob).
    config:
        Shared public-coin parameters; ``k`` must cover the *worst*
        replica's genuine difference.

    >>> config = ProtocolConfig(delta=256, dimension=1, k=2, seed=1)
    >>> report = broadcast_reconcile(
    ...     [(10,), (200,)], [[(10,), (201,)], [(11,), (200,)]], config)
    >>> len(report.results)
    2
    """
    reconciler = HierarchicalReconciler(config)
    payload = reconciler.encode(coordinator_points)
    results: list[ReconcileResult | None] = []
    failures: list[int] = []
    for index, replica in enumerate(replicas):
        try:
            results.append(
                reconciler.decode_and_repair(payload, replica, strategy)
            )
        except ReconciliationFailure:
            results.append(None)
            failures.append(index)
    return BroadcastReport(
        payload_bits=8 * len(payload),
        results=results,
        failures=failures,
    )
