"""Two-round adaptive reconciliation: estimate first, then send one window.

The one-round protocol ships every grid level and therefore pays a
``log Δ`` factor over the lower bound.  This variant (an extension the
paper's lower-bound discussion invites; documented as ours in DESIGN.md)
spends one extra round to locate the decode level before any full-size
sketch is built:

1. **Bob → Alice**: tiny per-level strata estimators over *hashed* cell
   keys for a strided subset of levels.
2. **Alice → Bob**: IBLTs for a small window of levels around the finest
   level whose estimated difference fits the budget, each sized from the
   estimate (plus the coarsest level as a decode-of-last-resort).

Bob then proceeds exactly like the one-round protocol on the window.
Hashed 48-bit estimator keys keep round 1 small; the estimate only has to
be right within a factor ~2, which the window absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler, ReconcileResult
from repro.core.repair import apply_repair, plan_repair
from repro.core.sketch import level_iblt_config
from repro.errors import ConfigError, ReconciliationFailure, SerializationError
from repro.iblt.decode import decode
from repro.iblt.hashing import hash_with_salt
from repro.iblt.strata import StrataConfig, StrataEstimator
from repro.iblt.table import IBLT, recommended_cells
from repro.net.bits import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.transcript import Transcript

REQUEST_MAGIC = 0xAD
RESPONSE_MAGIC = 0xAE
VERSION = 1


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs of the adaptive variant (shared via public coins)."""

    level_stride: int = 2
    estimator_strata: int = 8
    estimator_cells: int = 9
    estimator_key_bits: int = 40
    estimator_checksum_bits: int = 16
    headroom: float = 2.0
    include_fallback: bool = True

    def __post_init__(self) -> None:
        if self.level_stride < 1:
            raise ConfigError(f"level_stride must be >= 1, got {self.level_stride}")
        if self.headroom < 1:
            raise ConfigError(f"headroom must be >= 1, got {self.headroom}")
        if not 32 <= self.estimator_key_bits <= 64:
            raise ConfigError(
                f"estimator_key_bits must be in [32, 64], got {self.estimator_key_bits}"
            )


#: Bound on the reused-window-table cache (window shapes vary with client
#: estimates; a long-lived server must not grow per-peer state unbounded).
_WINDOW_CACHE_LIMIT = 64


class AdaptiveReconciler:
    """Both endpoints of the two-round protocol.

    ``reuse_alice_state=True`` opts into caching Alice's deterministic
    per-level work — her own strata estimators and the sized window
    tables — across calls to :meth:`alice_respond`.  Only safe when every
    call passes the *same* point multiset (the serve layer's case: one
    server-side point set, many connections); the cache is keyed on the
    points object's identity and resets if a different object shows up.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        adaptive: AdaptiveConfig | None = None,
        *,
        reuse_alice_state: bool = False,
    ):
        self.config = config
        self.adaptive = adaptive or AdaptiveConfig()
        self._one_round = HierarchicalReconciler(config)
        self.grid = self._one_round.grid
        self._reuse = reuse_alice_state
        self._cached_points: object | None = None
        self._estimator_cache: dict[int, StrataEstimator] = {}
        self._window_cache: dict[tuple[int, int], IBLT] = {}

    # ----------------------------------------------------------- shared bits

    def sampled_levels(self) -> list[int]:
        """Levels carrying an estimator in round 1 (coarsest always included)."""
        all_levels = list(self.config.sketch_levels)
        if not all_levels:
            raise ConfigError(
                "adaptive reconciliation needs at least one sketch level; "
                "config.sketch_levels is empty"
            )
        sampled = all_levels[:: self.adaptive.level_stride]
        if all_levels[-1] not in sampled:
            sampled.append(all_levels[-1])
        return sampled

    def _estimator_config(self, level: int) -> StrataConfig:
        return StrataConfig(
            strata=self.adaptive.estimator_strata,
            cells_per_stratum=self.adaptive.estimator_cells,
            q=3,
            key_bits=self.adaptive.estimator_key_bits,
            checksum_bits=self.adaptive.estimator_checksum_bits,
            seed=hash_with_salt(level, self.config.seed ^ 0xE57),
        )

    def _hashed_keys(self, points, level: int):
        mask = (1 << self.adaptive.estimator_key_bits) - 1
        salt = self.config.seed ^ (level * 0x9E3779B9)
        for key in self.grid.keys_for(points, level):
            yield hash_with_salt(key, salt) & mask

    def _build_estimator(self, points, level: int) -> StrataEstimator:
        estimator = StrataEstimator(
            self._estimator_config(level), backend=self.config.backend
        )
        estimator.insert_all(self._hashed_keys(points, level))
        return estimator

    # ---------------------------------------------------- Alice state reuse

    def _check_reuse_points(self, points) -> None:
        """Drop the caches if a different point multiset shows up."""
        if self._cached_points is not points:
            self._estimator_cache.clear()
            self._window_cache.clear()
            self._cached_points = points

    def _alice_estimator(self, points, level: int) -> StrataEstimator:
        if not self._reuse:
            return self._build_estimator(points, level)
        estimator = self._estimator_cache.get(level)
        if estimator is None:
            estimator = self._build_estimator(points, level)
            self._estimator_cache[level] = estimator
        return estimator

    def _alice_window_table(self, points, level: int, cells: int) -> IBLT:
        if not self._reuse:
            return self._one_round.level_table(points, level, cells)
        key = (level, cells)
        table = self._window_cache.get(key)
        if table is None:
            if len(self._window_cache) >= _WINDOW_CACHE_LIMIT:
                self._window_cache.pop(next(iter(self._window_cache)))
            table = self._one_round.level_table(points, level, cells)
            self._window_cache[key] = table
        return table

    def warm_alice(self, alice_points) -> None:
        """Prebuild Alice's cached per-level estimators for ``alice_points``.

        Only meaningful with ``reuse_alice_state=True`` (no-op otherwise).
        The serve layer calls this once before forking worker processes so
        every worker inherits the estimators copy-on-write instead of each
        paying the build on its first adaptive request.  Window tables are
        *not* prewarmed — their shapes depend on client estimates — but
        the estimator decode is the per-request cost this removes.
        """
        if not self._reuse:
            return
        self._check_reuse_points(alice_points)
        for level in self.sampled_levels():
            self._alice_estimator(alice_points, level)

    # -------------------------------------------------------------- round 1

    def bob_request(self, bob_points) -> bytes:
        """Bob's opening message: strided per-level difference estimators."""
        writer = BitWriter()
        writer.write_uint(REQUEST_MAGIC, 8)
        writer.write_uint(VERSION, 8)
        writer.write_varint(len(bob_points))
        for level in self.sampled_levels():
            self._build_estimator(bob_points, level).write_to(writer)
        return writer.getvalue()

    # -------------------------------------------------------------- round 2

    def alice_respond(self, request_payload: bytes, alice_points) -> bytes:
        """Alice's reply: a sized IBLT window around the chosen level."""
        reader = BitReader(request_payload)
        if reader.read_uint(8) != REQUEST_MAGIC:
            raise SerializationError("bad magic byte; not an adaptive request")
        if reader.read_uint(8) != VERSION:
            raise SerializationError("unsupported adaptive request version")
        reader.read_varint()  # Bob's size; informational
        self._check_reuse_points(alice_points)
        estimates: dict[int, int] = {}
        for level in self.sampled_levels():
            bob_estimator = StrataEstimator.read_from(
                reader, self._estimator_config(level),
                backend=self.config.backend,
            )
            mine = self._alice_estimator(alice_points, level)
            estimates[level] = mine.estimate_difference(
                bob_estimator, strategy=self.config.decode_strategy
            )
        reader.expect_end()

        window = self._choose_window(estimates)
        writer = BitWriter()
        writer.write_uint(RESPONSE_MAGIC, 8)
        writer.write_uint(VERSION, 8)
        writer.write_varint(len(alice_points))
        writer.write_varint(len(window))
        for level, cells in window:
            writer.write_varint(level)
            writer.write_varint(cells)
            table = self._alice_window_table(alice_points, level, cells)
            table.write_to(writer)
        return writer.getvalue()

    def _choose_window(self, estimates: dict[int, int]) -> list[tuple[int, int]]:
        """Pick (level, cells) pairs for the reply, finest first."""
        budget = int(2 * self.config.k * self.config.diff_margin)
        sampled = sorted(estimates)
        fitting = [
            level for level in sampled
            if estimates[level] * self.adaptive.headroom <= budget * 2
        ]
        best = fitting[0] if fitting else sampled[-1]
        best_estimate = max(estimates[best], 2 * self.config.k)

        window: list[tuple[int, int]] = []
        all_levels = [
            level for level in self.config.sketch_levels
            if best - self.adaptive.level_stride + 1 <= level <= best
        ]
        for level in all_levels:
            # Differences roughly double per finer level (split probability
            # is ~ EMD / 2^level); size finer tables accordingly.
            inflation = 1 << (best - level)
            expected = int(best_estimate * inflation * self.adaptive.headroom)
            window.append((level, recommended_cells(expected, q=self.config.q)))
        coarsest = self.config.sketch_levels[-1]
        if self.adaptive.include_fallback and all(
            level != coarsest for level, _ in window
        ):
            window.append(
                (coarsest, recommended_cells(budget, q=self.config.q))
            )
        return window

    # -------------------------------------------------------------- round 3

    def bob_finish(
        self, response_payload: bytes, bob_points, strategy: str = "occurrence"
    ) -> ReconcileResult:
        """Bob decodes the finest level of the reply window and repairs."""
        reader = BitReader(response_payload)
        if reader.read_uint(8) != RESPONSE_MAGIC:
            raise SerializationError("bad magic byte; not an adaptive response")
        if reader.read_uint(8) != VERSION:
            raise SerializationError("unsupported adaptive response version")
        n_alice = reader.read_varint()
        n_levels = reader.read_varint()
        window: list[tuple[int, IBLT]] = []
        seen_levels: set[int] = set()
        for _ in range(n_levels):
            level = reader.read_varint()
            cells = reader.read_varint()
            if level in seen_levels:
                # A malformed reply could carry one level twice and silently
                # shadow the first table; reject it at the wire boundary.
                raise SerializationError(
                    f"adaptive window carries level {level} twice"
                )
            seen_levels.add(level)
            table_config = level_iblt_config(self.config, self.grid, level, cells)
            window.append(
                (level, IBLT.read_from(reader, table_config, backend=self.config.backend))
            )
        reader.expect_end()

        probed: list[int] = []
        for level, alice_table in sorted(window, key=lambda pair: pair[0]):
            probed.append(level)
            bob_table = self._one_round.level_table(
                bob_points, level, alice_table.config.cells
            )
            result = decode(
                alice_table.subtract(bob_table),
                max_items=4 * alice_table.config.capacity + 8,
                strategy=self.config.decode_strategy,
            )
            if not result.success:
                continue
            if len(result.alice_keys) - len(result.bob_keys) != n_alice - len(bob_points):
                continue
            plan = plan_repair(
                bob_points, result.alice_keys, result.bob_keys,
                self.grid, level, strategy,
            )
            return ReconcileResult(
                repaired=apply_repair(bob_points, plan),
                level=level,
                alice_surplus=len(result.alice_keys),
                bob_surplus=len(result.bob_keys),
                plan=plan,
                levels_probed=probed,
            )
        raise ReconciliationFailure(
            "no level of the adaptive window decoded "
            f"(probed {probed}; difference larger than estimated?)"
        )


def reconcile_adaptive(
    alice_points,
    bob_points,
    config: ProtocolConfig,
    adaptive: AdaptiveConfig | None = None,
    channel: SimulatedChannel | None = None,
    strategy: str = "occurrence",
) -> ReconcileResult:
    """Run the full two-round exchange over a (simulated) channel.

    A thin driver pumping :class:`AdaptiveAliceSession` /
    :class:`AdaptiveBobSession` (:mod:`repro.session`) over the channel.
    A caller-supplied channel is left open for reuse; the transcript
    covers this run's messages only.
    """
    # Lazy import: repro.session layers above this module (see reconcile()).
    from repro.session import AdaptiveAliceSession, AdaptiveBobSession, pump

    owns_channel = channel is None
    channel = channel if channel is not None else SimulatedChannel()
    first_message = len(channel.messages)
    reconciler = AdaptiveReconciler(config, adaptive)  # shared: one grid build
    alice = AdaptiveAliceSession(
        config, alice_points, adaptive, reconciler=reconciler
    )
    bob = AdaptiveBobSession(
        config, bob_points, adaptive, strategy=strategy, reconciler=reconciler
    )
    _, result = pump(alice, bob, channel)
    if owns_channel:
        channel.close()
    result.transcript = Transcript.from_messages(channel.messages[first_message:])
    return result
