"""The one-round robust reconciliation protocol (the paper's algorithm).

Alice builds one IBLT per grid level over occurrence-indexed cell keys and
ships them all in a single message.  Bob subtracts his own keys level by
level, finds the **finest level that peels**, and repairs his set from the
decoded key difference: delete his surplus points, insert cell centres for
Alice's surplus.

Why the finest decodable level is the right one: at level ``ℓ`` the expected
number of *close* pairs split across cells is at most ``EMD_k / 2^ℓ``
(split-probability fact), so the symmetric key difference is about
``2·EMD_k/2^ℓ + 2k``; the sketch capacity ``Θ(k·diff_margin)`` is first
reached near ``2^{ℓ*} ≈ EMD_k / k``.  Each repaired point then costs at most
a cell diameter ``d · 2^{ℓ*}``, for a total of
``O(k · d · EMD_k / k) = O(d) · EMD_k`` — the paper's approximation factor.

Bob probes levels with a binary search (decodability is monotone in the
level up to peeling-threshold noise), so his work is ``O(n log log Δ)``
hashes rather than ``O(n log Δ)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.repair import RepairPlan, apply_repair, plan_repair
from repro.core.sketch import (
    HierarchySketch,
    build_level_sketches,
    level_iblt_config,
)
from repro.emd.metrics import Point
from repro.errors import ReconciliationFailure
from repro.iblt.decode import DecodeResult, decode
from repro.iblt.table import IBLT
from repro.net.channel import SimulatedChannel
from repro.net.transcript import Transcript


@dataclass
class ReconcileResult:
    """Outcome of one robust reconciliation run.

    Attributes
    ----------
    repaired:
        Bob's final point multiset ``S'_B``.
    level:
        Grid level the difference was decoded at (``0`` means the repair
        was exact).
    alice_surplus, bob_surplus:
        Number of centre insertions / point deletions applied.
    plan:
        The full edit script.
    levels_probed:
        Which levels Bob attempted to decode, in probe order.
    transcript:
        Measured communication (``None`` when run without a channel).
    """

    repaired: list[Point]
    level: int
    alice_surplus: int
    bob_surplus: int
    plan: RepairPlan
    levels_probed: list[int] = field(default_factory=list)
    transcript: Transcript | None = None

    @property
    def exact(self) -> bool:
        """True when the repair happened at level 0 (centres are exact)."""
        return self.level == 0


class HierarchicalReconciler:
    """Both endpoints of the one-round protocol, bound to one config."""

    def __init__(self, config: ProtocolConfig):
        self.config = config
        shift = None if config.random_shift else (0,) * config.dimension
        self.grid = ShiftedGridHierarchy(
            config.delta, config.dimension, config.seed, config.occupancy_bits,
            shift=shift,
        )

    # ------------------------------------------------------------- Alice

    def level_table(self, points: list[Point], level: int, cells: int | None = None) -> IBLT:
        """Build one level's IBLT over a point multiset."""
        table = IBLT(
            level_iblt_config(self.config, self.grid, level, cells),
            backend=self.config.backend,
        )
        table.insert_many(self.grid.keys_for(points, level))
        return table

    def encode(self, points: list[Point]) -> bytes:
        """Alice's single message: every sketched level, finest first."""
        level_sketches = build_level_sketches(self.config, self.grid, points)
        sketch = HierarchySketch(n_points=len(points), levels=level_sketches)
        return sketch.to_bytes()

    # --------------------------------------------------------------- Bob

    def decode_and_repair(
        self,
        payload: bytes,
        bob_points: list[Point],
        strategy: str = "occurrence",
        probe: str = "binary",
    ) -> ReconcileResult:
        """Bob's side: find the finest decodable level and repair.

        Parameters
        ----------
        payload:
            Alice's message.
        bob_points:
            Bob's current point multiset.
        strategy:
            Victim-selection strategy for deletions (see
            :mod:`repro.core.repair`).
        probe:
            ``"binary"`` (default) binary-searches the finest decodable
            level; ``"linear"`` scans every level finest-first (used by
            tests and ablations to validate the search).
        """
        if probe not in ("binary", "linear"):
            raise ReconciliationFailure(f"unknown probe mode {probe!r}")
        sketch = HierarchySketch.from_bytes(payload, self.config, self.grid)
        by_level = {level_sketch.level: level_sketch for level_sketch in sketch.levels}
        levels = sorted(by_level)
        probed: list[int] = []
        outcomes: dict[int, DecodeResult] = {}

        def attempt(level: int) -> DecodeResult:
            if level not in outcomes:
                probed.append(level)
                bob_table = self.level_table(
                    bob_points, level, by_level[level].table.config.cells
                )
                diff = by_level[level].table.subtract(bob_table)
                result = decode(
                    diff,
                    max_items=self.config.decode_item_limit,
                    strategy=self.config.decode_strategy,
                )
                if result.success and not self._balanced(
                    result, sketch.n_points, len(bob_points)
                ):
                    result.success = False  # checksum-evading false decode
                outcomes[level] = result
            return outcomes[level]

        chosen = self._finest_decodable(levels, attempt, probe)
        if chosen is None:
            raise ReconciliationFailure(
                f"no level of the hierarchy sketch decoded "
                f"(difference exceeds budget k={self.config.k}?)"
            )
        result = outcomes[chosen]
        plan = plan_repair(
            bob_points, result.alice_keys, result.bob_keys,
            self.grid, chosen, strategy,
        )
        repaired = apply_repair(bob_points, plan)
        return ReconcileResult(
            repaired=repaired,
            level=chosen,
            alice_surplus=len(result.alice_keys),
            bob_surplus=len(result.bob_keys),
            plan=plan,
            levels_probed=probed,
        )

    @staticmethod
    def _balanced(result: DecodeResult, n_alice: int, n_bob: int) -> bool:
        return len(result.alice_keys) - len(result.bob_keys) == n_alice - n_bob

    @staticmethod
    def _finest_decodable(levels, attempt, probe: str) -> int | None:
        """Locate the smallest (finest) level whose table peels."""
        if probe == "linear":
            for level in levels:
                if attempt(level).success:
                    return level
            return None
        # Binary search: assume failure below the threshold, success above.
        if attempt(levels[0]).success:
            return levels[0]
        low, high = 0, len(levels) - 1  # low fails; probe for first success
        if not attempt(levels[high]).success:
            # Coarsest failed too; fall back to scanning for any success.
            for level in levels[1:-1]:
                if attempt(level).success:
                    return level
            return None
        while high - low > 1:
            mid = (low + high) // 2
            if attempt(levels[mid]).success:
                high = mid
            else:
                low = mid
        return levels[high]


def reconcile(
    alice_points: list[Point],
    bob_points: list[Point],
    config: ProtocolConfig,
    channel: SimulatedChannel | None = None,
    strategy: str = "occurrence",
) -> ReconcileResult:
    """Run a complete one-round exchange over a (simulated) channel.

    A thin driver over the sans-I/O sessions (:mod:`repro.session`): it
    pumps :class:`OneRoundAliceSession`/:class:`OneRoundBobSession` over
    the channel, so the wire bytes equal a networked run's.  A channel the
    caller supplies is left open (and may be reused across runs); only a
    channel this function creates is closed.  The attached transcript
    covers this run's messages only.

    Returns Bob's :class:`ReconcileResult` with the measured transcript
    attached.

    >>> config = ProtocolConfig(delta=256, dimension=1, k=2, seed=7)
    >>> result = reconcile([(10,), (200,)], [(11,), (200,)], config)
    >>> len(result.repaired)
    2
    """
    # Imported lazily: repro.session sits above this module in the layering
    # (sessions wrap reconcilers; this driver wraps sessions).
    from repro.session import OneRoundAliceSession, OneRoundBobSession, pump

    owns_channel = channel is None
    channel = channel if channel is not None else SimulatedChannel()
    first_message = len(channel.messages)
    reconciler = HierarchicalReconciler(config)  # shared: one grid build
    alice = OneRoundAliceSession(config, alice_points, reconciler=reconciler)
    bob = OneRoundBobSession(
        config, bob_points, strategy=strategy, reconciler=reconciler
    )
    _, result = pump(alice, bob, channel)
    if owns_channel:
        channel.close()
    result.transcript = Transcript.from_messages(channel.messages[first_message:])
    return result
