"""Shared protocol parameters.

A :class:`ProtocolConfig` is the public-coin contract between the two
parties: both construct it identically (same seed) and never transmit it.
Everything a run needs — the grid geometry, the IBLT shape, the budget
parameter ``k`` — lives here and is validated once, up front.

Every protocol variant shares this one config: the one-round hierarchy
sketch, the sharded engine (``shards``), the adaptive two-round variant
(plus :class:`~repro.core.adaptive.AdaptiveConfig`), and the rateless
stream (plus :class:`~repro.core.rateless.RatelessConfig`, whose segment
schedule is seeded from this config's public coins).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.emd.metrics import validate_metric
from repro.errors import ConfigError
from repro.iblt.backends import get_backend
from repro.iblt.decode import DECODE_STRATEGIES
from repro.iblt.table import PEELING_THRESHOLDS, recommended_cells

#: Shard-executor kinds accepted by :class:`ProtocolConfig` (implemented in
#: :mod:`repro.scale.executors`; validated here so a typo fails at config
#: construction rather than mid-protocol).
EXECUTOR_KINDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class ProtocolConfig:
    """Public-coin parameters of a robust reconciliation.

    Parameters
    ----------
    delta:
        Grid extent; every coordinate lies in ``[0, delta)``.
    dimension:
        Point dimension ``d``.
    k:
        Budget parameter: the number of genuinely-different points the
        sketch is sized for.  Communication is ``O(k log delta)`` cells and
        the guarantee is ``EMD(S_A, S'_B) <= O(d) * EMD_k(S_A, S_B)``.
    q:
        IBLT hash-function count.
    occupancy_bits:
        Width of the per-cell occurrence index inside packed keys; bounds
        the number of co-located points a single grid cell may hold
        (``2^occupancy_bits``).
    checksum_bits:
        Width of the IBLT key checksum.
    seed:
        Public-coin seed; drives the grid shift and every hash salt.
    diff_margin:
        Sketch sizing headroom: each level's IBLT is sized for
        ``diff_margin * 2k`` difference keys.  The analysis puts the
        expected difference at the target level near ``4k`` (2k from split
        close pairs, 2k from the genuinely different points), i.e.
        ``diff_margin = 2``; the default adds slack for variance.
    metric:
        Ground metric for reporting (``l1`` is the analysed case).
    levels:
        Explicit grid levels to sketch (finest first); ``None`` means every
        level from 0 to ``ceil(log2 delta)``.
    random_shift:
        ``False`` pins the grid shift to zero — the deterministic-quadtree
        ablation the analysis warns about (boundary-aligned noise defeats
        it); leave ``True`` outside of ablation studies.
    backend:
        IBLT cell-storage backend used for every table this run builds (see
        :mod:`repro.iblt.backends`).  ``"auto"`` (default) picks the fastest
        available engine per table and falls back to the pure-Python
        reference; all backends are bit-compatible on the wire, so the two
        parties may configure this independently.
    shards:
        Number of spatial shards the sharded engine splits the point space
        into (see :mod:`repro.scale`).  ``1`` (default) is the classic
        monolithic protocol.  The shard map is derived from the public coins,
        so both parties agree with no extra communication; like ``k`` it is
        part of the wire contract and must match on both sides.
    workers:
        Concurrency of the sharded engine's executor; ``None`` sizes it from
        the machine.  Private (does not affect the wire) — the parties may
        configure it independently.
    executor:
        Shard executor kind: ``"serial"``, ``"thread"``, ``"process"``, or
        ``"auto"`` (pick per machine/backend).  Private, like ``workers``.
    decode_strategy:
        IBLT peeling strategy for every decode this run performs (see
        :mod:`repro.iblt.decode`): ``"batch"`` (default, round-based and
        vectorized on array backends) or ``"scalar"`` (the reference
        one-key-at-a-time peel, for diagnostics and differential testing).
        Also drives the rateless variant's resumable
        :class:`~repro.iblt.decode.PeelState`.  Both strategies recover
        identical key sets, so this is private — it does not affect the
        wire bytes or the repair.
    """

    delta: int
    dimension: int
    k: int
    q: int = 4
    occupancy_bits: int = 20
    checksum_bits: int = 32
    seed: int = 0
    diff_margin: float = 3.0
    metric: str = "l1"
    levels: tuple[int, ...] | None = field(default=None)
    random_shift: bool = True
    backend: str = "auto"
    shards: int = 1
    workers: int | None = None
    executor: str = "auto"
    decode_strategy: str = "batch"

    def __post_init__(self) -> None:
        if self.delta < 2:
            raise ConfigError(f"delta must be >= 2, got {self.delta}")
        if self.dimension < 1:
            raise ConfigError(f"dimension must be >= 1, got {self.dimension}")
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.q not in PEELING_THRESHOLDS:
            raise ConfigError(
                f"q must be one of {sorted(PEELING_THRESHOLDS)}, got {self.q}"
            )
        if not 1 <= self.occupancy_bits <= 40:
            raise ConfigError(
                f"occupancy_bits must be in [1, 40], got {self.occupancy_bits}"
            )
        if not 8 <= self.checksum_bits <= 64:
            raise ConfigError(
                f"checksum_bits must be in [8, 64], got {self.checksum_bits}"
            )
        if self.diff_margin < 1:
            raise ConfigError(
                f"diff_margin must be >= 1, got {self.diff_margin}"
            )
        validate_metric(self.metric)
        if self.backend != "auto":
            get_backend(self.backend)  # raises ConfigError if unknown/unavailable
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in EXECUTOR_KINDS:
            raise ConfigError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}"
            )
        if self.decode_strategy not in DECODE_STRATEGIES:
            raise ConfigError(
                f"decode_strategy must be one of {DECODE_STRATEGIES}, "
                f"got {self.decode_strategy!r}"
            )
        if self.levels is not None:
            if not self.levels:
                raise ConfigError(
                    "levels must name at least one grid level (or be None "
                    "for the full hierarchy)"
                )
            max_level = self.max_level
            for level in self.levels:
                if not 0 <= level <= max_level:
                    raise ConfigError(
                        f"level {level} outside [0, {max_level}]"
                    )
            if list(self.levels) != sorted(set(self.levels)):
                raise ConfigError("levels must be strictly increasing")

    @property
    def max_level(self) -> int:
        """Coarsest level: one cell (per shift residue) covers the grid."""
        return max(1, (self.delta - 1).bit_length())

    @property
    def sketch_levels(self) -> tuple[int, ...]:
        """The levels actually sketched, finest first."""
        if self.levels is not None:
            return self.levels
        return tuple(range(self.max_level + 1))

    @property
    def cells_per_level(self) -> int:
        """IBLT cells allocated at each level."""
        expected_diff = int(2 * self.k * self.diff_margin)
        return recommended_cells(expected_diff, q=self.q)

    @property
    def decode_item_limit(self) -> int:
        """Reject a level whose decode exceeds this many keys (sanity guard)."""
        return int(4 * self.k * self.diff_margin) + 8
