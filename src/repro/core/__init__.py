"""The paper's contribution: robust set reconciliation under EMD.

Public surface:

* :class:`~repro.core.config.ProtocolConfig` — shared (public-coin)
  parameters of a reconciliation.
* :class:`~repro.core.protocol.HierarchicalReconciler` — the one-round
  randomly-offset-quadtree + IBLT protocol (the paper's algorithm).
* :class:`~repro.core.adaptive.AdaptiveReconciler` — a two-round
  estimate-then-send variant that sheds the ``log Δ`` level factor.
* :func:`~repro.core.protocol.reconcile` — run a full exchange over a
  simulated channel and return the repaired set plus a transcript.
* :mod:`~repro.core.bounds` — the paper's analytic communication/accuracy
  formulas, including the ``Ω(k log |U|)`` lower bound.
"""

from repro.core.adaptive import AdaptiveReconciler
from repro.core.broadcast import BroadcastReport, broadcast_reconcile
from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.incremental import IncrementalSketch
from repro.core.protocol import HierarchicalReconciler, ReconcileResult, reconcile
from repro.core.repair import RepairPlan, apply_repair

__all__ = [
    "AdaptiveReconciler",
    "BroadcastReport",
    "HierarchicalReconciler",
    "IncrementalSketch",
    "ProtocolConfig",
    "ReconcileResult",
    "RepairPlan",
    "ShiftedGridHierarchy",
    "apply_repair",
    "broadcast_reconcile",
    "reconcile",
]
