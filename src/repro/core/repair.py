"""Turning a decoded key difference into Bob's repaired point set.

After Bob decodes the subtracted IBLT at level ``ℓ*`` he holds two key
multisets:

* *Alice-surplus keys* ``(cell, occurrence)`` — cells where Alice has more
  points than Bob.  Repair: insert the cell's centre once per key (the best
  available proxy for Alice's point, off by at most half a cell diameter).
* *Bob-surplus keys* — cells where Bob has more points than Alice.  Repair:
  delete one of Bob's points in that cell per key.

Because each party's keys enumerate occurrence ranks ``0..count-1``, the
surplus keys of a cell are exactly the ranks ``min(count_A, count_B) ..
max-1`` on the larger side; count balance makes ``|S'_B| = |S_B| -
deletions + insertions = |S_A|`` an invariant.

Which of Bob's in-cell points to delete is a genuine degree of freedom
(any subset of the right size restores multiset agreement).  Two strategies
are provided; the ablation benchmark compares them:

* ``"occurrence"`` — delete the points holding the surplus ranks in the
  deterministic sorted order (the paper-faithful, zero-knowledge choice);
* ``"centroid"`` — delete the points farthest from the centroid of Bob's
  own points in the cell (a heuristic that keeps cluster cores intact).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.grid import Cell, ShiftedGridHierarchy
from repro.emd.metrics import Point, distance
from repro.errors import ConfigError, ReconciliationFailure

REPAIR_STRATEGIES = ("occurrence", "centroid")


@dataclass
class RepairPlan:
    """The concrete edit script applied to Bob's set.

    Attributes
    ----------
    additions:
        Centre points inserted (one per Alice-surplus key).
    removals:
        Bob's own points deleted (one per Bob-surplus key).
    level:
        The grid level the difference was decoded at.
    """

    level: int
    additions: list[Point] = field(default_factory=list)
    removals: list[Point] = field(default_factory=list)


def _group_surplus(keys: list[int], grid: ShiftedGridHierarchy, level: int) -> dict[Cell, list[int]]:
    surplus: dict[Cell, list[int]] = {}
    for key in keys:
        cell, occurrence = grid.unpack_key(key, level)
        surplus.setdefault(cell, []).append(occurrence)
    return surplus


def plan_repair(
    bob_points: list[Point],
    alice_keys: list[int],
    bob_keys: list[int],
    grid: ShiftedGridHierarchy,
    level: int,
    strategy: str = "occurrence",
) -> RepairPlan:
    """Build the edit script for Bob's set from the decoded key difference.

    Raises
    ------
    ReconciliationFailure
        If a decoded Bob-surplus key does not correspond to a point Bob
        actually holds — the decode was corrupt.
    """
    if strategy not in REPAIR_STRATEGIES:
        raise ConfigError(
            f"strategy must be one of {REPAIR_STRATEGIES}, got {strategy!r}"
        )
    plan = RepairPlan(level=level)

    for cell, occurrences in _group_surplus(alice_keys, grid, level).items():
        centre = grid.center(cell, level)
        plan.additions.extend(centre for _ in occurrences)

    buckets = grid.bucket_points(bob_points, level)
    for cell, occurrences in _group_surplus(bob_keys, grid, level).items():
        bucket = buckets.get(cell)
        if bucket is None:
            raise ReconciliationFailure(
                f"decoded Bob-surplus key names empty cell {cell} at level {level}"
            )
        for occurrence in occurrences:
            if occurrence >= len(bucket):
                raise ReconciliationFailure(
                    f"decoded occurrence {occurrence} exceeds Bob's "
                    f"{len(bucket)} points in cell {cell}"
                )
        victims = _choose_victims(bucket, len(occurrences), strategy)
        plan.removals.extend(victims)
    return plan


def _choose_victims(bucket: list[Point], count: int, strategy: str) -> list[Point]:
    """Pick which of Bob's in-cell points the repair deletes."""
    if strategy == "occurrence":
        # The surplus ranks are always the top of the sorted bucket; deleting
        # the highest-ranked points mirrors the key enumeration exactly.
        return bucket[len(bucket) - count:]
    centroid = tuple(
        sum(point[i] for point in bucket) / len(bucket)
        for i in range(len(bucket[0]))
    )
    by_distance = sorted(
        bucket,
        key=lambda point: distance(
            point, tuple(round(c) for c in centroid), "l1"
        ),
    )
    return by_distance[len(bucket) - count:]


def apply_repair(bob_points: list[Point], plan: RepairPlan) -> list[Point]:
    """Apply an edit script, returning Bob's repaired set ``S'_B``.

    Removal is by identity-of-value with multiplicity (Bob's set is a
    multiset of points).
    """
    repaired = list(bob_points)
    for victim in plan.removals:
        try:
            repaired.remove(victim)
        except ValueError as exc:
            raise ReconciliationFailure(
                f"repair removal {victim} not present in Bob's set"
            ) from exc
    repaired.extend(plan.additions)
    return repaired
