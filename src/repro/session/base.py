"""The sans-I/O session contract every protocol variant implements.

A :class:`Session` is one endpoint of one protocol execution with **no
notion of transport**: it is handed the exact payload bytes the peer sent
(``feed``) and answers with the exact payload bytes to transmit
(:class:`OutboundMessage`), or with :class:`Done` when the exchange is
complete.  The same session object therefore runs unchanged over the
in-process :class:`~repro.net.channel.SimulatedChannel`, the asyncio
loopback channel, and real TCP (:mod:`repro.serve`) — and over any future
transport, because retries, framing, and concurrency live outside it.

State machine
-------------
``start()`` is called exactly once and yields the messages this endpoint
speaks unprompted (Alice's sketch in the one-round variants, Bob's
estimator request in the adaptive one; the passive side yields none).
Every peer payload is then passed to ``feed()``, which yields the next
outbound messages.  Both return :class:`Done` — carrying any final
outbound messages plus this endpoint's result — when the session needs no
further input.  Driving a session outside this contract (feeding before
start, feeding after :class:`Done`, reading ``result`` early) raises
:class:`~repro.errors.SessionError` rather than corrupting the exchange.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Union

from repro.errors import SessionError

#: Roles a session may play (who the endpoint is in the paper's exchange).
ROLES = ("alice", "bob")


@dataclass(frozen=True)
class OutboundMessage:
    """One payload this endpoint wants transmitted to its peer.

    Attributes
    ----------
    payload:
        The exact bytes to ship (what the peer's ``feed`` must receive).
    label:
        Human-readable transcript tag (e.g. ``"hierarchy-sketch"``);
        never transmitted, so it cannot affect wire compatibility.
    """

    payload: bytes
    label: str = ""


@dataclass(frozen=True)
class Done:
    """Terminal output of a session: final messages plus the result.

    Attributes
    ----------
    messages:
        Outbound messages to transmit before hanging up (may be empty).
    result:
        The endpoint's outcome — a
        :class:`~repro.core.protocol.ReconcileResult` /
        :class:`~repro.scale.engine.ShardedResult` on Bob's side, ``None``
        on Alice's (she learns nothing in these one-way repairs).
    """

    messages: tuple[OutboundMessage, ...] = ()
    result: object = None


#: What ``start``/``feed`` hand back: more messages (input still expected)
#: or the terminal :class:`Done`.
SessionOutput = Union[list[OutboundMessage], Done]


class Session(abc.ABC):
    """One endpoint of one protocol execution, free of any I/O.

    Subclasses set the class attributes and implement ``_start`` /
    ``_feed``; the base class enforces the state machine (single start,
    no input after :class:`Done`) so every implementation fails the same
    way on misuse.
    """

    #: Protocol variant name, shared with the serve-layer handshake.
    variant: str = ""
    #: ``"alice"`` or ``"bob"``.
    role: str = ""
    #: Transcript labels of the messages this endpoint *receives*, in
    #: order.  Lets transports record inbound payloads under the same
    #: labels a simulated run uses, keeping transcripts comparable.
    inbound_labels: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._started = False
        self._done = False
        self._result: object = None
        self._fed = 0

    # ------------------------------------------------------------- contract

    @property
    def started(self) -> bool:
        """True once ``start()`` has run."""
        return self._started

    @property
    def done(self) -> bool:
        """True once the session returned :class:`Done`."""
        return self._done

    @property
    def result(self) -> object:
        """The endpoint's outcome; only readable once :attr:`done`."""
        if not self._done:
            raise SessionError(
                f"{type(self).__name__} is not finished; no result yet"
            )
        return self._result

    def start(self) -> SessionOutput:
        """Begin the session; returns the messages spoken unprompted."""
        if self._started:
            raise SessionError(f"{type(self).__name__} already started")
        self._started = True
        return self._absorb(self._start())

    def feed(self, payload: bytes) -> SessionOutput:
        """Hand this endpoint one payload from its peer."""
        if not self._started:
            raise SessionError(
                f"{type(self).__name__}.feed() before start()"
            )
        if self._done:
            raise SessionError(
                f"{type(self).__name__} is complete; unexpected extra "
                f"message ({len(payload)} bytes) — duplicated or stray frame?"
            )
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            # memoryview included: zero-copy framing hands transports
            # buffer slices; bytes(payload) below copies them out before
            # the underlying buffer can be recycled.
            raise SessionError(
                f"session payloads must be bytes, got {type(payload).__name__}"
            )
        output = self._feed(bytes(payload))
        # Count the message only after _feed succeeds: inbound_label()
        # must keep labelling the in-flight message while it is being
        # processed (and a failed feed leaves the position unchanged).
        self._fed += 1
        return self._absorb(output)

    def inbound_label(self, index: int | None = None) -> str:
        """Transcript label for the ``index``-th received message.

        With no ``index``, labels the message currently being fed — or,
        between messages, the next one this endpoint expects.  Transports
        may therefore call it either immediately before or during
        ``feed()`` and record the same label.
        """
        index = self._fed if index is None else index
        if index < len(self.inbound_labels):
            return self.inbound_labels[index]
        return "message"

    def close(self) -> None:
        """Release any resources the session owns (idempotent; optional)."""

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- subclasses

    def _start(self) -> SessionOutput:
        """Messages this endpoint speaks before any input (default: none)."""
        return []

    @abc.abstractmethod
    def _feed(self, payload: bytes) -> SessionOutput:
        """Consume one peer payload; return the next output."""

    # ------------------------------------------------------------ internals

    def _absorb(self, out: SessionOutput) -> SessionOutput:
        if isinstance(out, Done):
            self._done = True
            self._result = out.result
        return out
