"""Sans-I/O sessions for the paper's one-round protocol.

Alice speaks once (the full hierarchy sketch) and is done; Bob consumes
that single message, repairs, and is done.  All protocol logic stays in
:class:`~repro.core.protocol.HierarchicalReconciler` — these classes only
adapt it to the :class:`~repro.session.base.Session` contract, so the
wire bytes are identical to a direct ``reconciler.encode`` call.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.protocol import HierarchicalReconciler
from repro.errors import SessionError
from repro.session.base import Done, OutboundMessage, Session, SessionOutput

#: Transcript label of Alice's single message (pre-dates the session layer).
SKETCH_LABEL = "hierarchy-sketch"


class OneRoundAliceSession(Session):
    """Alice's side: emit the hierarchy sketch, then done."""

    variant = "one-round"
    role = "alice"

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        reconciler: HierarchicalReconciler | None = None,
        encoded: bytes | None = None,
    ):
        super().__init__()
        self.config = config
        self._points = points
        self._reconciler = reconciler or HierarchicalReconciler(config)
        # Alice's message is a deterministic function of (config, points);
        # a caller serving many peers may inject the bytes once instead of
        # re-encoding per session (the serve layer does).
        self._encoded = encoded

    def _start(self) -> SessionOutput:
        payload = (
            self._encoded
            if self._encoded is not None
            else self._reconciler.encode(self._points)
        )
        return Done(messages=(OutboundMessage(payload, SKETCH_LABEL),))

    def _feed(self, payload: bytes) -> SessionOutput:
        raise SessionError("one-round Alice expects no inbound messages")


class OneRoundBobSession(Session):
    """Bob's side: consume the sketch, repair, surface the result."""

    variant = "one-round"
    role = "bob"
    inbound_labels = (SKETCH_LABEL,)

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        strategy: str = "occurrence",
        reconciler: HierarchicalReconciler | None = None,
    ):
        super().__init__()
        self.config = config
        self._points = points
        self._strategy = strategy
        self._reconciler = reconciler or HierarchicalReconciler(config)

    def _feed(self, payload: bytes) -> SessionOutput:
        result = self._reconciler.decode_and_repair(
            payload, self._points, self._strategy
        )
        return Done(result=result)
