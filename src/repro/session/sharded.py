"""Sans-I/O session for the sharded one-round protocol.

Wire-wise the sharded exchange has the one-round shape — Alice speaks one
(shard-framed) message, Bob repairs — so a single class covers both roles.
The session owns its :class:`~repro.scale.engine.ShardedReconciler` (and
therefore an executor pool) unless one is injected, and releases it via
``close()`` / context-manager exit.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.errors import SessionError
from repro.scale.engine import ShardedReconciler
from repro.session.base import Done, OutboundMessage, Session, SessionOutput

#: Transcript label of the shard-framed sketch (pinned by existing tests).
SHARDED_LABEL = "sharded-sketch"


class ShardedSession(Session):
    """Either endpoint of the sharded protocol, selected by ``role``."""

    variant = "sharded"

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        role: str,
        strategy: str = "occurrence",
        reconciler: ShardedReconciler | None = None,
        encoded: bytes | None = None,
    ):
        super().__init__()
        if role not in ("alice", "bob"):
            raise SessionError(f"role must be 'alice' or 'bob', got {role!r}")
        self.config = config
        self.role = role
        self.inbound_labels = () if role == "alice" else (SHARDED_LABEL,)
        self._points = points
        self._strategy = strategy
        self._owns_reconciler = reconciler is None
        self._reconciler = reconciler or ShardedReconciler(config)
        # Optional pre-encoded Alice payload (see OneRoundAliceSession).
        self._encoded = encoded

    def close(self) -> None:
        """Release the executor pool when this session created it."""
        if self._owns_reconciler:
            self._reconciler.close()

    def _start(self) -> SessionOutput:
        if self.role != "alice":
            return []
        payload = (
            self._encoded
            if self._encoded is not None
            else self._reconciler.encode(self._points)
        )
        return Done(messages=(OutboundMessage(payload, SHARDED_LABEL),))

    def _feed(self, payload: bytes) -> SessionOutput:
        if self.role == "alice":
            raise SessionError("sharded Alice expects no inbound messages")
        result = self._reconciler.decode_and_repair(
            payload, self._points, self._strategy
        )
        return Done(result=result)
