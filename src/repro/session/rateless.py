"""Sans-I/O sessions for the rateless streaming protocol.

A strict ping-pong: Alice opens with increment 0 and sends increment
``j+1`` for every CONTINUE ack; Bob feeds each increment into a resumable
:class:`~repro.iblt.decode.PeelState` and answers STOP the moment the
union of received segments peels to empty (or CONTINUE otherwise).  Both
sides enforce the shared ``max_increments`` cap with a typed
:class:`~repro.errors.ReconciliationFailure`, so an over-large difference
terminates loudly instead of streaming forever.  All protocol logic stays
in :class:`~repro.core.rateless.RatelessReconciler`; these classes only
adapt it to the :class:`~repro.session.base.Session` contract.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.rateless import (
    RatelessConfig,
    RatelessReconciler,
    ack_bytes,
    parse_ack,
)
from repro.errors import ReconciliationFailure
from repro.iblt.decode import PeelState
from repro.session.base import Done, OutboundMessage, Session, SessionOutput

#: Transcript labels — every Alice message is a cell increment, every Bob
#: message an ack, so both repeat for the life of the session.
CELLS_LABEL = "rateless-cells"
ACK_LABEL = "rateless-ack"


class RatelessResumeState:
    """Client-held survivor of an interrupted rateless sync.

    The rateless stream is the one protocol where a broken connection
    does not have to forfeit the transferred bytes: every increment Bob
    already fed lives on in his resumable
    :class:`~repro.iblt.decode.PeelState`.  This object carries exactly
    that across connection attempts — the peel state, the index of the
    next increment Bob expects, and the server-issued resume token — so
    a retrying client (:func:`repro.serve.resilience.resilient_sync`)
    can reconnect and receive only the *remaining* increments.

    Purely data, no I/O: the session mutates it as increments are fed;
    the transport reads :attr:`token` / :attr:`next_index` to build the
    resume request and stores the token the server hands back.
    """

    def __init__(self) -> None:
        self.token: str | None = None
        self.peel: PeelState | None = None
        self.next_index: int = 0
        self.completed: bool = False

    @property
    def in_progress(self) -> bool:
        """True when there is transferred work worth resuming."""
        return (
            not self.completed
            and self.token is not None
            and self.peel is not None
            and self.next_index > 0
        )

    def reset(self) -> None:
        """Drop all resume state (e.g. after a stale-token refusal)."""
        self.token = None
        self.peel = None
        self.next_index = 0
        self.completed = False


class RatelessAliceSession(Session):
    """Alice's side: stream increments until Bob says STOP.

    ``start_index`` makes the session open with increment ``k`` instead
    of 0 — the server's resume path: her increments are a deterministic
    function of (config, points, index), so continuing a broken stream
    needs no per-connection sketch state, only the index to speak next.

    ``increment_source`` is an optional compute seam: an
    ``index -> bytes`` callable replacing the inline
    ``alice_increment`` build.  The serve layer uses it to encode
    increments on a process pool over fork-shared state; the bytes must
    be identical to the inline path (same deterministic function, merely
    computed elsewhere).
    """

    variant = "rateless"
    role = "alice"

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        rateless: RatelessConfig | None = None,
        reconciler: RatelessReconciler | None = None,
        start_index: int = 0,
        increment_source=None,
    ):
        super().__init__()
        self.config = config
        self._points = points
        self._reconciler = reconciler or RatelessReconciler(config, rateless)
        cap = self._reconciler.rateless.max_increments
        if not 0 <= start_index < cap:
            raise ReconciliationFailure(
                f"cannot resume the rateless stream at increment "
                f"{start_index}; valid indices are 0..{cap - 1}"
            )
        self._sent = start_index
        self._increment_source = increment_source

    def _increment(self, index: int) -> bytes:
        if self._increment_source is not None:
            return self._increment_source(index)
        return self._reconciler.alice_increment(self._points, index)

    @property
    def sent_increments(self) -> int:
        """Absolute number of increments streamed so far (resume-aware):
        the next increment this session would send."""
        return self._sent

    def inbound_label(self, index: int | None = None) -> str:
        return ACK_LABEL

    def _start(self) -> SessionOutput:
        payload = self._increment(self._sent)
        self._sent += 1
        return [OutboundMessage(payload, CELLS_LABEL)]

    def _feed(self, payload: bytes) -> SessionOutput:
        if parse_ack(payload):
            return Done()
        cap = self._reconciler.rateless.max_increments
        if self._sent >= cap:
            raise ReconciliationFailure(
                f"peer still undecoded after the shared cap of {cap} "
                "rateless increments"
            )
        out = self._increment(self._sent)
        self._sent += 1
        return [OutboundMessage(out, CELLS_LABEL)]


class RatelessBobSession(Session):
    """Bob's side: peel incrementally, stop the instant decode succeeds."""

    variant = "rateless"
    role = "bob"

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        rateless: RatelessConfig | None = None,
        strategy: str = "occurrence",
        reconciler: RatelessReconciler | None = None,
        resume: RatelessResumeState | None = None,
    ):
        super().__init__()
        self.config = config
        self._points = points
        self._strategy = strategy
        self._reconciler = reconciler or RatelessReconciler(config, rateless)
        self._resume = resume
        if resume is not None and resume.in_progress:
            # Continue the interrupted stream: the peel state already
            # holds every segment fed before the connection died.
            self._state = resume.peel
            self._received = resume.next_index
        else:
            self._state = PeelState(strategy=config.decode_strategy)
            self._received = 0
            if resume is not None:
                resume.peel = self._state
                resume.next_index = 0
                resume.completed = False
        self._keys = None

    def inbound_label(self, index: int | None = None) -> str:
        return CELLS_LABEL

    def _feed(self, payload: bytes) -> SessionOutput:
        n_alice, alice_segment = self._reconciler.read_increment(
            payload, self._received
        )
        if self._keys is None:
            self._keys = self._reconciler.keys_for(self._points)
        bob_segment = self._reconciler.segment_table(self._keys, self._received)
        self._received += 1
        self._state.extend(alice_segment.subtract(bob_segment))
        if self._resume is not None:
            # Checkpoint only after the segment is fully absorbed: a feed
            # that raised mid-parse must leave the resume point unmoved.
            self._resume.next_index = self._received
        if self._state.failed:
            raise ReconciliationFailure(
                "rateless peel aborted: the stream decoded to an implausibly "
                "large difference (false-peel churn)"
            )
        if self._state.solved:
            peeled = self._state.result()
            balance = len(peeled.alice_keys) - len(peeled.bob_keys)
            if balance != n_alice - len(self._points):
                raise ReconciliationFailure(
                    "rateless decode is unbalanced: recovered "
                    f"{balance:+d} keys but the set sizes differ by "
                    f"{n_alice - len(self._points):+d}"
                )
            result = self._reconciler.bob_repair(
                self._points, peeled.alice_keys, peeled.bob_keys, self._strategy
            )
            if self._resume is not None:
                self._resume.completed = True
            return Done(
                messages=(OutboundMessage(ack_bytes(stop=True), ACK_LABEL),),
                result=result,
            )
        cap = self._reconciler.rateless.max_increments
        if self._received >= cap:
            raise ReconciliationFailure(
                f"rateless decode still incomplete after the cap of {cap} "
                "increments; the difference exceeds the configured stream "
                "budget (raise max_increments or initial_cells)"
            )
        return [OutboundMessage(ack_bytes(stop=False), ACK_LABEL)]
