"""Sans-I/O sessions for the rateless streaming protocol.

A strict ping-pong: Alice opens with increment 0 and sends increment
``j+1`` for every CONTINUE ack; Bob feeds each increment into a resumable
:class:`~repro.iblt.decode.PeelState` and answers STOP the moment the
union of received segments peels to empty (or CONTINUE otherwise).  Both
sides enforce the shared ``max_increments`` cap with a typed
:class:`~repro.errors.ReconciliationFailure`, so an over-large difference
terminates loudly instead of streaming forever.  All protocol logic stays
in :class:`~repro.core.rateless.RatelessReconciler`; these classes only
adapt it to the :class:`~repro.session.base.Session` contract.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.rateless import (
    RatelessConfig,
    RatelessReconciler,
    ack_bytes,
    parse_ack,
)
from repro.errors import ReconciliationFailure
from repro.iblt.decode import PeelState
from repro.session.base import Done, OutboundMessage, Session, SessionOutput

#: Transcript labels — every Alice message is a cell increment, every Bob
#: message an ack, so both repeat for the life of the session.
CELLS_LABEL = "rateless-cells"
ACK_LABEL = "rateless-ack"


class RatelessAliceSession(Session):
    """Alice's side: stream increments until Bob says STOP."""

    variant = "rateless"
    role = "alice"

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        rateless: RatelessConfig | None = None,
        reconciler: RatelessReconciler | None = None,
    ):
        super().__init__()
        self.config = config
        self._points = points
        self._reconciler = reconciler or RatelessReconciler(config, rateless)
        self._sent = 0

    def inbound_label(self, index: int | None = None) -> str:
        return ACK_LABEL

    def _start(self) -> SessionOutput:
        payload = self._reconciler.alice_increment(self._points, 0)
        self._sent = 1
        return [OutboundMessage(payload, CELLS_LABEL)]

    def _feed(self, payload: bytes) -> SessionOutput:
        if parse_ack(payload):
            return Done()
        cap = self._reconciler.rateless.max_increments
        if self._sent >= cap:
            raise ReconciliationFailure(
                f"peer still undecoded after the shared cap of {cap} "
                "rateless increments"
            )
        out = self._reconciler.alice_increment(self._points, self._sent)
        self._sent += 1
        return [OutboundMessage(out, CELLS_LABEL)]


class RatelessBobSession(Session):
    """Bob's side: peel incrementally, stop the instant decode succeeds."""

    variant = "rateless"
    role = "bob"

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        rateless: RatelessConfig | None = None,
        strategy: str = "occurrence",
        reconciler: RatelessReconciler | None = None,
    ):
        super().__init__()
        self.config = config
        self._points = points
        self._strategy = strategy
        self._reconciler = reconciler or RatelessReconciler(config, rateless)
        self._state = PeelState(strategy=config.decode_strategy)
        self._keys = None
        self._received = 0

    def inbound_label(self, index: int | None = None) -> str:
        return CELLS_LABEL

    def _feed(self, payload: bytes) -> SessionOutput:
        n_alice, alice_segment = self._reconciler.read_increment(
            payload, self._received
        )
        if self._keys is None:
            self._keys = self._reconciler.keys_for(self._points)
        bob_segment = self._reconciler.segment_table(self._keys, self._received)
        self._received += 1
        self._state.extend(alice_segment.subtract(bob_segment))
        if self._state.failed:
            raise ReconciliationFailure(
                "rateless peel aborted: the stream decoded to an implausibly "
                "large difference (false-peel churn)"
            )
        if self._state.solved:
            peeled = self._state.result()
            balance = len(peeled.alice_keys) - len(peeled.bob_keys)
            if balance != n_alice - len(self._points):
                raise ReconciliationFailure(
                    "rateless decode is unbalanced: recovered "
                    f"{balance:+d} keys but the set sizes differ by "
                    f"{n_alice - len(self._points):+d}"
                )
            result = self._reconciler.bob_repair(
                self._points, peeled.alice_keys, peeled.bob_keys, self._strategy
            )
            return Done(
                messages=(OutboundMessage(ack_bytes(stop=True), ACK_LABEL),),
                result=result,
            )
        cap = self._reconciler.rateless.max_increments
        if self._received >= cap:
            raise ReconciliationFailure(
                f"rateless decode still incomplete after the cap of {cap} "
                "increments; the difference exceeds the configured stream "
                "budget (raise max_increments or initial_cells)"
            )
        return [OutboundMessage(ack_bytes(stop=False), ACK_LABEL)]
