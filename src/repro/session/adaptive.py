"""Sans-I/O sessions for the two-round adaptive protocol.

Bob opens (the strided estimator request), Alice answers (the sized IBLT
window), Bob finishes.  As with the other variants, every byte is produced
by the existing :class:`~repro.core.adaptive.AdaptiveReconciler`, so
transcripts are identical to the pre-session code.
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveConfig, AdaptiveReconciler
from repro.core.config import ProtocolConfig
from repro.session.base import Done, OutboundMessage, Session, SessionOutput

#: Transcript labels (pre-date the session layer; pinned by golden tests).
REQUEST_LABEL = "adaptive-request"
WINDOW_LABEL = "adaptive-window"


class AdaptiveAliceSession(Session):
    """Alice's side: wait for the request, answer with the window, done.

    ``responder`` is an optional compute seam: a ``payload -> bytes``
    callable that replaces the inline ``alice_respond`` call.  The serve
    layer uses it to run the response build — the variant's only heavy
    step — on a process pool over fork-shared state; the bytes produced
    must be identical (the session stays deterministic and sans-I/O, the
    seam merely relocates the computation).
    """

    variant = "adaptive"
    role = "alice"
    inbound_labels = (REQUEST_LABEL,)

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        adaptive: AdaptiveConfig | None = None,
        reconciler: AdaptiveReconciler | None = None,
        responder=None,
    ):
        super().__init__()
        self.config = config
        self._points = points
        self._reconciler = reconciler or AdaptiveReconciler(config, adaptive)
        self._responder = responder

    def _feed(self, payload: bytes) -> SessionOutput:
        if self._responder is not None:
            response = self._responder(payload)
        else:
            response = self._reconciler.alice_respond(payload, self._points)
        return Done(messages=(OutboundMessage(response, WINDOW_LABEL),))


class AdaptiveBobSession(Session):
    """Bob's side: open with the request, finish on the window."""

    variant = "adaptive"
    role = "bob"
    inbound_labels = (WINDOW_LABEL,)

    def __init__(
        self,
        config: ProtocolConfig,
        points,
        adaptive: AdaptiveConfig | None = None,
        strategy: str = "occurrence",
        reconciler: AdaptiveReconciler | None = None,
    ):
        super().__init__()
        self.config = config
        self._points = points
        self._strategy = strategy
        self._reconciler = reconciler or AdaptiveReconciler(config, adaptive)

    def _start(self) -> SessionOutput:
        request = self._reconciler.bob_request(self._points)
        return [OutboundMessage(request, REQUEST_LABEL)]

    def _feed(self, payload: bytes) -> SessionOutput:
        result = self._reconciler.bob_finish(payload, self._points, self._strategy)
        return Done(result=result)
