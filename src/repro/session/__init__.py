"""Sans-I/O protocol session machines (the transport-independent layer).

Every protocol variant — one-round, adaptive, sharded, rateless — is
expressed as a
pair of :class:`~repro.session.base.Session` state machines that consume
and produce exact payload bytes with no transport attached.  The public
``reconcile*`` functions pump these sessions over the in-process
:class:`~repro.net.channel.SimulatedChannel`; :mod:`repro.serve` pumps
the *same objects* over asyncio loopback and TCP.  Anything that wants a
new transport (QUIC, gossip, retrying streams) builds on this seam.
"""

from repro.session.adaptive import AdaptiveAliceSession, AdaptiveBobSession
from repro.session.base import Done, OutboundMessage, Session
from repro.session.driver import pump, run_async
from repro.session.one_round import OneRoundAliceSession, OneRoundBobSession
from repro.session.rateless import (
    RatelessAliceSession,
    RatelessBobSession,
    RatelessResumeState,
)
from repro.session.sharded import ShardedSession

#: Variant names accepted by the session factories and the serve handshake.
VARIANTS = ("one-round", "adaptive", "sharded", "rateless")


def make_session(variant: str, role: str, config, points, **kwargs) -> Session:
    """Build the session for one endpoint of one variant.

    ``kwargs`` are forwarded to the variant's constructor (``strategy``,
    ``adaptive``, ``rateless``, ``reconciler``, and for the rateless
    variant ``start_index`` on Alice / ``resume`` on Bob).  Unknown
    variants raise
    :class:`~repro.errors.SessionError` so a bad handshake fails typed.
    """
    from repro.errors import SessionError

    if variant == "one-round":
        cls = OneRoundAliceSession if role == "alice" else OneRoundBobSession
        if role == "alice":
            kwargs.pop("strategy", None)
        return cls(config, points, **kwargs)
    if variant == "adaptive":
        cls = AdaptiveAliceSession if role == "alice" else AdaptiveBobSession
        if role == "alice":
            kwargs.pop("strategy", None)
        return cls(config, points, **kwargs)
    if variant == "sharded":
        return ShardedSession(config, points, role=role, **kwargs)
    if variant == "rateless":
        cls = RatelessAliceSession if role == "alice" else RatelessBobSession
        if role == "alice":
            kwargs.pop("strategy", None)
        return cls(config, points, **kwargs)
    raise SessionError(
        f"unknown protocol variant {variant!r}; expected one of {VARIANTS}"
    )


__all__ = [
    "AdaptiveAliceSession",
    "AdaptiveBobSession",
    "Done",
    "OneRoundAliceSession",
    "OneRoundBobSession",
    "OutboundMessage",
    "RatelessAliceSession",
    "RatelessBobSession",
    "RatelessResumeState",
    "Session",
    "ShardedSession",
    "VARIANTS",
    "make_session",
    "pump",
    "run_async",
]
