"""Drivers that pump sans-I/O sessions over in-process channels.

``pump`` is the synchronous driver the public ``reconcile*`` functions
are built on: it moves every :class:`~repro.session.base.OutboundMessage`
across a recording channel in FIFO order, which reproduces the exact
message order (and therefore transcript) of the pre-session code.

``run_async`` drives one endpoint over an asyncio
:class:`~repro.net.channel.LoopbackChannel`; two such tasks — one per
role — form a full in-process asynchronous exchange, the stepping stone
between the simulated channel and the TCP transport in
:mod:`repro.serve`.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SessionError
from repro.net.channel import Direction, LoopbackChannel, SimulatedChannel
from repro.session.base import Done, OutboundMessage, Session

#: Direction each role transmits in / receives from.
OUTBOUND_DIRECTION = {
    "alice": Direction.ALICE_TO_BOB,
    "bob": Direction.BOB_TO_ALICE,
}
INBOUND_DIRECTION = {
    "alice": Direction.BOB_TO_ALICE,
    "bob": Direction.ALICE_TO_BOB,
}


def outbound_messages(output) -> tuple[OutboundMessage, ...]:
    """The messages carried by a ``start``/``feed`` return value.

    The one place that knows how to drain a
    :data:`~repro.session.base.SessionOutput`; every driver (sync pump,
    asyncio loopback, TCP stream pump) uses it.
    """
    if isinstance(output, Done):
        return tuple(output.messages)
    return tuple(output)


def pump(
    alice: Session,
    bob: Session,
    channel: SimulatedChannel,
) -> tuple[object, object]:
    """Drive both endpoints to completion over one recording channel.

    Returns ``(alice.result, bob.result)``.  Raises
    :class:`~repro.errors.SessionError` if the exchange stalls — both
    sides waiting with no message in flight — so a broken session pairing
    fails loudly instead of deadlocking.
    """
    sessions = {"alice": alice, "bob": bob}
    in_flight: deque[tuple[str, OutboundMessage]] = deque()
    for role in ("alice", "bob"):
        for message in outbound_messages(sessions[role].start()):
            in_flight.append((role, message))
    while in_flight:
        sender, message = in_flight.popleft()
        delivered = channel.send(
            OUTBOUND_DIRECTION[sender], message.payload, message.label
        )
        receiver_role = "bob" if sender == "alice" else "alice"
        for reply in outbound_messages(sessions[receiver_role].feed(delivered)):
            in_flight.append((receiver_role, reply))
    if not (alice.done and bob.done):
        stuck = [r for r, s in sessions.items() if not s.done]
        raise SessionError(
            f"protocol stalled: no messages in flight but {', '.join(stuck)} "
            "still expect input"
        )
    return alice.result, bob.result


async def run_async(session: Session, channel: LoopbackChannel) -> object:
    """Drive one endpoint over an asyncio loopback channel to completion.

    Sends the session's outbound messages as they are produced and awaits
    inbound payloads until the session reports :class:`Done`; returns the
    session's result.  Run one task per role over a shared channel for a
    full exchange.
    """
    out_direction = OUTBOUND_DIRECTION[session.role]
    in_direction = INBOUND_DIRECTION[session.role]

    def ship(output) -> None:
        for message in outbound_messages(output):
            channel.send(out_direction, message.payload, message.label)

    ship(session.start())
    while not session.done:
        payload = await channel.receive(in_direction)
        ship(session.feed(payload))
    return session.result
