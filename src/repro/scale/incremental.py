"""Incrementally maintained *sharded* sketches.

A serving replica under heavy write traffic cannot re-encode its whole
dataset per sync.  :class:`ShardedIncrementalSketch` keeps one
:class:`~repro.core.incremental.IncrementalSketch` per shard, routed
through the shared :class:`~repro.scale.partition.SpacePartitioner` — so a
point insert or delete touches exactly one shard's tables (``O(log delta)``
IBLT updates, independent of the shard count), and shards can be owned by
different writer threads or tenants.

``encode()`` frames the per-shard messages exactly like
:meth:`~repro.scale.engine.ShardedReconciler.encode`; the produced bytes
are bit-identical to a from-scratch sharded encode of the same multiset.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.incremental import IncrementalSketch
from repro.emd.metrics import Point
from repro.scale.engine import shard_protocol_config
from repro.scale.partition import SpacePartitioner
from repro.scale.wire import write_frame, write_shard_sketch


class ShardedIncrementalSketch:
    """Alice-side sharded sketch state supporting point insert/delete.

    >>> config = ProtocolConfig(delta=256, dimension=1, k=2, seed=3, shards=2)
    >>> sketch = ShardedIncrementalSketch(config)
    >>> sketch.insert((10,))
    >>> sketch.insert((200,))
    >>> sketch.remove((10,))
    >>> sketch.n_points
    1
    """

    def __init__(self, config: ProtocolConfig):
        self.config = config
        self.partitioner = SpacePartitioner(config)
        self.grid = self.partitioner.grid
        shard_config = shard_protocol_config(config)
        self._shards = [
            IncrementalSketch(shard_config) for _ in range(config.shards)
        ]

    @property
    def n_points(self) -> int:
        """Total points across every shard."""
        return sum(shard.n_points for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Per-shard point counts (load-balance observability)."""
        return [shard.n_points for shard in self._shards]

    def shard_sketches(self) -> tuple[IncrementalSketch, ...]:
        """The per-shard incremental sketches, in shard order.

        The durable store's snapshot codec walks these to dump/restore
        per-level state; treat them as owned by this object.
        """
        return tuple(self._shards)

    def plan_insert(
        self, point: Point, pending: list[dict] | None = None
    ) -> tuple[int, list[tuple[int, int]]]:
        """Route a point to its shard and plan the insert there.

        Returns ``(shard_index, [(level, key), ...])``; ``pending`` is a
        list of per-shard batch overlays (see
        :meth:`~repro.core.incremental.IncrementalSketch.plan_insert`).
        """
        shard = self.partitioner.shard_of(point)
        overlay = None if pending is None else pending[shard]
        return shard, self._shards[shard].plan_insert(point, overlay)

    def plan_remove(
        self, point: Point, pending: list[dict] | None = None
    ) -> tuple[int, list[tuple[int, int]]]:
        """Route a point to its shard and plan the remove there."""
        shard = self.partitioner.shard_of(point)
        overlay = None if pending is None else pending[shard]
        return shard, self._shards[shard].plan_remove(point, overlay)

    def apply_delta(self, shard: int, level: int, key: int, sign: int) -> None:
        """Apply one planned key delta to one shard's tables."""
        self._shards[shard].apply_delta(level, key, sign)

    def key_bits(self, level: int) -> int:
        """Packed key width at ``level`` (identical across shards — the
        shards share one derived sub-config)."""
        return self._shards[0].grid.key_bits(level)

    def sketch_levels(self) -> tuple[int, ...]:
        """The levels every shard sketches, finest first."""
        return self._shards[0].config.sketch_levels

    def insert(self, point: Point) -> None:
        """Add one point — touches a single shard's tables."""
        self._shards[self.partitioner.shard_of(point)].insert(point)

    def remove(self, point: Point) -> None:
        """Remove one point of the multiset — touches a single shard."""
        self._shards[self.partitioner.shard_of(point)].remove(point)

    def insert_all(self, points) -> None:
        """Insert every point of an iterable.

        An initial load routes each shard's block through the per-shard
        bulk path (single grid pass + backend batch inserts).
        """
        if self.n_points == 0:
            for shard, block in zip(self._shards, self.partitioner.split(points)):
                shard.insert_all(block)
            return
        for point in points:
            self.insert(point)

    def encode(self) -> bytes:
        """The current sharded message (bit-identical to a fresh encode)."""
        return write_frame(
            self.config.shards,
            self.partitioner.level,
            [shard.n_points for shard in self._shards],
            [
                write_shard_sketch(shard.n_points, shard.level_sketches())
                for shard in self._shards
            ],
        )
