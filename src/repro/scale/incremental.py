"""Incrementally maintained *sharded* sketches.

A serving replica under heavy write traffic cannot re-encode its whole
dataset per sync.  :class:`ShardedIncrementalSketch` keeps one
:class:`~repro.core.incremental.IncrementalSketch` per shard, routed
through the shared :class:`~repro.scale.partition.SpacePartitioner` — so a
point insert or delete touches exactly one shard's tables (``O(log delta)``
IBLT updates, independent of the shard count), and shards can be owned by
different writer threads or tenants.

``encode()`` frames the per-shard messages exactly like
:meth:`~repro.scale.engine.ShardedReconciler.encode`; the produced bytes
are bit-identical to a from-scratch sharded encode of the same multiset.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.incremental import IncrementalSketch
from repro.emd.metrics import Point
from repro.scale.engine import shard_protocol_config
from repro.scale.partition import SpacePartitioner
from repro.scale.wire import write_frame, write_shard_sketch


class ShardedIncrementalSketch:
    """Alice-side sharded sketch state supporting point insert/delete.

    >>> config = ProtocolConfig(delta=256, dimension=1, k=2, seed=3, shards=2)
    >>> sketch = ShardedIncrementalSketch(config)
    >>> sketch.insert((10,))
    >>> sketch.insert((200,))
    >>> sketch.remove((10,))
    >>> sketch.n_points
    1
    """

    def __init__(self, config: ProtocolConfig):
        self.config = config
        self.partitioner = SpacePartitioner(config)
        self.grid = self.partitioner.grid
        shard_config = shard_protocol_config(config)
        self._shards = [
            IncrementalSketch(shard_config) for _ in range(config.shards)
        ]

    @property
    def n_points(self) -> int:
        """Total points across every shard."""
        return sum(shard.n_points for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Per-shard point counts (load-balance observability)."""
        return [shard.n_points for shard in self._shards]

    def insert(self, point: Point) -> None:
        """Add one point — touches a single shard's tables."""
        self._shards[self.partitioner.shard_of(point)].insert(point)

    def remove(self, point: Point) -> None:
        """Remove one point of the multiset — touches a single shard."""
        self._shards[self.partitioner.shard_of(point)].remove(point)

    def insert_all(self, points) -> None:
        """Insert every point of an iterable.

        An initial load routes each shard's block through the per-shard
        bulk path (single grid pass + backend batch inserts).
        """
        if self.n_points == 0:
            for shard, block in zip(self._shards, self.partitioner.split(points)):
                shard.insert_all(block)
            return
        for point in points:
            self.insert(point)

    def encode(self) -> bytes:
        """The current sharded message (bit-identical to a fresh encode)."""
        return write_frame(
            self.config.shards,
            self.partitioner.level,
            [shard.n_points for shard in self._shards],
            [
                write_shard_sketch(shard.n_points, shard.level_sketches())
                for shard in self._shards
            ],
        )
