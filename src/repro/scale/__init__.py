"""Sharded, multi-core reconciliation (the scale-out layer).

The one-round protocol is embarrassingly parallel across disjoint regions
of the point space: a :class:`SpacePartitioner` splits ``[delta]^d`` into
``S`` shards by coarse grid cell (deterministically from the public coins,
so both parties agree with no extra communication), and a
:class:`ShardedReconciler` runs one full hierarchy sub-protocol per shard,
encoding and decoding shards concurrently through a pluggable executor
(serial / thread / process pool).

Because shard boundaries follow the shared shifted grid, every fine-level
cell lies inside exactly one shard; each shard's sub-protocol therefore
sees a self-contained reconciliation instance and the merged repair is a
valid repair of the whole multiset.
"""

from repro.scale.engine import (
    ShardedReconciler,
    ShardedResult,
    reconcile_sharded,
)
from repro.scale.executors import ShardExecutor, make_executor
from repro.scale.incremental import ShardedIncrementalSketch
from repro.scale.partition import SpacePartitioner

__all__ = [
    "ShardedIncrementalSketch",
    "ShardedReconciler",
    "ShardedResult",
    "ShardExecutor",
    "SpacePartitioner",
    "make_executor",
    "reconcile_sharded",
]
