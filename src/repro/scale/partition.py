"""Deterministic space partitioning: coarse grid cell -> shard.

Both parties derive the same partition from the shared
:class:`~repro.core.config.ProtocolConfig` (public coins), so shard
membership costs zero communication.  The partition works on the *shifted*
grid at a coarse ``partition_level``: every level-``partition_level`` cell
is hashed to one of ``S`` shards.  Two properties follow:

* **agreement** — a point's shard depends only on its coordinates, the
  shared shift, and the shared seed; Alice and Bob always place matching
  points in the same shard;
* **nesting** — any grid cell at a level ``<= partition_level`` lies inside
  exactly one partition cell, hence one shard, so per-shard occurrence
  ranks of a fine cell equal the global ranks and the per-shard
  sub-protocols compose into a repair of the whole multiset.

Hashing cells (rather than block-assigning them) spreads spatially
clustered workloads across shards at the cost of shard locality, matching
how the IBLT itself randomises cell placement.
"""

from __future__ import annotations

import math
from typing import Sequence

try:  # numpy accelerates the batch shard pass; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.errors import BackendUnavailableError
from repro.emd.metrics import Point
from repro.iblt.hashing import hash_with_salt, splitmix64

#: Salt domain separating the shard hash from every other public-coin hash.
_SHARD_SALT = 0x5AADED

#: Target number of partition cells per shard.  More cells per shard means
#: better load balance under hash assignment (the per-shard load is a sum of
#: many small cell loads) but a finer partition level; 64 keeps the relative
#: load imbalance of a uniform workload around ``1/sqrt(64) ~ 12%``.
CELLS_PER_SHARD = 64


def partition_level(config: ProtocolConfig) -> int:
    """The coarse grid level whose cells are hashed to shards.

    Chosen as the coarsest level providing at least ``CELLS_PER_SHARD *
    shards`` cells (load balance), clamped to the grid's level range.  With
    ``shards == 1`` the partition is trivial and the level is the coarsest.
    """
    max_level = max(1, (config.delta - 1).bit_length())
    if config.shards == 1:
        return max_level
    wanted_bits = max(0, math.ceil(math.log2(CELLS_PER_SHARD * config.shards)))
    per_level_bits = config.dimension  # halving the side multiplies cells 2^d
    # Shifted coordinates span [0, 2^(max_level+1)), so level L offers
    # 2^(d * (max_level + 1 - L)) cells.
    level = max_level + 1 - math.ceil(wanted_bits / per_level_bits)
    return min(max_level, max(0, level))


class SpacePartitioner:
    """Point -> shard map shared by both parties (public coins only)."""

    def __init__(self, config: ProtocolConfig, grid: ShiftedGridHierarchy | None = None):
        self.config = config
        self.shards = config.shards
        if grid is None:
            shift = None if config.random_shift else (0,) * config.dimension
            grid = ShiftedGridHierarchy(
                config.delta, config.dimension, config.seed,
                config.occupancy_bits, shift=shift,
            )
        self.grid = grid
        self.level = partition_level(config)
        self._salt = config.seed ^ _SHARD_SALT
        # hash_with_salt(v, s) == splitmix64(splitmix64(s) ^ splitmix64(v));
        # pre-mix the salt once so the batch path pays two mixes per value.
        self._premixed_salt = splitmix64(self._salt)

    def shard_of(self, point: Point) -> int:
        """Shard index of one point."""
        if self.shards == 1:
            return 0
        cell_id = self.grid.cell_id(point, self.level)
        return hash_with_salt(cell_id, self._salt) % self.shards

    def shard_of_cell_key(self, cell_key: int) -> int:
        """Shard index of a packed partition-level cell id."""
        if self.shards == 1:
            return 0
        return hash_with_salt(cell_key, self._salt) % self.shards

    def shard_ids(self, points: Sequence[Point]) -> list[int]:
        """Shard index per point (scalar path; see :meth:`shard_id_array`)."""
        return [self.shard_of(point) for point in points]

    def shard_id_array(self, cell_keys: "_np.ndarray") -> "_np.ndarray":
        """Vectorized :meth:`shard_of_cell_key` over packed cell-id arrays.

        Bit-identical to the scalar path: ``hash_with_salt(value, salt)``
        is ``splitmix64(splitmix64(salt) ^ splitmix64(value))`` and uint64
        arithmetic reproduces the reference's explicit masking.
        """
        if _np is None:
            raise BackendUnavailableError("shard_id_array requires numpy")
        if self.shards == 1:
            return _np.zeros(cell_keys.shape[0], dtype=_np.int64)
        from repro.iblt.backends.vector import _splitmix64_vec

        mixed = _splitmix64_vec(
            _np.uint64(self._premixed_salt)
            ^ _splitmix64_vec(cell_keys.astype(_np.uint64))
        )
        return (mixed % _np.uint64(self.shards)).astype(_np.int64)

    def split(self, points: Sequence[Point]) -> list[list[Point]]:
        """Partition a point multiset into per-shard lists.

        Order within a shard follows the input order (the repaired multiset
        is order-insensitive; tests compare sorted).
        """
        if self.shards == 1:
            return [list(points)]
        if not isinstance(points, (list, tuple)):
            points = list(points)  # the id pass iterates, then zip re-iterates
        buckets: list[list[Point]] = [[] for _ in range(self.shards)]
        ids = self._shard_ids_fast(points)
        for point, shard in zip(points, ids):
            buckets[shard].append(point)
        return buckets

    def vector_partition(self, points: Sequence[Point]):
        """``(points_array, shard_id_array)`` — or ``None`` to fall back.

        The single vectorized shard-assignment pipeline; every batch caller
        (the engine's splitter, :meth:`split`) routes through here so shard
        placement cannot drift between paths.
        """
        if _np is None or self.grid.key_bits(self.level) > 63:
            return None
        array = self.grid.vector_points(points)
        if array is None:
            return None
        shifted = array + _np.asarray(self.grid.shift, dtype=_np.int64)
        cells = shifted >> self.level
        bits = self.grid.coord_bits(self.level)
        cell_key = cells[:, 0].copy()
        for column in range(1, self.grid.dimension):
            cell_key = (cell_key << bits) | cells[:, column]
        return array, self.shard_id_array(cell_key)

    def _shard_ids_fast(self, points: Sequence[Point]):
        """Per-point shard ids, vectorized when numpy can host the points."""
        vectorized = self.vector_partition(points)
        if vectorized is not None:
            return vectorized[1].tolist()
        return self.shard_ids(points)
