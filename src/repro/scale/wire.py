"""The per-shard sketch codec (wire format v2).

The v1 :class:`~repro.core.sketch.HierarchySketch` interleaves a varint
count with each cell's key/checksum fields, which forces field-at-a-time
(de)serialisation — at scale that is the protocol's single biggest CPU
cost.  The sharded frame version-bumps the payload to a **fixed-width
columnar cell layout**: every cell of a level spends exactly

.. code-block:: text

    count_width + key_bits + checksum_bits

bits (``count_width`` derived from the header's point count: a level holds
one key per point, so a cell's count never exceeds ``n_points``), and a
level's cells become one contiguous bit blob.  Fixed widths make the blob
a pure bit-matrix; the cell packing itself lives in the shared wire codec
(:mod:`repro.net.codec`), which packs and unpacks whole tables with
``packbits`` / ``unpackbits`` when numpy is available and writes the
*identical* bytes through the reference
:class:`~repro.net.bits.BitWriter` otherwise, keeping the wire
backend-independent.

Layout::

    magic      8 bits   (0xB7)
    version    8 bits   (2)
    n_points   varint
    n_levels   varint
    per level: level id (varint) + cell blob (length-prefixed bytes)

All fields are byte-aligned, so blobs move through the reader's bulk
slice path.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.sketch import HierarchySketch, LevelSketch, level_iblt_config
from repro.errors import SerializationError
from repro.iblt.table import IBLT
from repro.net.bits import BitReader, BitWriter
from repro.net.codec import decode_cells_fixed, encode_cells_fixed

SKETCH_MAGIC = 0xB7
SKETCH_VERSION = 2

#: Outer frame constants (the sharded message enclosing shard payloads).
SHARD_MAGIC = 0xB6
#: The sharded frame is the version-2 successor of the v1 single-sketch
#: message (:data:`repro.core.sketch.VERSION`).
SHARD_VERSION = 2


def write_frame(
    shards: int, partition_level: int, counts: list[int], payloads: list[bytes]
) -> bytes:
    """Frame per-shard payloads into one sharded message.

    The single authority for the outer layout — both the from-scratch
    encoder and the incremental sketch emit through here, which is what
    keeps their bytes bit-identical.
    """
    writer = BitWriter()
    writer.write_uint(SHARD_MAGIC, 8)
    writer.write_uint(SHARD_VERSION, 8)
    writer.write_varint(shards)
    writer.write_varint(partition_level)
    for count in counts:
        writer.write_varint(count)
    for payload in payloads:
        writer.write_bytes(payload)
    return writer.getvalue()


def count_width(n_points: int) -> int:
    """Bits per cell-count field: a level's table holds ``n_points`` keys,
    so a (zigzag-mapped) count never exceeds ``2 * n_points``."""
    return max(1, (2 * n_points).bit_length())


def _cell_blob(table: IBLT, width: int) -> bytes:
    """One level's cells as a fixed-width bit blob.

    Delegates to the shared codec (:mod:`repro.net.codec`): columnar
    ``packbits`` when numpy is available — whatever backend hosts the
    table — reference bit-writer otherwise; same bytes either way.
    """
    counts, key_sums, check_sums = table.rows_arrays()
    return encode_cells_fixed(
        counts, key_sums, check_sums,
        width, table.config.key_bits, table.config.checksum_bits,
    )


def _load_blob(
    blob: bytes, config, backend: str | None, width: int
) -> IBLT:
    """Rebuild one level's table from its fixed-width cell blob."""
    key_bits = config.key_bits
    check_bits = config.checksum_bits
    total = width + key_bits + check_bits
    expected = (config.cells * total + 7) // 8
    if len(blob) != expected:
        raise SerializationError(
            f"level blob holds {len(blob)} bytes, "
            f"{config.cells} cells need {expected}"
        )
    table = IBLT(config, backend=backend)
    counts, key_sums, check_sums = decode_cells_fixed(
        blob, config.cells, width, key_bits, check_bits
    )
    table._backend.load_rows(counts, key_sums, check_sums)
    return table


def write_shard_sketch(n_points: int, levels: list[LevelSketch]) -> bytes:
    """Serialise one shard's hierarchy sketch in the v2 columnar layout."""
    writer = BitWriter()
    writer.write_uint(SKETCH_MAGIC, 8)
    writer.write_uint(SKETCH_VERSION, 8)
    writer.write_varint(n_points)
    writer.write_varint(len(levels))
    width = count_width(n_points)
    for sketch in levels:
        writer.write_varint(sketch.level)
        writer.write_bytes(_cell_blob(sketch.table, width))
    return writer.getvalue()


def read_shard_sketch(
    data: bytes,
    config: ProtocolConfig,
    grid: ShiftedGridHierarchy,
) -> HierarchySketch:
    """Deserialise a v2 shard sketch, re-deriving per-level IBLT configs."""
    reader = BitReader(data)
    if reader.read_uint(8) != SKETCH_MAGIC:
        raise SerializationError("bad magic byte; not a shard sketch")
    if reader.read_uint(8) != SKETCH_VERSION:
        raise SerializationError("unsupported shard sketch version")
    n_points = reader.read_varint()
    width = count_width(n_points)
    if width > 63:
        raise SerializationError(
            f"shard sketch claims an implausible point count {n_points}"
        )
    n_levels = reader.read_varint()
    if n_levels > grid.max_level + 1:
        raise SerializationError(
            f"shard sketch claims {n_levels} levels, grid has "
            f"{grid.max_level + 1}"
        )
    levels: list[LevelSketch] = []
    seen: set[int] = set()
    for _ in range(n_levels):
        level = reader.read_varint()
        if not 0 <= level <= grid.max_level:
            raise SerializationError(f"level {level} out of range")
        if level in seen:
            raise SerializationError(f"shard sketch carries level {level} twice")
        seen.add(level)
        blob = reader.read_bytes()
        table_config = level_iblt_config(config, grid, level)
        levels.append(
            LevelSketch(
                level, _load_blob(blob, table_config, config.backend, width)
            )
        )
    reader.expect_end()
    return HierarchySketch(n_points=n_points, levels=levels)


def peek_n_points(data: bytes) -> int:
    """Read a shard payload's header point count (header-only, cheap)."""
    reader = BitReader(data)
    if reader.read_uint(8) != SKETCH_MAGIC:
        raise SerializationError("bad magic byte; not a shard sketch")
    if reader.read_uint(8) != SKETCH_VERSION:
        raise SerializationError("unsupported shard sketch version")
    return reader.read_varint()
