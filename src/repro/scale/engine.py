"""The sharded reconciliation engine.

A :class:`ShardedReconciler` splits the point space into ``S`` shards (see
:mod:`repro.scale.partition`), runs one full hierarchy sub-protocol per
shard, and frames the per-shard messages into a single wire payload:

.. code-block:: text

    magic            8 bits   (0xB6)
    version          8 bits   (2 — the sharded successor of the v1 frame)
    shards           varint   (must match the receiver's public coins)
    partition_level  varint   (ditto; rejects drifted configs early)
    directory        varint   per shard: |S_A ∩ shard|
    payloads         length-prefixed per-shard sketch bytes
                     (the v2 columnar codec, :mod:`repro.scale.wire`)

Each shard's payload is byte-aligned, so the receiver slices it out in one
``read_bytes`` and the shards decode independently — concurrently, through
the pluggable executor.  The merged repair is a valid repair of the whole
multiset because shard boundaries follow the shared shifted grid: a fine
cell lies in exactly one shard, so per-shard occurrence ranks equal global
ranks and per-shard edit scripts compose.

Per-shard sketches are sized to the *local* difference budget
(``ceil(k / S)``) rather than the global worst case, so total communication
stays ``O(k log delta)`` while every shard's tables shrink with ``S``.

Two implementations back the per-shard work, chosen per task:

* a **vectorized fast path** (numpy backend + int64-safe keys): one
  :class:`~repro.core.grid.VectorKeyPass` per shard feeds key arrays
  straight into the backend's batch kernels, the decoder reuses the pass
  across probed levels, and repair planning groups only the decoded
  surplus cells instead of bucketing every point;
* the **reference path**: the shard simply runs
  :class:`~repro.core.protocol.HierarchicalReconciler` as-is (always used
  without numpy; also the oracle the fast path is tested against).

Both produce bit-identical wire bytes and identical repairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

try:  # the engine runs (on the reference path) without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy, VectorKeyPass
from repro.core.protocol import HierarchicalReconciler
from repro.core.repair import RepairPlan, _choose_victims, _group_surplus, plan_repair
from repro.core.sketch import LevelSketch, build_level_sketches, level_iblt_config
from repro.emd.metrics import Point
from repro.errors import ReconciliationFailure, SerializationError
from repro.iblt.backends import available_backends
from repro.iblt.decode import decode
from repro.iblt.table import IBLT
from repro.net.bits import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.transcript import Transcript
from repro.scale.executors import ShardExecutor, make_executor
from repro.scale.partition import SpacePartitioner
from repro.scale.wire import (
    SHARD_MAGIC,
    SHARD_VERSION,
    peek_n_points,
    read_shard_sketch,
    write_frame,
    write_shard_sketch,
)


def shard_protocol_config(config: ProtocolConfig) -> ProtocolConfig:
    """The sub-protocol config every shard runs with.

    The local difference budget is ``ceil(k / shards)``: with the shard map
    hashing coarse cells, a difference of ``k`` points spreads across
    shards like balls into bins, and ``diff_margin`` already pays for the
    imbalance tail.  Everything geometric (delta, shift, levels) is shared
    so shard cells nest in the global grid.
    """
    if config.shards == 1:
        return config
    shard_k = max(1, -(-config.k // config.shards))
    return replace(config, k=shard_k, shards=1, workers=None, executor="serial")


def _effective_backend(config: ProtocolConfig) -> str:
    if config.backend != "auto":
        return config.backend
    return "numpy" if "numpy" in available_backends() else "pure"


@lru_cache(maxsize=32)
def _shard_reconciler(config: ProtocolConfig) -> HierarchicalReconciler:
    """Per-process cache: executor workers rebuild grids only once."""
    return HierarchicalReconciler(config)


# --------------------------------------------------------------- shard tasks
#
# Module-level functions over picklable arguments (configs, byte strings,
# point sequences), so the process executor can ship them to workers.


def _fast_pass(reconciler: HierarchicalReconciler, points) -> VectorKeyPass | None:
    """A vectorized key pass when this shard qualifies for the fast path."""
    config = reconciler.config
    if _effective_backend(config) != "numpy":
        return None
    grid = reconciler.grid
    if any(grid.key_bits(level) > 63 for level in config.sketch_levels):
        return None
    return grid.vector_key_pass(points)


def _encode_shard_task(args) -> bytes:
    config, points = args
    reconciler = _shard_reconciler(config)
    key_pass = _fast_pass(reconciler, points)
    grid = reconciler.grid
    if key_pass is None:
        point_list = _as_point_list(points)
        sketches = build_level_sketches(config, grid, point_list)
        return write_shard_sketch(len(point_list), sketches)
    sketches = []
    for level in config.sketch_levels:
        table = IBLT(
            level_iblt_config(config, grid, level), backend=config.backend
        )
        table.insert_many(key_pass.keys(level))
        sketches.append(LevelSketch(level, table))
    return write_shard_sketch(len(key_pass), sketches)


@dataclass
class _ShardDecode:
    """What one shard's decode task reports back (kept pickle-small)."""

    level: int
    levels_probed: list[int]
    plan: RepairPlan
    alice_surplus: int
    bob_surplus: int


def _decode_shard_task(args) -> _ShardDecode:
    config, payload, points, n_alice, strategy = args
    if peek_n_points(payload) != n_alice:
        raise SerializationError(
            "shard directory count disagrees with the shard payload header"
        )
    reconciler = _shard_reconciler(config)
    key_pass = _fast_pass(reconciler, points)
    point_list = None if key_pass is not None else _as_point_list(points)
    return _decode_parsed_shard(reconciler, payload, key_pass, point_list, strategy)


def _decode_parsed_shard(
    reconciler: HierarchicalReconciler,
    payload: bytes,
    key_pass: VectorKeyPass | None,
    point_list: list[Point] | None,
    strategy: str,
) -> _ShardDecode:
    """One shard's mirror of ``HierarchicalReconciler.decode_and_repair``.

    Same probe order, same balance check, same failure modes, over the v2
    shard payload.  With a key pass, per-probe re-hashing is replaced by
    cached key arrays and the planner touches only decoded surplus cells;
    without one (``point_list`` given) the reference table builder and
    planner run instead.
    """
    config, grid = reconciler.config, reconciler.grid
    n_bob = len(key_pass) if key_pass is not None else len(point_list)
    sketch = read_shard_sketch(payload, config, grid)
    by_level = {level_sketch.level: level_sketch for level_sketch in sketch.levels}
    levels = sorted(by_level)
    if not levels:
        raise ReconciliationFailure("shard sketch carries no levels")
    probed: list[int] = []
    outcomes = {}

    def attempt(level: int):
        if level not in outcomes:
            probed.append(level)
            alice_table = by_level[level].table
            if key_pass is not None:
                bob_table = IBLT(alice_table.config, backend=config.backend)
                bob_table.insert_many(key_pass.keys(level))
            else:
                bob_table = reconciler.level_table(
                    point_list, level, alice_table.config.cells
                )
            result = decode(
                alice_table.subtract(bob_table),
                max_items=config.decode_item_limit,
                strategy=config.decode_strategy,
            )
            if result.success and not HierarchicalReconciler._balanced(
                result, sketch.n_points, n_bob
            ):
                result.success = False  # checksum-evading false decode
            outcomes[level] = result
        return outcomes[level]

    chosen = HierarchicalReconciler._finest_decodable(levels, attempt, "binary")
    if chosen is None:
        raise ReconciliationFailure(
            f"no level of the hierarchy sketch decoded "
            f"(difference exceeds budget k={config.k}?)"
        )
    result = outcomes[chosen]
    if key_pass is not None:
        plan = _plan_repair_vectorized(
            key_pass, grid, chosen, result.alice_keys, result.bob_keys, strategy
        )
    else:
        plan = plan_repair(
            point_list, result.alice_keys, result.bob_keys, grid, chosen, strategy
        )
    return _ShardDecode(
        level=chosen,
        levels_probed=probed,
        plan=plan,
        alice_surplus=len(result.alice_keys),
        bob_surplus=len(result.bob_keys),
    )


def _plan_repair_vectorized(
    key_pass: VectorKeyPass,
    grid: ShiftedGridHierarchy,
    level: int,
    alice_keys: list[int],
    bob_keys: list[int],
    strategy: str,
) -> RepairPlan:
    """:func:`repro.core.repair.plan_repair` touching only surplus cells.

    The reference planner buckets *every* point at the chosen level; here
    the pass's cell-id array is argsorted once and each decoded surplus
    cell becomes a binary search + a slice.  Victim choice is identical:
    slices come out in the pass's coordinate-sorted order, the exact order
    the reference sorts buckets into.
    """
    plan = RepairPlan(level=level)
    for cell, occurrences in _group_surplus(alice_keys, grid, level).items():
        centre = grid.center(cell, level)
        plan.additions.extend(centre for _ in occurrences)
    if not bob_keys:
        return plan

    cell_keys = key_pass.cell_keys(level)
    by_cell = _np.argsort(cell_keys, kind="stable")
    sorted_cells = cell_keys[by_cell]
    occ_bits = grid.occupancy_bits
    for cell, occurrences in _group_surplus(bob_keys, grid, level).items():
        packed = grid.pack_key(cell, 0, level) >> occ_bits
        lo = int(_np.searchsorted(sorted_cells, packed, side="left"))
        hi = int(_np.searchsorted(sorted_cells, packed, side="right"))
        if hi == lo:
            raise ReconciliationFailure(
                f"decoded Bob-surplus key names empty cell {cell} at level {level}"
            )
        for occurrence in occurrences:
            if occurrence >= hi - lo:
                raise ReconciliationFailure(
                    f"decoded occurrence {occurrence} exceeds Bob's "
                    f"{hi - lo} points in cell {cell}"
                )
        count = len(occurrences)
        if strategy == "occurrence":
            victims = [
                key_pass.sorted_point(int(i)) for i in by_cell[hi - count:hi]
            ]
        else:
            bucket = [key_pass.sorted_point(int(i)) for i in by_cell[lo:hi]]
            victims = _choose_victims(bucket, count, strategy)
        plan.removals.extend(victims)
    return plan


def _as_point_list(points) -> list[Point]:
    """Materialise a task's point block as the tuple list the core expects."""
    if isinstance(points, list):
        return points
    return [tuple(row) for row in points.tolist()]


def _apply_plan(points: list[Point], plan: RepairPlan) -> list[Point]:
    """Multiset-equivalent of :func:`repro.core.repair.apply_repair`.

    One counting pass instead of a linear scan per removal — the reference
    applier costs O(removals x n), which dominates decode for large edit
    scripts.  Same failure mode when a victim is missing.
    """
    if not plan.removals:
        return list(points) + plan.additions
    pending: dict[Point, int] = {}
    for victim in plan.removals:
        pending[victim] = pending.get(victim, 0) + 1
    repaired: list[Point] = []
    for point in points:
        count = pending.get(point, 0)
        if count:
            pending[point] = count - 1
        else:
            repaired.append(point)
    for victim, count in pending.items():
        if count:
            raise ReconciliationFailure(
                f"repair removal {victim} not present in Bob's set"
            )
    repaired.extend(plan.additions)
    return repaired


# ------------------------------------------------------------------ results


@dataclass
class ShardedResult:
    """Merged outcome of a sharded reconciliation run.

    Mirrors :class:`~repro.core.protocol.ReconcileResult` where it can;
    per-shard detail lives in the extra fields.
    """

    repaired: list[Point]
    shard_levels: list[int]
    alice_surplus: int
    bob_surplus: int
    plans: list[RepairPlan]
    levels_probed: list[list[int]] = field(default_factory=list)
    transcript: Transcript | None = None

    @property
    def level(self) -> int:
        """Coarsest level any shard repaired at (bounds the error radius)."""
        return max(self.shard_levels, default=0)

    @property
    def exact(self) -> bool:
        """True when every shard repaired at level 0 (centres are exact)."""
        return all(level == 0 for level in self.shard_levels)

    @property
    def plan(self) -> RepairPlan:
        """All shard edit scripts merged (level = the coarsest used)."""
        merged = RepairPlan(level=self.level)
        for plan in self.plans:
            merged.additions.extend(plan.additions)
            merged.removals.extend(plan.removals)
        return merged


# ------------------------------------------------------------------- engine


class ShardedReconciler:
    """Both endpoints of the sharded one-round protocol.

    Usable as a context manager; :meth:`close` releases the executor pool.
    The executor is built lazily from ``config.executor`` / ``config.workers``
    on first use, so constructing the reconciler stays cheap.
    """

    def __init__(self, config: ProtocolConfig):
        self.config = config
        self.partitioner = SpacePartitioner(config)
        self.grid = self.partitioner.grid
        self.shard_config = shard_protocol_config(config)
        self._executor: ShardExecutor | None = None

    # ------------------------------------------------------------ lifecycle

    @property
    def executor(self) -> ShardExecutor:
        """The shard executor (built on first use)."""
        if self._executor is None:
            self._executor = make_executor(
                self.config.executor,
                self.config.workers,
                self.config.shards,
                _effective_backend(self.config),
            )
        return self._executor

    def close(self) -> None:
        """Shut the executor pool down (idempotent)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "ShardedReconciler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- partitioning

    def _split_blocks(self, points, want_lists: bool):
        """Per-shard point blocks: numpy slices on the fast path, lists off it.

        Returns ``(blocks, lists)`` where ``blocks`` feed shard tasks and
        ``lists`` (same multisets, or ``None`` unless requested) feed the
        merge step.
        """
        if not isinstance(points, (list, tuple)):
            points = list(points)
        shards = self.config.shards
        if shards == 1:
            block = list(points)
            return [block], ([block] if want_lists else None)
        vectorized = self.partitioner.vector_partition(points)
        if vectorized is not None:
            array, ids = vectorized
            order = _np.argsort(ids, kind="stable")
            bounds = _np.searchsorted(ids[order], _np.arange(shards + 1))
            blocks = [
                array[order[bounds[s]:bounds[s + 1]]] for s in range(shards)
            ]
            lists = None
            if want_lists:
                lists = [
                    [tuple(row) for row in block.tolist()] for block in blocks
                ]
            return blocks, lists
        lists = self.partitioner.split(points)
        return lists, (lists if want_lists else None)

    # ------------------------------------------------------------- Alice

    def encode(self, points) -> bytes:
        """Alice's single message: the shard directory plus every shard."""
        blocks, _ = self._split_blocks(points, want_lists=False)
        payloads = self.executor.map(
            _encode_shard_task,
            [(self.shard_config, block) for block in blocks],
        )
        return write_frame(
            self.config.shards,
            self.partitioner.level,
            [len(block) for block in blocks],
            payloads,
        )

    # --------------------------------------------------------------- Bob

    def parse_frame(self, payload: bytes) -> tuple[list[int], list[bytes]]:
        """Split a sharded frame into per-shard point counts and payloads."""
        reader = BitReader(payload)
        if reader.read_uint(8) != SHARD_MAGIC:
            raise SerializationError("bad magic byte; not a sharded sketch")
        if reader.read_uint(8) != SHARD_VERSION:
            raise SerializationError("unsupported sharded sketch version")
        shards = reader.read_varint()
        if shards != self.config.shards:
            raise SerializationError(
                f"sharded sketch carries {shards} shards, config says "
                f"{self.config.shards}"
            )
        level = reader.read_varint()
        if level != self.partitioner.level:
            raise SerializationError(
                f"sharded sketch partitioned at level {level}, config derives "
                f"{self.partitioner.level}"
            )
        counts = [reader.read_varint() for _ in range(shards)]
        payloads = [reader.read_bytes() for _ in range(shards)]
        reader.expect_end()
        return counts, payloads

    def decode_and_repair(
        self, payload: bytes, bob_points, strategy: str = "occurrence"
    ) -> ShardedResult:
        """Bob's side: decode every shard, merge the edit scripts."""
        counts, payloads = self.parse_frame(payload)
        blocks, lists = self._split_blocks(bob_points, want_lists=True)
        shard_results = self.executor.map(
            _decode_shard_task,
            [
                (self.shard_config, shard_payload, block, n_alice, strategy)
                for shard_payload, block, n_alice in zip(payloads, blocks, counts)
            ],
        )
        repaired: list[Point] = []
        for shard_points, shard in zip(lists, shard_results):
            repaired.extend(_apply_plan(shard_points, shard.plan))
        return ShardedResult(
            repaired=repaired,
            shard_levels=[shard.level for shard in shard_results],
            alice_surplus=sum(s.alice_surplus for s in shard_results),
            bob_surplus=sum(s.bob_surplus for s in shard_results),
            plans=[shard.plan for shard in shard_results],
            levels_probed=[shard.levels_probed for shard in shard_results],
        )


def reconcile_sharded(
    alice_points,
    bob_points,
    config: ProtocolConfig,
    channel: SimulatedChannel | None = None,
    strategy: str = "occurrence",
) -> ShardedResult:
    """Run a complete sharded one-round exchange over a (simulated) channel.

    A thin driver pumping a pair of :class:`~repro.session.ShardedSession`
    machines (:mod:`repro.session`) over the channel.  A caller-supplied
    channel is left open for reuse; the transcript covers this run's
    messages only.

    >>> config = ProtocolConfig(delta=256, dimension=1, k=2, seed=7, shards=2)
    >>> result = reconcile_sharded([(10,), (200,)], [(11,), (200,)], config)
    >>> len(result.repaired)
    2
    """
    # Lazy import: repro.session layers above this module.
    from repro.session import ShardedSession, pump

    owns_channel = channel is None
    channel = channel if channel is not None else SimulatedChannel()
    first_message = len(channel.messages)
    # One shared engine (grid + executor pool) for both endpoints, as the
    # pre-session code had; injected reconcilers are not closed by sessions.
    with ShardedReconciler(config) as reconciler:
        alice = ShardedSession(
            config, alice_points, role="alice", reconciler=reconciler
        )
        bob = ShardedSession(
            config, bob_points, role="bob", strategy=strategy,
            reconciler=reconciler,
        )
        _, result = pump(alice, bob, channel)
    if owns_channel:
        channel.close()
    result.transcript = Transcript.from_messages(channel.messages[first_message:])
    return result
