"""Pluggable shard executors: serial, thread pool, process pool.

The sharded engine maps one task per shard over an executor.  Which kind
wins depends on the machine and the IBLT backend:

* ``serial`` — no concurrency, no overhead.  The right choice on
  single-core machines and for small shards, and always a valid fallback.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Pays no
  serialization cost; useful with the numpy backend, whose batch kernels
  release the GIL for parts of their work.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``fork`` start method where available, so workers inherit the loaded
  library instead of re-importing it).  True multi-core parallelism for the
  pure-Python backend at the cost of shipping shard inputs and results
  between processes; the engine keeps those picklable and small.
* ``auto`` — ``serial`` on one core; otherwise ``thread`` for the numpy
  backend and ``process`` for the pure one.

Executors are private to each party (they never affect the wire), mirror
the ``backend`` selection philosophy, and are constructed lazily so a
:class:`~repro.core.config.ProtocolConfig` stays cheap to build.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")
R = TypeVar("R")


def default_workers(shards: int) -> int:
    """Executor width when the config leaves ``workers`` unset."""
    return max(1, min(shards, os.cpu_count() or 1))


class ShardExecutor:
    """Minimal executor interface the sharded engine relies on."""

    kind = "serial"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every task, preserving task order."""
        return [fn(task) for task in tasks]

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Run shard tasks inline, in order."""

    kind = "serial"


class ThreadExecutor(ShardExecutor):
    """Run shard tasks on a shared thread pool."""

    kind = "thread"

    def __init__(self, workers: int):
        self._pool = ThreadPoolExecutor(max_workers=workers)

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return list(self._pool.map(fn, tasks))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor(ShardExecutor):
    """Run shard tasks on a process pool (``fork`` where the OS offers it).

    Task functions and arguments must be picklable; the engine's shard
    tasks are module-level functions over configs, byte strings, and point
    sequences.
    """

    kind = "process"

    def __init__(self, workers: int):
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return list(self._pool.map(fn, tasks))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _auto_kind(backend: str) -> str:
    if (os.cpu_count() or 1) <= 1:
        return "serial"
    # The numpy kernels release the GIL for part of their work and threads
    # skip all pickling; the pure backend only scales across processes.
    return "thread" if backend == "numpy" else "process"


def make_executor(
    kind: str, workers: int | None, shards: int, backend: str = "auto"
) -> ShardExecutor:
    """Build the executor a config asks for.

    ``kind="auto"`` resolves from the machine and backend (see module
    docstring); explicit kinds are honoured as-is.
    """
    if kind == "auto":
        kind = _auto_kind(backend)
    if kind not in ("serial", "thread", "process"):
        raise ConfigError(f"unknown executor kind {kind!r}")
    resolved_workers = workers if workers is not None else default_workers(shards)
    if kind == "serial" or (resolved_workers <= 1 and kind == "thread"):
        # A one-worker thread pool is pure overhead; a one-worker process
        # pool is honoured (callers may want the isolation).
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(resolved_workers)
    return ProcessExecutor(resolved_workers)


def executors_available() -> tuple[str, ...]:
    """Executor kinds constructible on this machine (for CLI help/info)."""
    kinds = ["serial", "thread"]
    try:
        # Process pools need working multiprocessing synchronisation
        # primitives (sem_open); sandboxes without them fail this import.
        import multiprocessing.synchronize  # noqa: F401
    except ImportError:  # pragma: no cover - platform-specific
        return tuple(kinds)
    kinds.append("process")
    return tuple(kinds)
