"""Pluggable shard executors: serial, thread pool, process pool.

The sharded engine maps one task per shard over an executor.  Which kind
wins depends on the machine and the IBLT backend:

* ``serial`` — no concurrency, no overhead.  The right choice on
  single-core machines and for small shards, and always a valid fallback.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Pays no
  serialization cost; useful with the numpy backend, whose batch kernels
  release the GIL for parts of their work.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``fork`` start method where available, so workers inherit the loaded
  library instead of re-importing it).  True multi-core parallelism for the
  pure-Python backend at the cost of shipping shard inputs and results
  between processes; the engine keeps those picklable and small.
* ``auto`` — ``serial`` on one core; otherwise ``thread`` for the numpy
  backend and ``process`` for the pure one.

Executors are private to each party (they never affect the wire), mirror
the ``backend`` selection philosophy, and are constructed lazily so a
:class:`~repro.core.config.ProtocolConfig` stays cheap to build.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")
R = TypeVar("R")


def default_workers(shards: int) -> int:
    """Executor width when the config leaves ``workers`` unset."""
    return max(1, min(shards, os.cpu_count() or 1))


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX).  Both the
    copy-on-write process pool below and the serve layer's pre-fork
    worker pool require it."""
    return "fork" in multiprocessing.get_all_start_methods()


class ShardExecutor:
    """Minimal executor interface the sharded engine relies on.

    ``map`` is the engine's bulk path; ``submit`` is the single-task path
    the serve layer's off-loop session offload uses (it bridges the
    returned :class:`~concurrent.futures.Future` onto asyncio with
    ``asyncio.wrap_future``, so the interface stays I/O-free here).
    """

    kind = "serial"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every task, preserving task order."""
        return [fn(task) for task in tasks]

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Run one task; returns a :class:`~concurrent.futures.Future`.

        The serial base runs inline and hands back an already-resolved
        future, so callers can treat every executor kind uniformly.
        """
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 — futures carry any error
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Run shard tasks inline, in order."""

    kind = "serial"


class ThreadExecutor(ShardExecutor):
    """Run shard tasks on a shared thread pool."""

    kind = "thread"

    def __init__(self, workers: int):
        self._pool = ThreadPoolExecutor(max_workers=workers)

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return list(self._pool.map(fn, tasks))

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor(ShardExecutor):
    """Run shard tasks on a process pool (``fork`` where the OS offers it).

    Task functions and arguments must be picklable; the engine's shard
    tasks are module-level functions over configs, byte strings, and point
    sequences.

    Under the ``fork`` start method the pool's children inherit the
    parent's state at *pool creation time* copy-on-write — the serve
    layer exploits this by installing its immutable core in a module
    global before building the pool, so offloaded calls reference heavy
    state by name instead of pickling it per task.
    """

    kind = "process"

    def __init__(self, workers: int):
        context = multiprocessing.get_context(
            "fork" if fork_available() else None
        )
        self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return list(self._pool.map(fn, tasks))

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _auto_kind(backend: str) -> str:
    if (os.cpu_count() or 1) <= 1:
        return "serial"
    # The numpy kernels release the GIL for part of their work and threads
    # skip all pickling; the pure backend only scales across processes.
    return "thread" if backend == "numpy" else "process"


def make_executor(
    kind: str, workers: int | None, shards: int, backend: str = "auto"
) -> ShardExecutor:
    """Build the executor a config asks for.

    ``kind="auto"`` resolves from the machine and backend (see module
    docstring); explicit kinds are honoured as-is.
    """
    if kind == "auto":
        kind = _auto_kind(backend)
    if kind not in ("serial", "thread", "process"):
        raise ConfigError(f"unknown executor kind {kind!r}")
    resolved_workers = workers if workers is not None else default_workers(shards)
    if kind == "serial" or (resolved_workers <= 1 and kind == "thread"):
        # A one-worker thread pool is pure overhead; a one-worker process
        # pool is honoured (callers may want the isolation).
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(resolved_workers)
    return ProcessExecutor(resolved_workers)


def executors_available() -> tuple[str, ...]:
    """Executor kinds constructible on this machine (for CLI help/info)."""
    kinds = ["serial", "thread"]
    try:
        # Process pools need working multiprocessing synchronisation
        # primitives (sem_open); sandboxes without them fail this import.
        import multiprocessing.synchronize  # noqa: F401
    except ImportError:  # pragma: no cover - platform-specific
        return tuple(kinds)
    kinds.append("process")
    return tuple(kinds)
