"""repro — Robust Set Reconciliation (SIGMOD 2014), reproduced in Python.

Two parties hold point multisets in ``[Δ]^d`` that are *almost* equal —
most points are noisy duplicates, a few are genuinely different.  This
library implements the paper's randomly-offset-quadtree + IBLT protocol,
which repairs Bob's set to within ``O(d) · EMD_k`` of Alice's using
``Õ(k)`` communication, together with every substrate it stands on and
the exact-reconciliation baselines it is evaluated against.

Quickstart
----------
>>> from repro import ProtocolConfig, reconcile
>>> config = ProtocolConfig(delta=1024, dimension=2, k=4, seed=42)
>>> alice = [(100, 100), (500, 501), (900, 4)]
>>> bob = [(100, 101), (500, 500), (700, 700)]
>>> result = reconcile(alice, bob, config)
>>> len(result.repaired) == len(bob)
True

Backends
--------
IBLT cell storage is pluggable (:mod:`repro.iblt.backends`): the pure-Python
reference (``"pure"``, always available) and a numpy-vectorized engine
(``"numpy"``, an optional extra: ``pip install repro[numpy]``).  Select one
with ``ProtocolConfig(backend=...)``, per table with ``IBLT(config,
backend=...)``, or on the CLI with ``--backend``; the default ``"auto"``
uses the fastest available engine and falls back to pure.  All backends are
bit-compatible on the wire — the numpy one is ~an order of magnitude faster
on batch work (sketch construction, subtract, decode) for large inputs.
Custom engines register via
:func:`repro.iblt.backends.register_backend`.

Scaling out
-----------
The sharded engine (:mod:`repro.scale`) splits the point space into
``ProtocolConfig(shards=S)`` deterministic spatial shards, runs one
sub-protocol per shard through a pluggable serial / thread / process
executor, and merges the per-shard repairs — bounded per-shard memory,
multi-core encode/decode, and per-shard sketch sizing.  See
:func:`repro.scale.reconcile_sharded` and
:class:`repro.scale.ShardedIncrementalSketch`.

Serving over a network
----------------------
Every protocol variant — one-round, adaptive, sharded, and the rateless
stream (:func:`repro.core.rateless.reconcile_rateless`, whose bytes track
the *true* difference size with no estimation round) — is a sans-I/O
session state machine
(:mod:`repro.session`); the ``reconcile*`` functions are thin drivers
pumping those sessions over a simulated channel.
:mod:`repro.serve` pumps the same sessions over real TCP: an asyncio
server (Alice) with a handshake, bounded session concurrency, and
per-session stats, plus an async client (Bob) — wire bytes identical to
the simulated runs.  CLI: ``python -m repro serve`` / ``repro sync``.

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
reproduced evaluation.
"""

from repro.core.adaptive import AdaptiveConfig, AdaptiveReconciler, reconcile_adaptive
from repro.iblt.backends import available_backends, register_backend
from repro.core.broadcast import BroadcastReport, broadcast_reconcile
from repro.core.config import ProtocolConfig
from repro.core.grid import ShiftedGridHierarchy
from repro.core.incremental import IncrementalSketch
from repro.core.protocol import HierarchicalReconciler, ReconcileResult, reconcile
from repro.core.rateless import RatelessConfig, RatelessReconciler, reconcile_rateless
from repro.emd import emd, emd_1d, emd_k
from repro.errors import (
    BackendUnavailableError,
    CapacityExceeded,
    ChannelError,
    ConfigError,
    DecodeFailure,
    ReconciliationFailure,
    ReproError,
    RetryExhaustedError,
    SerializationError,
    ServerOverloadedError,
    SessionError,
    StaleResumeTokenError,
    StoreCorruptError,
    StoreError,
    SyncRefusedError,
)
from repro.net.channel import Direction, LoopbackChannel, SimulatedChannel
from repro.net.transcript import Transcript
from repro.scale import (
    ShardedIncrementalSketch,
    ShardedReconciler,
    ShardedResult,
    SpacePartitioner,
    reconcile_sharded,
)

__version__ = "1.1.0"

__all__ = [
    "AdaptiveConfig",
    "AdaptiveReconciler",
    "BackendUnavailableError",
    "BroadcastReport",
    "CapacityExceeded",
    "IncrementalSketch",
    "broadcast_reconcile",
    "ChannelError",
    "ConfigError",
    "DecodeFailure",
    "Direction",
    "HierarchicalReconciler",
    "LoopbackChannel",
    "ProtocolConfig",
    "RatelessConfig",
    "RatelessReconciler",
    "ReconcileResult",
    "ReconciliationFailure",
    "ReproError",
    "RetryExhaustedError",
    "SerializationError",
    "ServerOverloadedError",
    "SessionError",
    "StaleResumeTokenError",
    "StoreCorruptError",
    "StoreError",
    "SyncRefusedError",
    "ShardedIncrementalSketch",
    "ShardedReconciler",
    "ShardedResult",
    "ShiftedGridHierarchy",
    "SimulatedChannel",
    "SpacePartitioner",
    "Transcript",
    "available_backends",
    "register_backend",
    "emd",
    "emd_1d",
    "emd_k",
    "reconcile",
    "reconcile_adaptive",
    "reconcile_rateless",
    "reconcile_sharded",
    "__version__",
]
