"""The append-only write-ahead log: CRC-framed key-delta records.

One record per insert/remove **batch**, so a point update costs
``O(levels)`` logged deltas — cells touched, never tables.  Each delta
is a packed protocol key ``(cell_id << occupancy_bits) | rank`` with a
±1 sign; applying it is one IBLT cell update per hash row plus one
count assignment, and the cell algebra (counts add, sums xor) makes
deltas to *different* cells commutative — replay order only matters
within one cell's rank chain, which a record preserves by construction.

Record layout (byte-aligned, appended verbatim)::

    magic 0xCB | version | generation varint | kind | payload bytes
    (varint length + data) | CRC32 (4 bytes, big-endian, over all
    preceding record bytes)

The generation tags which snapshot epoch a record extends: recovery
replays only records matching the loaded snapshot's generation and
skips older ones (their effects are already inside the snapshot).  A
scan stops at the first record that fails to frame or checksum — the
torn tail a mid-append crash leaves — and reports the clean prefix
length so recovery can truncate it.

Delta payloads (``KIND_DELTAS``) pack per-``(shard, level)`` groups
with the shared columnar codec: signs ride the zigzag count column,
keys the key column, at the exact per-level key width the sketch
derives — the same bit layout discipline as the wire format.
"""

from __future__ import annotations

import zlib

from repro.errors import SerializationError, StoreCorruptError
from repro.net.bits import BitReader, BitWriter
from repro.net.codec import decode_cells_fixed, encode_cells_fixed

WAL_MAGIC = 0xCB
WAL_VERSION = 1

#: Record kinds.  One today; the byte exists so future record types
#: (per-peer watermarks, tombstones) extend the log without reframing.
KIND_DELTAS = 1

#: Width of the zigzag-encoded ±1 sign column (zigzag(+1)=2, zigzag(-1)=1).
_SIGN_BITS = 2
#: Unused checksum column (the codec requires one; 1 bit of zeros).
_PAD_BITS = 1


def encode_record(generation: int, kind: int, payload: bytes) -> bytes:
    """Frame one WAL record (header + payload + trailing CRC32)."""
    writer = BitWriter()
    writer.write_uint(WAL_MAGIC, 8)
    writer.write_uint(WAL_VERSION, 8)
    writer.write_varint(generation)
    writer.write_uint(kind, 8)
    writer.write_bytes(payload)
    body = writer.getvalue()
    return body + zlib.crc32(body).to_bytes(4, "big")


def scan_records(data: bytes) -> tuple[list[tuple[int, int, bytes]], int]:
    """Parse every clean record; stop at the first torn/corrupt byte.

    Returns ``([(generation, kind, payload), ...], clean_length)`` where
    ``clean_length`` is the byte offset just past the last record that
    framed and checksummed — everything beyond it is the torn tail a
    crash left, and recovery truncates it.  Never raises on bad bytes:
    a WAL tail cannot be "corrupt beyond recovery", only short.
    """
    records: list[tuple[int, int, bytes]] = []
    offset = 0
    total = len(data)
    while offset < total:
        reader = BitReader(data[offset:])
        try:
            if reader.read_uint(8) != WAL_MAGIC:
                break
            if reader.read_uint(8) != WAL_VERSION:
                break
            generation = reader.read_varint()
            kind = reader.read_uint(8)
            payload = reader.read_bytes()
        except SerializationError:
            break
        body_len = reader.bits_consumed // 8
        end = offset + body_len + 4
        if end > total:
            break
        crc = int.from_bytes(data[offset + body_len:end], "big")
        if crc != zlib.crc32(data[offset:offset + body_len]):
            break
        records.append((generation, kind, payload))
        offset = end
    return records, offset


def encode_deltas(sketch, groups) -> bytes:
    """Pack one batch's planned deltas into a ``KIND_DELTAS`` payload.

    ``groups`` is an ordered ``[(shard, level, [(key, sign), ...]),
    ...]`` — the per-(shard, level) grouping of a batch's plans, order
    preserved within each group (rank chains).  ``sketch`` supplies the
    per-level key widths.
    """
    writer = BitWriter()
    writer.write_varint(len(groups))
    for shard, level, deltas in groups:
        writer.write_varint(shard)
        writer.write_varint(level)
        writer.write_varint(len(deltas))
        keys = [key for key, _ in deltas]
        signs = [sign for _, sign in deltas]
        blob = encode_cells_fixed(
            signs, keys, [0] * len(deltas),
            _SIGN_BITS, sketch.key_bits(level), _PAD_BITS,
        )
        writer.write_bytes(blob)
    return writer.getvalue()


def decode_deltas(sketch, payload: bytes) -> list[tuple[int, int, int, int]]:
    """Unpack a ``KIND_DELTAS`` payload into ``(shard, level, key, sign)``.

    Validates against the live sketch's shape — a record addressing an
    unknown shard or level means the log belongs to a different config
    and the store refuses it typed.
    """
    shards = len(sketch.shard_sketches())
    levels = set(sketch.sketch_levels())
    deltas: list[tuple[int, int, int, int]] = []
    try:
        reader = BitReader(payload)
        n_groups = reader.read_varint()
        for _ in range(n_groups):
            shard = reader.read_varint()
            level = reader.read_varint()
            count = reader.read_varint()
            blob = reader.read_bytes()
            if shard >= shards or level not in levels:
                raise StoreCorruptError(
                    f"WAL delta group addresses shard {shard} level {level}, "
                    "which this config does not maintain"
                )
            key_bits = sketch.key_bits(level)
            expected = (count * (_SIGN_BITS + key_bits + _PAD_BITS) + 7) // 8
            if len(blob) != expected:
                raise StoreCorruptError(
                    f"WAL delta blob holds {len(blob)} bytes, "
                    f"{count} deltas need {expected}"
                )
            signs, keys, _ = decode_cells_fixed(
                blob, count, _SIGN_BITS, key_bits, _PAD_BITS
            )
            for key, sign in zip(keys, signs):
                if sign not in (1, -1):
                    raise StoreCorruptError(f"WAL delta sign {sign} is not ±1")
                deltas.append((shard, level, int(key), int(sign)))
        reader.expect_end()
    except SerializationError as exc:
        raise StoreCorruptError(f"undecodable WAL delta payload: {exc}") from exc
    return deltas
