"""Durable reconciliation store: crash-safe sketch persistence.

The serve layer keeps every sketch in RAM; this package makes the
sharded incremental sketch survive ``kill -9``.  The design is the
classic WAL + snapshot pair, specialised to the protocol's xor-merge
cell algebra:

* :mod:`repro.store.wal` — an append-only log of *key deltas* (one
  CRC-framed, generation-tagged record per insert/remove batch, payload
  packed with the shared columnar codec).  A point update logs
  ``O(levels)`` deltas — cells touched, never whole tables.
* :mod:`repro.store.snapshot` — periodic full-state snapshots in the
  columnar cell layout, written to a temp file and published with one
  atomic rename; publishing a snapshot rotates the WAL and bumps the
  generation.
* :mod:`repro.store.store` — :class:`DurableSketchStore`, the façade:
  WAL-before-ack batch updates, recovery that truncates a torn WAL tail
  at the first bad CRC and replays the rest onto the latest snapshot,
  bit-identical to a fresh encode of the acknowledged points.
* :mod:`repro.store.storage` — the single I/O seam (`OsStorage` over a
  directory, `MemStorage` with durable/volatile modelling), the only
  module allowed to touch files (enforced by repro-lint RPL008).
* :mod:`repro.store.crash` — :class:`CrashPlan`, the deterministic
  ``kill -9`` injector (sibling of :class:`~repro.net.faults.FaultPlan`)
  behind the crash/recover/verify matrix.
"""

from repro.store.crash import CrashInjector, CrashPlan
from repro.store.storage import MemStorage, OsStorage
from repro.store.store import DurableSketchStore, RecoveryInfo

__all__ = [
    "CrashInjector",
    "CrashPlan",
    "DurableSketchStore",
    "MemStorage",
    "OsStorage",
    "RecoveryInfo",
]
