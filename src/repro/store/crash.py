"""Deterministic ``kill -9`` injection for the durable store.

Sibling of :class:`~repro.net.faults.FaultPlan`: where fault plans cut
*network* bytes, a :class:`CrashPlan` kills the *process* at a chosen
storage operation — mid WAL append, between a snapshot's rename and the
directory fsync, anywhere.  Every storage call is an ordinal; the plan
names the ordinal to die at and a seed, and the same plan replays the
same torn byte count and the same post-crash volatile losses every
time, so a failing matrix cell is a reproducible test case, not a
flake.

The kill is simulated by raising :class:`~repro.errors.InjectedCrash`
out of the storage seam after applying a seeded *prefix* of the dying
write (a torn write).  The test harness catches it, discards the
in-process store object — the "process" is dead — applies the volatile
losses (:meth:`~repro.store.storage.MemStorage.crash`), and recovers a
fresh store from the surviving bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import InjectedCrash

#: Storage operation kinds that carry a data payload — only these can
#: tear; control ops (fsync, replace, dir-sync, truncate) either happen
#: or do not.
DATA_OPS = frozenset({"append", "write"})


@dataclass(frozen=True)
class CrashPlan:
    """A reproducible process-death scenario.

    Attributes
    ----------
    seed:
        Master seed; every derived decision (torn prefix length,
        post-crash volatile survival) hashes it with a slot label, so
        one integer pins the whole scenario.
    kill_after:
        Ordinal of the storage operation to die at (0-based, counted
        across the storage's lifetime).  ``None`` never kills — used to
        dry-run a scenario and count its operations, which is how the
        matrix enumerates every kill point.
    torn:
        When the dying operation is a data write, apply a seeded proper
        prefix of its bytes before dying (``True``) or none of them
        (``False``).  Both are legal crash outcomes; the matrix sweeps
        both.
    """

    seed: int = 0
    kill_after: int | None = None
    torn: bool = True

    def rng(self, label: str) -> random.Random:
        """A deterministic RNG for one named decision slot."""
        return random.Random(f"{self.seed}/{label}")

    def injector(self) -> "CrashInjector":
        """Fresh per-run state (op counter + trace) for this plan."""
        return CrashInjector(self)


class CrashInjector:
    """Per-run execution state of a :class:`CrashPlan`.

    A storage backend calls :meth:`intercept` before every operation.
    The return value is ``None`` (survive: perform the operation in
    full) or a byte budget for a data op's torn prefix; after applying
    the prefix the backend must call :meth:`die`, which raises.  The
    injector records a trace of ``("op" | "crash", ordinal, kind, name,
    nbytes)`` tuples — dumped by the matrix on failure, same as the
    fault injector's decision traces.
    """

    def __init__(self, plan: CrashPlan):
        self.plan = plan
        self.ops = 0
        self.crashed = False
        self.trace: list[tuple] = []

    def intercept(self, kind: str, name: str, nbytes: int = 0) -> int | None:
        """Register one storage operation; decide whether it survives.

        Returns ``None`` to run the operation in full, or the number of
        payload bytes to apply before dying (0 for control ops).
        """
        if self.crashed:
            raise InjectedCrash(
                f"storage used after injected crash ({kind} {name!r})"
            )
        ordinal = self.ops
        self.ops += 1
        if self.plan.kill_after is None or ordinal != self.plan.kill_after:
            self.trace.append(("op", ordinal, kind, name, nbytes))
            return None
        limit = 0
        if self.plan.torn and kind in DATA_OPS and nbytes > 0:
            limit = self.plan.rng(f"torn/{ordinal}").randrange(nbytes + 1)
        self.trace.append(("crash", ordinal, kind, name, limit))
        return limit

    def die(self, kind: str, name: str) -> None:
        """Raise the injected kill (after any torn prefix was applied)."""
        self.crashed = True
        raise InjectedCrash(
            f"injected crash at op {self.ops - 1} ({kind} {name!r}), "
            f"seed {self.plan.seed}"
        )
