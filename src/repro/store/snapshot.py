"""Columnar full-state snapshots of a sharded incremental sketch.

A snapshot is everything recovery needs to reconstruct the sketch
without touching a single point: per shard, per level, the IBLT cell
columns **and** the per-cell point counts.  The counts must be
persisted — they assign occurrence ranks to future inserts and are not
derivable from the hashed cell sums — and they ride the same
fixed-width columnar codec as the cells (cell ids in the key column,
counts zigzagged in the count column).

Layout (byte-aligned, one file, written to a temp name and published
atomically)::

    magic 0xCC | version | generation varint | config digest bytes |
    shard count varint | per shard: n_points varint, level count
    varint, per level: level varint, cell blob, occupied-cell count
    varint, counts blob | CRC32 (4 bytes, big-endian, over everything
    preceding)

The config digest pins the public coins the state was built under — a
store opened with a drifted config is refused before any cell is
loaded.  A snapshot that fails its CRC is *corruption* (unlike a WAL
tail there is nothing to truncate to), surfaced as
:class:`~repro.errors.StoreCorruptError`.
"""

from __future__ import annotations

import zlib

from repro.core.config import ProtocolConfig
from repro.errors import ConfigError, SerializationError, StoreCorruptError
from repro.net.bits import BitReader, BitWriter
from repro.net.codec import decode_cells_fixed, encode_cells_fixed
from repro.scale.incremental import ShardedIncrementalSketch
from repro.scale.wire import count_width

SNAPSHOT_MAGIC = 0xCC
SNAPSHOT_VERSION = 1

#: Unused checksum column width for the counts blob.
_PAD_BITS = 1


def _count_bits(occupancy_bits: int) -> int:
    """Width of a zigzagged per-cell count (≤ ``2^occ`` ⇒ zigzag ≤ ``2^(occ+1)``)."""
    return occupancy_bits + 2


def encode_snapshot(
    sketch: ShardedIncrementalSketch, generation: int, digest: str
) -> bytes:
    """Serialise the sketch's full state at ``generation``."""
    writer = BitWriter()
    writer.write_uint(SNAPSHOT_MAGIC, 8)
    writer.write_uint(SNAPSHOT_VERSION, 8)
    writer.write_varint(generation)
    writer.write_bytes(digest.encode("ascii"))
    shards = sketch.shard_sketches()
    writer.write_varint(len(shards))
    for shard in shards:
        writer.write_varint(shard.n_points)
        levels = shard.level_sketches()
        writer.write_varint(len(levels))
        width = count_width(shard.n_points)
        for level_sketch in levels:
            level, table = level_sketch.level, level_sketch.table
            writer.write_varint(level)
            counts, key_sums, check_sums = table.rows_arrays()
            writer.write_bytes(
                encode_cells_fixed(
                    counts, key_sums, check_sums,
                    width, table.config.key_bits, table.config.checksum_bits,
                )
            )
            occupancy = shard.level_cell_counts(level)
            cell_ids = sorted(occupancy)
            writer.write_varint(len(cell_ids))
            writer.write_bytes(
                encode_cells_fixed(
                    [occupancy[cell] for cell in cell_ids], cell_ids,
                    [0] * len(cell_ids),
                    _count_bits(shard.grid.occupancy_bits),
                    table.config.key_bits, _PAD_BITS,
                )
            )
    body = writer.getvalue()
    return body + zlib.crc32(body).to_bytes(4, "big")


def load_snapshot(
    data: bytes, config: ProtocolConfig, digest: str
) -> tuple[ShardedIncrementalSketch, int]:
    """Rebuild a sketch from snapshot bytes; returns ``(sketch, generation)``.

    Raises :class:`~repro.errors.StoreCorruptError` on damage and
    :class:`~repro.errors.ConfigError` when the snapshot was written
    under a different protocol config (digest mismatch).
    """
    if len(data) < 4 or int.from_bytes(data[-4:], "big") != zlib.crc32(data[:-4]):
        raise StoreCorruptError(
            "snapshot fails its CRC — the store is damaged beyond recovery"
        )
    try:
        reader = BitReader(data[:-4])
        if reader.read_uint(8) != SNAPSHOT_MAGIC:
            raise StoreCorruptError("bad snapshot magic byte")
        if reader.read_uint(8) != SNAPSHOT_VERSION:
            raise StoreCorruptError("unsupported snapshot version")
        generation = reader.read_varint()
        recorded = reader.read_bytes().decode("ascii", "replace")
        if recorded != digest:
            raise ConfigError(
                f"store was written under config digest {recorded}, "
                f"this config digests to {digest} — refusing to load"
            )
        sketch = ShardedIncrementalSketch(config)
        shards = sketch.shard_sketches()
        if reader.read_varint() != len(shards):
            raise StoreCorruptError("snapshot shard count mismatches config")
        for shard in shards:
            n_points = reader.read_varint()
            n_levels = reader.read_varint()
            expected_levels = list(shard.config.sketch_levels)
            if n_levels != len(expected_levels):
                raise StoreCorruptError(
                    f"snapshot carries {n_levels} levels, config sketches "
                    f"{len(expected_levels)}"
                )
            width = count_width(n_points)
            tables = {ls.level: ls.table for ls in shard.level_sketches()}
            for expected_level in expected_levels:
                level = reader.read_varint()
                if level != expected_level:
                    raise StoreCorruptError(
                        f"snapshot level {level} where {expected_level} expected"
                    )
                table = tables[level]
                blob = reader.read_bytes()
                cfg = table.config
                stride = width + cfg.key_bits + cfg.checksum_bits
                if len(blob) != (cfg.cells * stride + 7) // 8:
                    raise StoreCorruptError(
                        f"snapshot level {level} cell blob has a wrong size"
                    )
                counts, key_sums, check_sums = decode_cells_fixed(
                    blob, cfg.cells, width, cfg.key_bits, cfg.checksum_bits
                )
                occupied = reader.read_varint()
                counts_blob = reader.read_bytes()
                count_bits = _count_bits(shard.grid.occupancy_bits)
                stride = count_bits + cfg.key_bits + _PAD_BITS
                if len(counts_blob) != (occupied * stride + 7) // 8:
                    raise StoreCorruptError(
                        f"snapshot level {level} counts blob has a wrong size"
                    )
                cell_counts, cell_ids, _ = decode_cells_fixed(
                    counts_blob, occupied, count_bits, cfg.key_bits, _PAD_BITS
                )
                shard.restore_level(
                    level, counts, key_sums, check_sums,
                    {
                        int(cell): int(count)
                        for cell, count in zip(cell_ids, cell_counts)
                    },
                )
            shard.restore_n_points(n_points)
        reader.expect_end()
    except SerializationError as exc:
        raise StoreCorruptError(f"undecodable snapshot: {exc}") from exc
    return sketch, generation
